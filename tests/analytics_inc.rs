//! Incremental analytics: parity with from-scratch recomputation under randomized
//! churn, across rank counts, through both the direct consumer API and the full
//! serving pipeline — plus the empty-delta fast path and the redistribution fallback.
//!
//! The references are independent *serial* implementations over the evolving `Csr`,
//! so a bug shared by the warm and cold distributed kernels cannot hide.

use std::time::Duration;

use xtrapulp::PartitionParams;
use xtrapulp_analytics::{AnalyticsConsumer, WarmPolicy};
use xtrapulp_api::{Method, PartitionJob, ServingSession, UpdateBatch};
use xtrapulp_gen::updates::{generate_stream, StreamKind, UpdateStreamConfig};
use xtrapulp_gen::{GraphConfig, GraphKind};
use xtrapulp_graph::{Csr, GraphDelta};

fn ba_graph(n: u64, seed: u64) -> (Csr, xtrapulp_gen::EdgeList) {
    let el = GraphConfig::new(
        GraphKind::BarabasiAlbert {
            num_vertices: n,
            edges_per_vertex: 4,
        },
        seed,
    )
    .generate();
    (el.to_csr(), el)
}

fn block_parts(n: u64, parts: usize) -> Vec<i32> {
    xtrapulp::baselines::vertex_block_partition(n, parts)
}

// ---------------------------------------------------------------------------------
// Serial references
// ---------------------------------------------------------------------------------

fn serial_pagerank(csr: &Csr, damping: f64, tol: f64) -> Vec<f64> {
    let n = csr.num_vertices();
    let nf = n.max(1) as f64;
    let mut x = vec![1.0 / nf; n];
    for _ in 0..10_000 {
        let mut next = vec![(1.0 - damping) / nf; n];
        for (v, &x_v) in x.iter().enumerate() {
            let d = csr.degree(v as u64);
            if d == 0 {
                continue;
            }
            let share = damping * x_v / d as f64;
            for &u in csr.neighbors(v as u64) {
                next[u as usize] += share;
            }
        }
        let residual: f64 = next.iter().zip(&x).map(|(a, b)| (a - b).abs()).sum();
        x = next;
        if residual < tol {
            break;
        }
    }
    x
}

fn serial_wcc(csr: &Csr) -> Vec<u64> {
    let n = csr.num_vertices();
    let mut label = vec![u64::MAX; n];
    for root in 0..n {
        if label[root] != u64::MAX {
            continue;
        }
        label[root] = root as u64;
        let mut stack = vec![root as u64];
        while let Some(v) = stack.pop() {
            for &u in csr.neighbors(v) {
                if label[u as usize] == u64::MAX {
                    label[u as usize] = root as u64;
                    stack.push(u);
                }
            }
        }
    }
    label
}

/// Exact coreness by textbook peeling — repeatedly remove the minimum-degree vertex;
/// a vertex's coreness is the peak minimum degree seen up to its removal. Independent
/// of the h-index operator the distributed kernels use.
fn serial_coreness(csr: &Csr) -> Vec<u64> {
    let n = csr.num_vertices();
    let mut degree: Vec<u64> = (0..n).map(|v| csr.degree(v as u64)).collect();
    let mut core = vec![0u64; n];
    let mut removed = vec![false; n];
    let mut k = 0u64;
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !removed[v])
            .min_by_key(|&v| degree[v])
            .expect("one vertex per round");
        removed[v] = true;
        k = k.max(degree[v]);
        core[v] = k;
        for &u in csr.neighbors(v as u64) {
            let u = u as usize;
            if !removed[u] {
                degree[u] -= 1;
            }
        }
    }
    core
}

fn assert_epoch_parity(consumer: &mut AnalyticsConsumer, csr: &Csr, context: &str) {
    let pr = consumer.pagerank_global();
    let pr_ref = serial_pagerank(csr, 0.85, 1e-12);
    for (v, (a, b)) in pr.iter().zip(pr_ref.iter()).enumerate() {
        assert!(
            (a - b).abs() < 1e-6,
            "{context}: PageRank diverged at vertex {v}: {a} vs {b}"
        );
    }
    assert_eq!(consumer.wcc_global(), serial_wcc(csr), "{context}: WCC");
    assert_eq!(
        consumer.coreness_global(),
        serial_coreness(csr),
        "{context}: coreness"
    );
}

// ---------------------------------------------------------------------------------
// Direct consumer driving
// ---------------------------------------------------------------------------------

#[test]
fn incremental_matches_from_scratch_across_rank_counts_under_churn() {
    let n = 600u64;
    let (csr0, el) = ba_graph(n, 7);
    let stream = generate_stream(
        &el,
        &UpdateStreamConfig {
            kind: StreamKind::RandomChurn {
                ops_per_batch: 6,
                delete_fraction: 0.4,
            },
            num_batches: 12,
            seed: 3,
        },
    );
    let parts = block_parts(n, 4);

    for nranks in [1usize, 2, 8] {
        let mut consumer =
            AnalyticsConsumer::new(nranks, csr0.clone(), &parts, WarmPolicy::default());
        let mut csr = csr0.clone();
        assert_epoch_parity(&mut consumer, &csr, &format!("nranks={nranks} epoch=0"));

        let mut warm_epochs = 0u64;
        let mut warm_scored = 0u64;
        let mut warm_iterations = 0u64;
        let mut warm_wcc_sweeps = 0u64;
        let mut warm_kcore_rounds = 0u64;
        for (i, _) in stream.batches.iter().enumerate() {
            let delta = GraphDelta::from_ops(csr.num_vertices() as u64, stream.batch_ops(i));
            csr = csr.apply_delta(&delta);
            let report = consumer.ingest_epoch((i + 1) as u64, &[delta], &parts);
            if report.warm {
                warm_epochs += 1;
                warm_scored += report.pagerank_vertices_scored;
                warm_iterations += report.pagerank_iterations;
                warm_wcc_sweeps += report.wcc_sweeps;
                warm_kcore_rounds += report.kcore_rounds;
            }
            assert!(report.pagerank_converged, "nranks={nranks} epoch={}", i + 1);
            assert_epoch_parity(
                &mut consumer,
                &csr,
                &format!("nranks={nranks} epoch={}", i + 1),
            );
        }
        // ≤1% churn epochs must run warm and do measurably less work per analytic
        // than the consumer's own from-scratch reference: fewer PageRank iterations
        // *and* scored vertices, fewer propagation sweeps, fewer tightening rounds.
        assert!(
            warm_epochs >= 10,
            "nranks={nranks}: only {warm_epochs}/12 epochs ran warm"
        );
        let cold = consumer.cold_reference();
        let scored_avg = warm_scored / warm_epochs;
        assert!(
            scored_avg * 10 < cold.pagerank_vertices_scored * 9,
            "nranks={nranks}: warm epochs average {scored_avg} scored vertices vs a \
             cold reference of {}",
            cold.pagerank_vertices_scored
        );
        assert!(
            warm_iterations / warm_epochs < cold.pagerank_iterations,
            "nranks={nranks}: warm avg {} iterations vs cold {}",
            warm_iterations / warm_epochs,
            cold.pagerank_iterations
        );
        assert!(
            warm_wcc_sweeps / warm_epochs <= cold.wcc_sweeps / 2,
            "nranks={nranks}: warm avg {} WCC sweeps vs cold {}",
            warm_wcc_sweeps / warm_epochs,
            cold.wcc_sweeps
        );
        // Coreness maintenance is about exactness, not (yet) work: the sound
        // insert-rise envelope relaxes every bound by the batch's insert count, so on
        // small dense-core graphs warm tightening costs about as many rounds as cold
        // (deletion-only epochs converge in 1-2; see ROADMAP for the subcore-scoped
        // improvement). Guard against regressions beyond that.
        assert!(
            warm_kcore_rounds / warm_epochs <= cold.kcore_rounds + 3,
            "nranks={nranks}: warm avg {} k-core rounds vs cold {}",
            warm_kcore_rounds / warm_epochs,
            cold.kcore_rounds
        );
    }
}

#[test]
fn empty_delta_epoch_is_a_no_op() {
    let (csr, _) = ba_graph(300, 11);
    let parts = block_parts(300, 3);
    let mut consumer = AnalyticsConsumer::new(2, csr.clone(), &parts, WarmPolicy::default());
    let before_pr = consumer.pagerank_global();

    let report = consumer.ingest_epoch(1, &[], &parts);
    assert!(report.warm);
    assert!(!report.redistributed);
    assert_eq!(report.churn_fraction, 0.0);
    assert_eq!(report.pagerank_iterations, 0);
    assert_eq!(report.pagerank_vertices_scored, 0);
    assert_eq!(report.wcc_sweeps, 0);
    assert_eq!(report.kcore_rounds, 0);
    assert_eq!(report.comm_bytes, 0);
    assert_eq!(consumer.epoch(), 1);
    assert_eq!(consumer.pagerank_global(), before_pr);
}

#[test]
fn heavy_migration_triggers_redistribution_and_stays_correct() {
    let n = 400u64;
    let (csr0, _) = ba_graph(n, 5);
    let parts = block_parts(n, 4);
    let mut consumer = AnalyticsConsumer::new(4, csr0.clone(), &parts, WarmPolicy::default());

    // Publish a partition that moves every vertex one part over (100% migration) and
    // a small topology delta alongside.
    let rotated: Vec<i32> = parts.iter().map(|&p| (p + 1) % 4).collect();
    let delta = GraphDelta::new(n, 0, &[(0, n - 1)], &[]);
    let csr = csr0.apply_delta(&delta);
    let report = consumer.ingest_epoch(1, &[delta], &rotated);
    assert!(
        report.redistributed,
        "100% migration must rebuild the replica"
    );
    assert!(!report.warm);
    assert!(report.moved_fraction > 0.9);
    assert_epoch_parity(&mut consumer, &csr, "after redistribution");

    // The next small epoch against the same placement runs warm again.
    let delta2 = GraphDelta::new(n, 0, &[(1, n - 2)], &[]);
    let csr = csr.apply_delta(&delta2);
    let report = consumer.ingest_epoch(2, &[delta2], &rotated);
    assert!(report.warm, "placement is aligned again: {report:?}");
    assert_epoch_parity(&mut consumer, &csr, "after post-redistribution epoch");
}

#[test]
fn heavy_churn_falls_back_to_cold_recomputation() {
    let n = 300u64;
    let (csr0, _) = ba_graph(n, 9);
    let parts = block_parts(n, 2);
    let mut consumer = AnalyticsConsumer::new(2, csr0.clone(), &parts, WarmPolicy::default());

    // Touch well over 5% of the graph in one epoch.
    let inserts: Vec<(u64, u64)> = (0..40).map(|i| (i as u64, (i as u64 + 150) % n)).collect();
    let delta = GraphDelta::new(n, 0, &inserts, &[]);
    let csr = csr0.apply_delta(&delta);
    let report = consumer.ingest_epoch(1, &[delta], &parts);
    assert!(
        !report.warm,
        "churn {:.3} must run cold",
        report.churn_fraction
    );
    assert!(!report.redistributed);
    assert_epoch_parity(&mut consumer, &csr, "after cold fallback");
}

// ---------------------------------------------------------------------------------
// Full pipeline: ServingSession -> EpochStore -> AnalyticsSubscriber
// ---------------------------------------------------------------------------------

#[test]
fn subscriber_tracks_a_live_serving_session() {
    let n = 500u64;
    let (csr, el) = ba_graph(n, 13);
    let job = PartitionJob::new(Method::XtraPulp).with_params(PartitionParams {
        num_parts: 4,
        seed: 17,
        ..Default::default()
    });
    let serving = ServingSession::spawn(2, csr, job).expect("valid job");
    let mut subscriber = serving.subscribe_analytics(WarmPolicy::default());

    // Stream mixed growth batches through the normal ingest path.
    let stream = generate_stream(
        &el,
        &UpdateStreamConfig {
            kind: StreamKind::PreferentialGrowth {
                vertices_per_batch: 2,
                edges_per_vertex: 3,
            },
            num_batches: 6,
            seed: 23,
        },
    );
    for i in 0..stream.batches.len() {
        let batch = UpdateBatch::from_ops(stream.batch_ops(i));
        serving.ingest(batch).expect("queue open");
    }

    // Drain-then-stop publishes everything queued; then the subscriber catches up on
    // whatever epochs it has not ingested yet.
    let (session, stats) = serving.shutdown().expect("worker exits cleanly");
    assert_eq!(stats.batches_applied, 6);
    let store_epoch = session.epoch();
    let mut reports = Vec::new();
    while subscriber.held_epoch() < store_epoch {
        match subscriber.poll(Duration::from_secs(60)) {
            Ok(Some(report)) => reports.push(report),
            Ok(None) => panic!("store has epoch {store_epoch}, poll timed out"),
            Err(e) => panic!("subscriber lagged: {e}"),
        }
    }
    assert!(!reports.is_empty());

    // The consumer's replica must match the authoritative live graph arc-for-arc...
    let consumer = subscriber.consumer_mut();
    let live = session.graph().csr();
    assert_eq!(consumer.csr().num_vertices(), live.num_vertices());
    assert_eq!(
        consumer.csr().arcs().collect::<Vec<_>>(),
        live.arcs().collect::<Vec<_>>(),
        "replica topology diverged from the live graph"
    );
    // ...and its analytics must match from-scratch references on that final graph.
    assert_epoch_parity(consumer, live, "after live serving session");
}
