//! End-to-end observability tests: the cross-rank trace gather must produce one
//! well-formed chrome://tracing JSON document with spans from every rank on a
//! single timeline (at 1, 2 and 8 ranks), and the live metrics plane must
//! round-trip a real HTTP scrape against a running [`ServingSession`].

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Mutex;

use xtrapulp_suite::obs;
use xtrapulp_suite::prelude::*;

/// Tracing is a process-global flag; tests that toggle it must not interleave
/// with each other (the cargo test harness runs tests in parallel threads).
static TRACE_GATE: Mutex<()> = Mutex::new(());

fn test_graph(seed: u64) -> Csr {
    GraphConfig::new(
        GraphKind::WebCrawl {
            num_vertices: 1 << 10,
            avg_degree: 8,
            community_size: 64,
        },
        seed,
    )
    .generate()
    .to_csr()
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "xtrapulp-obs-e2e-{}-{}.json",
        tag,
        std::process::id()
    ))
}

/// Structural well-formedness check for the exported document. The workspace has
/// no JSON parser, so this verifies the invariants a real parser would enforce
/// first: braces and brackets balance outside string literals, strings terminate,
/// and escape sequences never swallow the closing quote.
fn assert_balanced_json(text: &str) {
    let mut depth_brace = 0i64;
    let mut depth_bracket = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => depth_brace += 1,
            '}' => depth_brace -= 1,
            '[' => depth_bracket += 1,
            ']' => depth_bracket -= 1,
            _ => {}
        }
        assert!(depth_brace >= 0, "unbalanced closing brace");
        assert!(depth_bracket >= 0, "unbalanced closing bracket");
    }
    assert!(!in_string, "unterminated string literal");
    assert_eq!(depth_brace, 0, "unbalanced braces");
    assert_eq!(depth_bracket, 0, "unbalanced brackets");
}

/// Run one traced partition job at `nranks` ranks, export the merged trace and
/// return the document text.
fn export_trace_for_ranks(nranks: usize) -> String {
    let _gate = TRACE_GATE.lock().unwrap_or_else(|p| p.into_inner());
    let csr = test_graph(11);
    let mut session = Session::new(nranks).expect("valid rank count");
    obs::set_enabled(true);
    let report = session
        .partition(&csr, &PartitionParams::with_parts(4))
        .expect("valid params");
    let path = temp_path(&format!("ranks{nranks}"));
    let wrote = session.export_trace(&path);
    obs::set_enabled(false);
    assert_eq!(report.parts.len(), csr.num_vertices());
    assert!(
        wrote.expect("trace gather succeeds"),
        "the in-process runtime hosts rank 0, so this process writes the file"
    );
    let text = std::fs::read_to_string(&path).expect("trace file exists");
    std::fs::remove_file(&path).ok();
    text
}

fn assert_merged_trace(text: &str, nranks: usize) {
    let trimmed = text.trim();
    assert!(trimmed.starts_with('{') && trimmed.ends_with('}'));
    assert_balanced_json(trimmed);
    assert!(
        text.contains("\"traceEvents\":["),
        "document carries the Trace Event Format event array"
    );
    // Spans survive the gather: begin/end pairs, not just metadata records.
    assert!(
        text.contains("\"ph\":\"B\""),
        "no span-begin events in trace"
    );
    assert!(text.contains("\"ph\":\"E\""), "no span-end events in trace");
    // Every rank contributed events on its own process line of the timeline.
    for rank in 0..nranks {
        assert!(
            text.contains(&format!("\"pid\":{rank},")),
            "rank {rank} missing from merged {nranks}-rank trace"
        );
        assert!(
            text.contains(&format!("\"name\":\"rank {rank}\"")),
            "rank {rank} process-name metadata missing"
        );
    }
    // The sweep engine's per-stage spans are the core instrumentation; a merged
    // trace without them means the rank threads recorded nothing.
    assert!(
        text.contains("\"name\":\"sweep_refine\"") || text.contains("\"name\":\"sweep_balance\""),
        "sweep-engine stage spans missing from merged trace"
    );
}

#[test]
fn trace_export_merges_one_rank() {
    let text = export_trace_for_ranks(1);
    assert_merged_trace(&text, 1);
}

#[test]
fn trace_export_merges_two_ranks() {
    let text = export_trace_for_ranks(2);
    assert_merged_trace(&text, 2);
}

#[test]
fn trace_export_merges_eight_ranks() {
    let text = export_trace_for_ranks(8);
    assert_merged_trace(&text, 8);
}

/// With tracing disabled the ranks record nothing: the export still writes a
/// well-formed document (rank 0 always writes), but its timeline is empty.
#[test]
fn trace_export_without_tracing_yields_empty_timeline() {
    let _gate = TRACE_GATE.lock().unwrap_or_else(|p| p.into_inner());
    obs::set_enabled(false);
    obs::trace::drain(); // discard anything a previous test left behind
    let csr = test_graph(13);
    let mut session = Session::new(2).expect("valid rank count");
    session
        .partition(&csr, &PartitionParams::with_parts(4))
        .expect("valid params");
    let path = temp_path("disabled");
    let wrote = session.export_trace(&path).expect("gather succeeds");
    assert!(wrote, "the process hosting rank 0 writes the document");
    let text = std::fs::read_to_string(&path).expect("trace file exists");
    std::fs::remove_file(&path).ok();
    assert_balanced_json(&text);
    assert!(
        !text.contains("\"ph\":\"B\""),
        "disabled tracing must not record spans"
    );
}

/// Live metrics plane round-trip: bind an ephemeral endpoint on a serving
/// session, scrape it over a real TCP connection, and check the exposition
/// carries the serving counter/gauge/summary families.
#[test]
fn metrics_endpoint_round_trips_a_real_scrape() {
    const BASE_N: u64 = 300;
    let serving = ServingSession::spawn(
        1,
        test_graph(5),
        PartitionJob::new(Method::Pulp).with_params(PartitionParams {
            num_parts: 4,
            seed: 3,
            ..Default::default()
        }),
    )
    .expect("serving session spawns");

    // Move the counters so the scrape shows real activity, not all-zeros.
    for i in 0..3u64 {
        let mut batch = UpdateBatch::new();
        batch.add_vertices(1).insert_edge(BASE_N + i, i);
        serving.ingest(batch).expect("queue accepts the batch");
    }
    serving
        .store()
        .wait_for_epoch(3, std::time::Duration::from_secs(600))
        .expect("all three batches publish");

    let endpoint = serving
        .serve_metrics("127.0.0.1:0")
        .expect("ephemeral bind succeeds");
    let addr = endpoint.local_addr();
    let mut stream = TcpStream::connect(addr).expect("endpoint accepts connections");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .expect("request writes");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("endpoint answers and closes");

    assert!(response.starts_with("HTTP/1.1 200 OK"));
    assert!(response.contains("text/plain; version=0.0.4"));
    // Counter family, with the activity we just generated.
    assert!(response.contains("# TYPE serve_batches_applied counter"));
    assert!(response.contains("serve_batches_applied 3"));
    assert!(response.contains("serve_epochs_published"));
    // Gauge and summary families from the histogram-backed stats.
    assert!(response.contains("# TYPE serve_queue_depth_ops gauge"));
    assert!(response.contains("# TYPE serve_publish_seconds summary"));
    assert!(response.contains("serve_publish_seconds{quantile=\"0.5\"}"));
    assert!(response.contains("serve_ingest_to_publish_seconds{quantile=\"0.99\"}"));

    // A second scrape works (the listener persists across connections)...
    let mut stream = TcpStream::connect(addr).expect("second connection");
    stream
        .write_all(b"GET / HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .expect("request writes");
    let mut second = String::new();
    stream.read_to_string(&mut second).expect("second scrape");
    assert!(second.contains("serve_batches_applied 3"));

    // ...and shutdown unbinds the port and unregisters the collector.
    endpoint.shutdown();
    serving.shutdown().expect("serve worker exits cleanly");
}
