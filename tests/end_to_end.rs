//! Cross-crate integration tests: generator -> distributed graph -> partitioner ->
//! metrics -> analytics / SpMV, exercising the public API the way the experiment
//! harnesses and examples do.

use xtrapulp_suite::core::metrics::{is_valid_partition, PartitionQuality};
use xtrapulp_suite::core::{baselines, Partitioner, PulpPartitioner};
use xtrapulp_suite::graph::{DistGraph, Distribution};
use xtrapulp_suite::prelude::*;
use xtrapulp_suite::spmv::{spmv_1d_with_partition, spmv_2d, Matrix2d};

fn crawl_graph(n: u64) -> xtrapulp_suite::gen::EdgeList {
    GraphConfig::new(
        GraphKind::WebCrawl {
            num_vertices: n,
            avg_degree: 12,
            community_size: 128,
        },
        77,
    )
    .generate()
}

#[test]
fn every_partitioner_produces_valid_partitions_on_every_graph_class() {
    let configs = [
        GraphKind::Rmat {
            scale: 11,
            edge_factor: 8,
        },
        GraphKind::BarabasiAlbert {
            num_vertices: 2048,
            edges_per_vertex: 6,
        },
        GraphKind::WebCrawl {
            num_vertices: 2048,
            avg_degree: 12,
            community_size: 128,
        },
        GraphKind::Grid3d {
            nx: 12,
            ny: 12,
            nz: 12,
            full: false,
        },
    ];
    let params = PartitionParams {
        num_parts: 8,
        seed: 5,
        ..Default::default()
    };
    // The whole registry, every graph class: all seven methods must produce valid
    // partitions through the typed request path.
    for kind in configs {
        let csr = GraphConfig::new(kind, 3).generate().to_csr();
        for method in Method::all() {
            let partitioner = method.build(3);
            let (parts, q) = partitioner
                .try_partition_with_quality(&csr, &params)
                .unwrap_or_else(|e| panic!("{method}: {e}"));
            assert_eq!(parts.len(), csr.num_vertices(), "{method}");
            assert!(is_valid_partition(&parts, 8), "{method}");
            assert!(q.edge_cut_ratio <= 1.0, "{method}");
        }
    }
}

#[test]
fn xtrapulp_quality_tracks_the_paper_pattern_across_classes() {
    // Crawl-like graphs partition with a small cut; RMAT-like graphs do not. The paper's
    // Fig. 4 / Table II rely on exactly this contrast.
    let params = PartitionParams {
        num_parts: 8,
        seed: 9,
        ..Default::default()
    };
    let crawl = crawl_graph(1 << 13).to_csr();
    let rmat = GraphConfig::new(
        GraphKind::Rmat {
            scale: 13,
            edge_factor: 12,
        },
        5,
    )
    .generate()
    .to_csr();
    let (_, q_crawl) = XtraPulpPartitioner::new(4).partition_with_quality(&crawl, &params);
    let (_, q_rmat) = XtraPulpPartitioner::new(4).partition_with_quality(&rmat, &params);
    assert!(
        q_crawl.edge_cut_ratio < 0.4,
        "crawl cut {}",
        q_crawl.edge_cut_ratio
    );
    assert!(q_rmat.edge_cut_ratio > q_crawl.edge_cut_ratio);
    assert!(q_crawl.vertex_imbalance < 1.25);
    assert!(q_rmat.vertex_imbalance < 1.25);
}

#[test]
fn distributed_partition_runs_collectively_and_matches_metrics() {
    let el = crawl_graph(1 << 12);
    let out = Runtime::run(4, |ctx| {
        let g = DistGraph::from_shared_edges(ctx, Distribution::Hashed, el.num_vertices, &el.edges);
        let params = PartitionParams {
            num_parts: 16,
            seed: 3,
            ..Default::default()
        };
        let result = xtrapulp_suite::core::xtrapulp_partition(ctx, &g, &params);
        // Every rank must agree on the global quality numbers.
        (result.quality.edge_cut, result.quality.vertex_imbalance)
    });
    assert!(out.windows(2).all(|w| w[0].0 == w[1].0));
    assert!(out[0].1 < 1.5, "vertex imbalance {}", out[0].1);
}

#[test]
fn partition_improves_spmv_communication_over_random() {
    let el = crawl_graph(1 << 12);
    let csr = el.to_csr();
    let n = el.num_vertices;
    let edges: Vec<(u64, u64)> = csr.edges().collect();
    let nranks = 4;
    let params = PartitionParams::with_parts(nranks);
    let xtrapulp = XtraPulpPartitioner::new(nranks).partition(&csr, &params);
    let random = baselines::random_partition(n, nranks, 3);
    let comm = |parts: &Vec<i32>| {
        Runtime::run(nranks, |ctx| {
            spmv_1d_with_partition(ctx, n, &edges, parts, 5).comm_bytes
        })[0]
    };
    assert!(comm(&xtrapulp) < comm(&random));
}

#[test]
fn spmv_2d_agrees_with_1d_under_a_partitioned_layout() {
    let el = crawl_graph(1 << 11);
    let csr = el.to_csr();
    let n = el.num_vertices;
    let edges: Vec<(u64, u64)> = csr.edges().collect();
    let nranks = 4;
    let params = PartitionParams::with_parts(nranks);
    let parts = XtraPulpPartitioner::new(nranks).partition(&csr, &params);
    let out = Runtime::run(nranks, |ctx| {
        let r1 = spmv_1d_with_partition(ctx, n, &edges, &parts, 3);
        let m = Matrix2d::build(ctx, n, &edges, &parts);
        let r2 = spmv_2d(ctx, &m, 3);
        (r1.checksum, r2.checksum)
    });
    for (a, b) in out {
        assert!((a - b).abs() < 1e-6);
    }
}

#[test]
fn analytics_suite_runs_on_a_partitioned_graph() {
    let el = crawl_graph(1 << 11);
    let csr = el.to_csr();
    let nranks = 3;
    let params = PartitionParams::with_parts(nranks);
    let parts = XtraPulpPartitioner::new(nranks).partition(&csr, &params);
    let result = xtrapulp_suite::analytics::run_suite_with_partition(
        nranks,
        el.num_vertices,
        &el.edges,
        &parts,
        "XtraPuLP",
        0.0,
        4,
    );
    assert_eq!(result.analytics.len(), 6);
    let names: Vec<&str> = result.analytics.iter().map(|a| a.name).collect();
    assert_eq!(names, vec!["HC", "KC", "LP", "PR", "SCC", "WCC"]);
}

#[test]
fn quality_metrics_agree_between_serial_and_distributed_evaluation() {
    let el = crawl_graph(1 << 11);
    let csr = el.to_csr();
    let params = PartitionParams::with_parts(8);
    let parts = PulpPartitioner.partition(&csr, &params);
    let serial = PartitionQuality::evaluate(&csr, &parts, 8);
    let out = Runtime::run(3, |ctx| {
        let g = DistGraph::from_shared_edges(ctx, Distribution::Block, el.num_vertices, &el.edges);
        let local: Vec<i32> = (0..g.n_total() as u32)
            .map(|v| parts[g.global_id(v) as usize])
            .collect();
        PartitionQuality::evaluate_dist(ctx, &g, &local, 8)
    });
    for q in out {
        assert_eq!(q.edge_cut, serial.edge_cut);
        assert!((q.edge_imbalance - serial.edge_imbalance).abs() < 1e-9);
    }
}
