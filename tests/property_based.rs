//! Property-based tests (proptest) of the core invariants: partition validity, balance
//! behaviour, CSR construction and the communication substrate.

use proptest::prelude::*;
use xtrapulp_suite::core::metrics::{is_valid_partition, PartitionQuality};
use xtrapulp_suite::core::{baselines, Partitioner, PulpPartitioner};
use xtrapulp_suite::graph::{csr_from_edges, DistGraph, Distribution};
use xtrapulp_suite::prelude::*;

/// Strategy: a random edge list over up to 200 vertices.
fn edge_list(max_n: u64) -> impl Strategy<Value = (u64, Vec<(u64, u64)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n, 0..n), 1..400);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn csr_is_symmetric_and_simple((n, edges) in edge_list(200)) {
        let csr = csr_from_edges(n, &edges);
        prop_assert_eq!(csr.num_vertices() as u64, n);
        for (u, v) in csr.arcs() {
            prop_assert_ne!(u, v);
            prop_assert!(csr.neighbors(v).contains(&u));
        }
        // No duplicate neighbours.
        for v in 0..n {
            let mut neigh = csr.neighbors(v).to_vec();
            let len = neigh.len();
            neigh.dedup();
            prop_assert_eq!(neigh.len(), len);
        }
    }

    #[test]
    fn xtrapulp_partitions_are_always_valid((n, edges) in edge_list(160), nparts in 2usize..9, nranks in 1usize..4) {
        let csr = csr_from_edges(n, &edges);
        let params = PartitionParams { num_parts: nparts, seed: 11, ..Default::default() };
        let parts = XtraPulpPartitioner::new(nranks).partition(&csr, &params);
        prop_assert_eq!(parts.len(), csr.num_vertices());
        prop_assert!(is_valid_partition(&parts, nparts));
        // Every part's vertex count is accounted for exactly once.
        let total: usize = (0..nparts)
            .map(|p| parts.iter().filter(|&&x| x == p as i32).count())
            .sum();
        prop_assert_eq!(total, csr.num_vertices());
    }

    #[test]
    fn pulp_partitions_are_valid_and_cut_is_bounded((n, edges) in edge_list(160), nparts in 2usize..8) {
        let csr = csr_from_edges(n, &edges);
        let params = PartitionParams { num_parts: nparts, seed: 7, ..Default::default() };
        let (parts, q) = PulpPartitioner.partition_with_quality(&csr, &params);
        prop_assert!(is_valid_partition(&parts, nparts));
        prop_assert!(q.edge_cut <= csr.num_edges());
        prop_assert!(q.edge_cut_ratio <= 1.0 + 1e-12);
    }

    #[test]
    fn distributed_graph_conserves_edges((n, edges) in edge_list(150), nranks in 1usize..5) {
        let csr = csr_from_edges(n, &edges);
        let expected_m = csr.num_edges();
        let shared = edges.clone();
        let out = Runtime::run(nranks, move |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Hashed, n, &shared);
            (g.global_m(), g.local_arcs())
        });
        let total_arcs: u64 = out.iter().map(|(_, a)| a).sum();
        prop_assert_eq!(total_arcs, expected_m * 2);
        prop_assert!(out.iter().all(|&(m, _)| m == expected_m));
    }

    #[test]
    fn block_partition_is_always_near_balanced(n in 1u64..5000, nparts in 1usize..32) {
        let parts = baselines::vertex_block_partition(n, nparts);
        prop_assert_eq!(parts.len() as u64, n);
        prop_assert!(is_valid_partition(&parts, nparts));
        let mut counts = vec![0u64; nparts];
        for &p in &parts {
            counts[p as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn random_partition_covers_only_valid_parts(n in 1u64..3000, nparts in 1usize..17, seed in 0u64..100) {
        let parts = baselines::random_partition(n, nparts, seed);
        prop_assert!(is_valid_partition(&parts, nparts));
    }

    #[test]
    fn quality_metrics_are_internally_consistent((n, edges) in edge_list(120), nparts in 1usize..6) {
        let csr = csr_from_edges(n, &edges);
        let parts = baselines::random_partition(n, nparts, 5);
        let q = PartitionQuality::evaluate(&csr, &parts, nparts);
        prop_assert!(q.edge_cut <= csr.num_edges());
        prop_assert!(q.max_part_cut <= q.edge_cut.max(1) * 2);
        prop_assert!(q.vertex_imbalance >= 1.0 - 1e-9 || csr.num_vertices() == 0);
    }
}
