//! Randomised property tests of the core invariants: partition validity, balance
//! behaviour, CSR construction and the communication substrate.
//!
//! These were originally `proptest` properties; they now run on a plain
//! seeded-RNG case loop (24 cases per property, like the old
//! `ProptestConfig::with_cases(24)`) so the workspace has no dev-dependency on
//! a shrinking framework. Failures print the generating seed, which is enough
//! to reproduce a case deterministically.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xtrapulp_suite::core::metrics::{is_valid_partition, PartitionQuality};
use xtrapulp_suite::core::{baselines, Partitioner, PulpPartitioner};
use xtrapulp_suite::graph::{csr_from_edges, DistGraph, Distribution};
use xtrapulp_suite::prelude::*;

const CASES: u64 = 24;

/// A random edge list over `2..max_n` vertices, mirroring the old proptest
/// strategy: up to 400 arbitrary (possibly self-loop, possibly duplicate)
/// endpoint pairs, which `csr_from_edges` must clean up.
fn edge_list(rng: &mut SmallRng, max_n: u64) -> (u64, Vec<(u64, u64)>) {
    let n = rng.gen_range(2..max_n);
    let m = rng.gen_range(1..400usize);
    let edges = (0..m)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    (n, edges)
}

#[test]
fn csr_is_symmetric_and_simple() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC5A0 + case);
        let (n, edges) = edge_list(&mut rng, 200);
        let csr = csr_from_edges(n, &edges);
        assert_eq!(csr.num_vertices() as u64, n, "case {case}");
        for (u, v) in csr.arcs() {
            assert_ne!(u, v, "case {case}: self-loop survived");
            assert!(
                csr.neighbors(v).contains(&u),
                "case {case}: arc ({u},{v}) has no reverse"
            );
        }
        for v in 0..n {
            let mut neigh = csr.neighbors(v).to_vec();
            let len = neigh.len();
            neigh.dedup();
            assert_eq!(neigh.len(), len, "case {case}: duplicate neighbours of {v}");
        }
    }
}

#[test]
fn xtrapulp_partitions_are_always_valid() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x11AA + case);
        let (n, edges) = edge_list(&mut rng, 160);
        let nparts = rng.gen_range(2..9usize);
        let nranks = rng.gen_range(1..4usize);
        let csr = csr_from_edges(n, &edges);
        let params = PartitionParams {
            num_parts: nparts,
            seed: 11,
            ..Default::default()
        };
        let parts = XtraPulpPartitioner::new(nranks).partition(&csr, &params);
        assert_eq!(parts.len(), csr.num_vertices(), "case {case}");
        assert!(is_valid_partition(&parts, nparts), "case {case}");
        // Every part's vertex count is accounted for exactly once.
        let total: usize = (0..nparts)
            .map(|p| parts.iter().filter(|&&x| x == p as i32).count())
            .sum();
        assert_eq!(total, csr.num_vertices(), "case {case}");
    }
}

#[test]
fn pulp_partitions_are_valid_and_cut_is_bounded() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5107 + case);
        let (n, edges) = edge_list(&mut rng, 160);
        let nparts = rng.gen_range(2..8usize);
        let csr = csr_from_edges(n, &edges);
        let params = PartitionParams {
            num_parts: nparts,
            seed: 7,
            ..Default::default()
        };
        let (parts, q) = PulpPartitioner.partition_with_quality(&csr, &params);
        assert!(is_valid_partition(&parts, nparts), "case {case}");
        assert!(q.edge_cut <= csr.num_edges(), "case {case}");
        assert!(q.edge_cut_ratio <= 1.0 + 1e-12, "case {case}");
    }
}

#[test]
fn distributed_graph_conserves_edges() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD157 + case);
        let (n, edges) = edge_list(&mut rng, 150);
        let nranks = rng.gen_range(1..5usize);
        let csr = csr_from_edges(n, &edges);
        let expected_m = csr.num_edges();
        let out = Runtime::run(nranks, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Hashed, n, &edges);
            (g.global_m(), g.local_arcs())
        });
        let total_arcs: u64 = out.iter().map(|(_, a)| a).sum();
        assert_eq!(total_arcs, expected_m * 2, "case {case}");
        assert!(out.iter().all(|&(m, _)| m == expected_m), "case {case}");
    }
}

#[test]
fn block_partition_is_always_near_balanced() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB10C + case);
        let n = rng.gen_range(1..5000u64);
        let nparts = rng.gen_range(1..32usize);
        let parts = baselines::vertex_block_partition(n, nparts);
        assert_eq!(parts.len() as u64, n, "case {case}");
        assert!(is_valid_partition(&parts, nparts), "case {case}");
        let mut counts = vec![0u64; nparts];
        for &p in &parts {
            counts[p as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 1, "case {case}: counts {counts:?}");
    }
}

#[test]
fn random_partition_covers_only_valid_parts() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x7A2D + case);
        let n = rng.gen_range(1..3000u64);
        let nparts = rng.gen_range(1..17usize);
        let seed = rng.gen_range(0..100u64);
        let parts = baselines::random_partition(n, nparts, seed);
        assert!(is_valid_partition(&parts, nparts), "case {case}");
    }
}

#[test]
fn quality_metrics_are_internally_consistent() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9A11 + case);
        let (n, edges) = edge_list(&mut rng, 120);
        let nparts = rng.gen_range(1..6usize);
        let csr = csr_from_edges(n, &edges);
        let parts = baselines::random_partition(n, nparts, 5);
        let q = PartitionQuality::evaluate(&csr, &parts, nparts);
        assert!(q.edge_cut <= csr.num_edges(), "case {case}");
        assert!(q.max_part_cut <= q.edge_cut.max(1) * 2, "case {case}");
        assert!(
            q.vertex_imbalance >= 1.0 - 1e-9 || csr.num_vertices() == 0,
            "case {case}"
        );
    }
}
