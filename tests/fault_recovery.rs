//! Cross-crate fault-tolerance tests: transport-level recovery through the
//! runtime's retry API, and crash-recovery of the durable serving session at
//! randomized kill points.
//!
//! The invariant under test everywhere: an injected fault either terminates
//! with a typed error or recovers to *bit-identical* state — never a hang,
//! never a panic escaping the pipeline, never a divergent partition.

use std::path::PathBuf;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xtrapulp::PartitionParams;
use xtrapulp_api::{Method, PartitionJob, ServingSession, Session};
use xtrapulp_comm::{
    CommError, ExecOutcome, FaultInjectTransport, FaultPlan, InProcFabric, Runtime, Transport,
};
use xtrapulp_gen::{GraphConfig, GraphKind};
use xtrapulp_graph::Csr;
use xtrapulp_serve::{BatchPolicy, DurableConfig, ServeConfig, ServeError, UpdateBatch};

fn ba_csr(n: u64, seed: u64) -> Csr {
    GraphConfig::new(
        GraphKind::BarabasiAlbert {
            num_vertices: n,
            edges_per_vertex: 4,
        },
        seed,
    )
    .generate()
    .to_csr()
}

fn job(parts: usize) -> PartitionJob {
    PartitionJob::new(Method::XtraPulp).with_params(PartitionParams {
        num_parts: parts,
        seed: 23,
        ..Default::default()
    })
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "xtrapulp-fault-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Build an `nranks` runtime whose rank `victim` is wrapped in a seeded fault
/// injector that kills its endpoint (sticky peer-death, in-process) at the
/// given transport frame.
fn faulty_runtime(nranks: usize, victim: usize, kill_at_frame: u64, seed: u64) -> Runtime {
    let transports: Vec<Box<dyn Transport>> =
        InProcFabric::create_with_recv_timeout(nranks, Duration::from_secs(2))
            .into_iter()
            .enumerate()
            .map(|(rank, t)| {
                if rank == victim {
                    let plan = FaultPlan::new(seed).kill_at_frame(kill_at_frame);
                    Box::new(FaultInjectTransport::new(Box::new(t), plan)) as Box<dyn Transport>
                } else {
                    Box::new(t) as Box<dyn Transport>
                }
            })
            .collect();
    Runtime::from_transports(transports).unwrap()
}

/// A runtime with an armed one-shot kill recovers once and completes the job
/// with the same result a healthy runtime produces.
#[test]
fn runtime_recovers_from_an_injected_transport_death() {
    let csr = ba_csr(600, 11);
    let params = PartitionParams {
        num_parts: 4,
        seed: 23,
        ..Default::default()
    };
    let mut healthy = Session::new(3).unwrap();
    let reference = healthy.partition(&csr, &params).unwrap();

    for victim in [0usize, 2] {
        let runtime = faulty_runtime(3, victim, 40, 0xFA_u64 + victim as u64);
        let mut session = Session::with_runtime(runtime, xtrapulp_graph::Distribution::Block);
        // First attempt faults; the runtime recovers (clearing the injector's
        // sticky death) and the retry completes.
        let report = match session.submit(&job(4), &csr) {
            Ok(report) => report,
            Err(xtrapulp::PartitionError::Comm(_)) => {
                session.recover().expect("mesh recovery succeeds");
                session
                    .submit(&job(4), &csr)
                    .expect("retried job completes")
            }
            Err(e) => panic!("unexpected failure: {e}"),
        };
        assert_eq!(
            report.parts, reference.parts,
            "victim={victim}: recovered job must match the healthy run"
        );
    }
}

/// The typed recoverable-execution API: one armed kill → `Recovered` with one
/// recovery; exhausted attempts → `CommError::Aborted`, never a hang.
#[test]
fn try_execute_recoverable_reports_typed_outcomes() {
    // One-shot fault, one allowed recovery: the job completes as Recovered.
    // Frame 1: the victim's second transport op (2 ranks × 1 allreduce is only
    // a couple of ops, so the kill must land inside that narrow window).
    let mut runtime = faulty_runtime(2, 1, 1, 0xBEEF);
    let outcome = runtime
        .try_execute_recoverable(
            |ctx| {
                let sums = ctx.allreduce_sum_u64(&[ctx.rank() as u64 + 1]);
                sums[0]
            },
            1,
        )
        .expect("job recovers within the attempt budget");
    match outcome {
        ExecOutcome::Recovered {
            results,
            recoveries,
        } => {
            assert_eq!(results, vec![3, 3]);
            assert_eq!(recoveries, 1);
        }
        ExecOutcome::Completed(_) => panic!("the armed fault should have fired"),
    }

    // Zero allowed recoveries: the same fault aborts typed.
    // Frame 1: the victim's second transport op (2 ranks × 1 allreduce is only
    // a couple of ops, so the kill must land inside that narrow window).
    let mut runtime = faulty_runtime(2, 1, 1, 0xBEEF);
    let err = runtime
        .try_execute_recoverable(
            |ctx| {
                let sums = ctx.allreduce_sum_u64(&[ctx.rank() as u64 + 1]);
                sums[0]
            },
            0,
        )
        .expect_err("no attempts left means a typed abort");
    match err {
        CommError::Aborted { recoveries, .. } => assert_eq!(recoveries, 0),
        other => panic!("expected Aborted, got {other}"),
    }
}

/// Randomized kill points: crash the durable serving worker at WAL positions
/// drawn from a seeded RNG, recover, finish the workload, and require the
/// final graph and partition to be bit-identical to an uninterrupted run.
#[test]
fn durable_serving_survives_randomized_kill_points() {
    let total_batches = 5u64;
    let make_batch = |i: u64| {
        let mut batch = UpdateBatch::new();
        batch
            .add_vertices(1)
            .insert_edge(600 + i, (i * 11) % 500)
            .insert_edge(600 + i, (i * 17 + 3) % 500);
        batch
    };
    let config = || ServeConfig {
        policy: BatchPolicy {
            max_group_batches: 1,
            ..Default::default()
        },
        ..Default::default()
    };

    // Uninterrupted reference.
    let reference = {
        let dir = temp_dir("ref");
        let serving = ServingSession::spawn_durable(
            2,
            ba_csr(600, 11),
            job(4),
            config(),
            DurableConfig::new(&dir),
        )
        .unwrap();
        let store = serving.store();
        for i in 0..total_batches {
            serving.ingest(make_batch(i)).unwrap();
            store
                .wait_for_epoch(i + 1, Duration::from_secs(60))
                .unwrap();
        }
        let (session, _) = serving.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        session
    };

    // Epoch-per-batch appends 2 WAL records per epoch (batch + mark); any
    // point in [1, 2 * total_batches] is a valid mid-workload kill.
    let mut rng = SmallRng::seed_from_u64(0xD15A57E5);
    for round in 0..3 {
        let crash_after = rng.gen_range(1..2 * total_batches + 1);
        let dir = temp_dir(&format!("rand-{round}"));
        let serving = ServingSession::spawn_durable(
            2,
            ba_csr(600, 11),
            job(4),
            config(),
            DurableConfig::new(&dir)
                .checkpoint_every(2)
                .crash_after_wal_records(crash_after),
        )
        .unwrap();
        let store = serving.store();
        for i in 0..total_batches {
            if serving.ingest(make_batch(i)).is_err() {
                break;
            }
            if store
                .wait_for_epoch(i + 1, Duration::from_secs(10))
                .is_none()
            {
                break;
            }
        }
        match serving.shutdown() {
            Err(ServeError::WorkerPanicked { detail }) => {
                assert!(
                    detail.contains("injected durability crash"),
                    "round {round} (crash_after={crash_after}): {detail}"
                );
            }
            Ok(_) => panic!("round {round}: worker survived crash_after={crash_after}"),
        }

        let recovered = ServingSession::recover(2, job(4), config(), DurableConfig::new(&dir))
            .unwrap_or_else(|e| panic!("round {round}: recovery failed: {e}"));
        let store = recovered.store();
        for i in recovered.epoch()..total_batches {
            recovered.ingest(make_batch(i)).unwrap();
            store
                .wait_for_epoch(i + 1, Duration::from_secs(60))
                .unwrap();
        }
        let (session, _) = recovered.shutdown().unwrap();
        assert_eq!(
            session.epoch(),
            reference.epoch(),
            "round {round} (crash_after={crash_after}): epochs diverged"
        );
        assert_eq!(
            session.parts().unwrap(),
            reference.parts().unwrap(),
            "round {round} (crash_after={crash_after}): partition not bit-identical"
        );
        assert_eq!(
            session.graph().num_vertices(),
            reference.graph().num_vertices(),
            "round {round} (crash_after={crash_after}): topology diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
