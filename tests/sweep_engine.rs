//! End-to-end tests of the frontier-driven sweep engine across the workspace: parity
//! between frontier and legacy full sweeps on the generator presets, bit-identical
//! results across thread counts, delta-scoped warm starts, and the empty-frontier
//! early exit on already-converged seeds.

use xtrapulp::metrics::{is_valid_partition, PartitionQuality};
use xtrapulp::{PartitionParams, Partitioner, SweepMode, XtraPulpPartitioner};
use xtrapulp_api::{DynamicSession, Method, PartitionJob, UpdateBatch};
use xtrapulp_gen::{GraphConfig, GraphKind};
use xtrapulp_graph::Csr;

fn preset(kind: GraphKind, seed: u64) -> Csr {
    GraphConfig::new(kind, seed).generate().to_csr()
}

/// Frontier-vs-full parity on the generator presets: the frontier engine must stay
/// within 1% of the full-sweep baseline's cut (it is usually far better) and meet the
/// same imbalance constraint.
#[test]
fn frontier_matches_full_sweep_quality_on_gen_presets() {
    let presets: Vec<(&str, Csr)> = vec![
        (
            "webcrawl",
            preset(
                GraphKind::WebCrawl {
                    num_vertices: 4096,
                    avg_degree: 12,
                    community_size: 256,
                },
                7,
            ),
        ),
        (
            "grid2d",
            preset(
                GraphKind::Grid2d {
                    width: 64,
                    height: 64,
                    diagonal: false,
                },
                7,
            ),
        ),
        (
            "ba",
            preset(
                GraphKind::BarabasiAlbert {
                    num_vertices: 4096,
                    edges_per_vertex: 8,
                },
                7,
            ),
        ),
    ];
    // Label propagation is a randomised heuristic whose per-seed cuts are multi-modal
    // on community-structured graphs (the full-sweep baseline itself swings by 2-3x
    // across seeds on the webcrawl preset), so parity is asserted on the geometric
    // mean of the cut ratio over seeds: the frontier engine must be no more than 1%
    // worse in aggregate, and every individual run must meet the imbalance constraint.
    for (name, csr) in &presets {
        let mut log_ratio_sum = 0.0f64;
        let seeds = [5u64, 13, 29, 43, 77, 91];
        for &seed in &seeds {
            let frontier_params = PartitionParams {
                num_parts: 8,
                seed,
                ..Default::default()
            };
            let full_params = PartitionParams {
                sweep_mode: SweepMode::Full,
                ..frontier_params
            };
            let partitioner = XtraPulpPartitioner::new(2);
            let frontier = partitioner.partition(csr, &frontier_params);
            let full = partitioner.partition(csr, &full_params);
            let qf = PartitionQuality::evaluate(csr, &frontier, 8);
            let qb = PartitionQuality::evaluate(csr, &full, 8);
            assert!(is_valid_partition(&frontier, 8), "{name}");
            log_ratio_sum += ((qf.edge_cut.max(1)) as f64 / (qb.edge_cut.max(1)) as f64).ln();
            // Same slack the final-rebalance gate uses: within 2% of the fractional
            // target is rounding, not imbalance.
            let target = (1.0 + frontier_params.vertex_imbalance) * 1.02;
            assert!(
                qf.vertex_imbalance <= qb.vertex_imbalance.max(target),
                "{name}/{seed}: frontier imbalance {} vs full {} (target {target})",
                qf.vertex_imbalance,
                qb.vertex_imbalance
            );
        }
        let geomean_ratio = (log_ratio_sum / seeds.len() as f64).exp();
        // 2% aggregate tolerance: at these reduced test sizes a handful of seeds
        // leaves 1-2% of residual variance even for an equivalent engine (the
        // bench-scale presets recorded in BENCH_sweep.json land at -49%..+0.5%).
        assert!(
            geomean_ratio <= 1.02,
            "{name}: geomean frontier/full cut ratio {geomean_ratio:.3} exceeds 1.02"
        );
    }
}

/// The distributed engine's two-phase chunk protocol: results are bit-identical for
/// 1, 2 and max worker threads.
#[test]
fn distributed_results_identical_across_thread_counts() {
    let csr = preset(
        GraphKind::SmallWorld {
            num_vertices: 2048,
            k: 6,
            rewire_probability: 0.1,
        },
        3,
    );
    let run = |threads: usize| {
        let params = PartitionParams {
            num_parts: 8,
            seed: 11,
            sweep_threads: threads,
            ..Default::default()
        };
        XtraPulpPartitioner::new(2).partition(&csr, &params)
    };
    let one = run(1);
    assert_eq!(one, run(2), "1 vs 2 threads");
    assert_eq!(one, run(8), "1 vs 8 threads");
    assert!(is_valid_partition(&one, 8));
}

/// A warm start over an *empty* delta converges immediately: the touched set is empty,
/// so the frontier never fills, no sweeps run, and the partition is returned verbatim.
#[test]
fn converged_warm_start_exits_on_empty_frontier() {
    let csr = preset(
        GraphKind::Grid2d {
            width: 40,
            height: 40,
            diagonal: false,
        },
        5,
    );
    let job = PartitionJob::new(Method::XtraPulp).with_parts(4);
    let mut session = DynamicSession::spawn(2, csr, job).expect("valid job");
    let cold = session.repartition().expect("cold run");
    // Apply an empty batch: epoch advances, nothing touched.
    session
        .apply_updates(&UpdateBatch::new())
        .expect("empty batch is valid");
    let warm = session.repartition().expect("warm run");
    assert!(warm.warm_start);
    assert_eq!(
        warm.report.parts, cold.report.parts,
        "an empty delta must not move anything"
    );
    assert_eq!(warm.lp_sweeps, 0, "empty frontier: no sweeps at all");
    assert_eq!(warm.vertices_scored, 0);
    assert_eq!(warm.vertices_migrated, 0);
}

/// A small delta scopes the warm run to its neighbourhood: far fewer scored vertices
/// than the cold reference, with quality intact.
#[test]
fn touched_warm_start_scores_a_fraction_of_cold() {
    let csr = preset(
        GraphKind::BarabasiAlbert {
            num_vertices: 4096,
            edges_per_vertex: 6,
        },
        9,
    );
    let job = PartitionJob::new(Method::XtraPulp).with_parts(8);
    let mut session = DynamicSession::spawn(2, csr, job).expect("valid job");
    let cold = session.repartition().expect("cold run");
    assert!(cold.vertices_scored > 0);

    let mut batch = UpdateBatch::new();
    batch.add_vertices(2);
    batch
        .insert_edge(4096, 10)
        .insert_edge(4096, 11)
        .insert_edge(4097, 4096);
    session.apply_updates(&batch).expect("valid batch");
    let warm = session.repartition().expect("warm run");
    assert!(warm.warm_start);
    assert!(
        warm.vertices_scored * 5 <= warm.cold_vertices_scored,
        "touched warm run scored {} vertices, cold reference {}",
        warm.vertices_scored,
        warm.cold_vertices_scored
    );
    assert!(warm.report.quality.vertex_imbalance <= 1.13);
    assert!(is_valid_partition(&warm.report.parts, 8));
}

/// Serial PuLP: identical partitions for every thread count, in both sweep modes.
#[test]
fn serial_pulp_identical_across_thread_counts_in_both_modes() {
    let csr = preset(
        GraphKind::WebCrawl {
            num_vertices: 3000,
            avg_degree: 10,
            community_size: 200,
        },
        21,
    );
    for mode in [SweepMode::Frontier, SweepMode::Full] {
        let run = |threads: usize| {
            let params = PartitionParams {
                num_parts: 6,
                seed: 13,
                sweep_mode: mode,
                sweep_threads: threads,
                ..Default::default()
            };
            xtrapulp::pulp_partition(&csr, &params)
        };
        let one = run(1);
        assert_eq!(one, run(2), "{mode:?}: 1 vs 2 threads");
        assert_eq!(one, run(8), "{mode:?}: 1 vs 8 threads");
    }
}
