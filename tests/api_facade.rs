//! Integration tests of the `Session`/`PartitionJob` facade: runtime reuse must be
//! invisible in the results, the method registry must cover every partitioner, and
//! malformed requests must come back as typed errors without poisoning the session.

use xtrapulp_suite::core::{PartitionError, Partitioner};
use xtrapulp_suite::prelude::*;

fn test_graph(seed: u64) -> Csr {
    GraphConfig::new(
        GraphKind::WebCrawl {
            num_vertices: 1 << 11,
            avg_degree: 10,
            community_size: 128,
        },
        seed,
    )
    .generate()
    .to_csr()
}

#[test]
fn session_reuse_matches_one_shot_runs_across_three_jobs() {
    let nranks = 4;
    let graphs = [test_graph(1), test_graph(2), test_graph(3)];
    let params = [
        PartitionParams::with_parts(8),
        PartitionParams::with_parts(16),
        PartitionParams {
            num_parts: 4,
            seed: 99,
            ..Default::default()
        },
    ];

    // One persistent session for all jobs...
    let mut session = Session::new(nranks).expect("valid rank count");
    let session_results: Vec<Vec<i32>> = graphs
        .iter()
        .zip(&params)
        .map(|(csr, p)| session.partition(csr, p).expect("valid params").parts)
        .collect();
    assert_eq!(session.jobs_completed(), 3);

    // ...must produce byte-identical part vectors to fresh one-shot runs.
    let legacy = XtraPulpPartitioner::new(nranks);
    for ((csr, p), from_session) in graphs.iter().zip(&params).zip(&session_results) {
        let one_shot = legacy.partition(csr, p);
        assert_eq!(&one_shot, from_session);
    }
}

#[test]
fn session_reports_carry_quality_timings_and_comm() {
    let csr = test_graph(7);
    let mut session = Session::new(3).expect("valid rank count");
    let report = session
        .partition(&csr, &PartitionParams::with_parts(8))
        .expect("valid params");
    assert_eq!(report.method, "XtraPuLP");
    assert_eq!(report.nranks, 3);
    assert_eq!(report.parts.len(), csr.num_vertices());
    assert_eq!(report.num_edges, csr.num_edges());
    assert!(report.quality.edge_cut_ratio <= 1.0);
    // The distributed job must have recorded its phases and moved bytes.
    assert!(report.timings.get("init") > std::time::Duration::ZERO);
    assert!(report.comm.bytes_sent > 0);
    assert!(report.comm.alltoallv_calls > 0);
    // And the report serialises to JSON for the perf trajectory.
    let json = report.to_json_summary();
    assert!(json.contains("\"method\":\"XtraPuLP\""), "{json}");
    assert!(json.contains("\"edge_cut\""), "{json}");
}

#[test]
fn every_registry_method_runs_through_the_session() {
    let csr = test_graph(11);
    let mut session = Session::new(2).expect("valid rank count");
    for method in Method::all() {
        let job = PartitionJob::new(method).with_parts(4);
        let report = session.submit(&job, &csr).expect("valid job");
        assert_eq!(report.method, method.name());
        assert_eq!(report.parts.len(), csr.num_vertices(), "{method}");
        assert!(
            report.parts.iter().all(|&p| (0..4).contains(&p)),
            "{method} produced an out-of-range part"
        );
    }
    assert_eq!(session.jobs_completed(), Method::all().len() as u64);
}

#[test]
fn malformed_requests_are_errors_and_leave_the_session_healthy() {
    let csr = test_graph(13);
    let mut session = Session::new(2).expect("valid rank count");

    // Zero parts: typed error, no panic, nothing enters the runtime.
    let bad = PartitionJob::new(Method::XtraPulp).with_parts(0);
    assert_eq!(
        session.submit(&bad, &csr).unwrap_err(),
        PartitionError::InvalidNumParts { got: 0 }
    );

    // Negative imbalance through a serial method: same contract.
    let bad = PartitionJob::new(Method::MetisLike).with_params(PartitionParams {
        vertex_imbalance: -0.5,
        ..Default::default()
    });
    assert!(matches!(
        session.submit(&bad, &csr),
        Err(PartitionError::InvalidImbalance { .. })
    ));
    assert_eq!(session.jobs_completed(), 0);

    // The session is still healthy after rejected requests.
    let good = session
        .partition(&csr, &PartitionParams::with_parts(4))
        .expect("valid params");
    assert_eq!(good.parts.len(), csr.num_vertices());
}

#[test]
fn try_partition_never_panics_on_malformed_params() {
    let csr = test_graph(17);
    let bad_params = [
        PartitionParams {
            num_parts: 0,
            ..Default::default()
        },
        PartitionParams {
            vertex_imbalance: f64::NAN,
            ..Default::default()
        },
        PartitionParams {
            edge_imbalance: -1.0,
            ..Default::default()
        },
        PartitionParams {
            mult_x: -0.1,
            ..Default::default()
        },
    ];
    for method in Method::all() {
        let partitioner = method.build(2);
        for params in &bad_params {
            assert!(
                partitioner.try_partition(&csr, params).is_err(),
                "{method} accepted malformed params {params:?}"
            );
        }
    }
    // Zero ranks is a typed error on the distributed path, not a silent clamp.
    assert_eq!(
        XtraPulpPartitioner::new(0)
            .try_partition(&csr, &PartitionParams::with_parts(4))
            .unwrap_err(),
        PartitionError::InvalidRanks { got: 0 }
    );
}

#[test]
fn sessions_pipeline_partition_and_analytics_on_the_same_ranks() {
    // The facade's reuse story: partition a graph, then run a follow-up collective job
    // (here a degree sum, standing in for analytics) on the same rank threads.
    let csr = test_graph(19);
    let mut session = Session::new(3).expect("valid rank count");
    let report = session
        .partition(&csr, &PartitionParams::with_parts(3))
        .expect("valid params");
    let edges: Vec<(u64, u64)> = csr.edges().collect();
    let n = csr.num_vertices() as u64;
    let parts = report.parts.clone();
    let degree_sums = session.execute(|ctx| {
        let dist = Distribution::from_parts(&parts);
        let g = DistGraph::from_shared_edges(ctx, dist, n, &edges);
        ctx.allreduce_scalar_sum_u64(g.local_arcs())
    });
    assert!(degree_sums.iter().all(|&s| s == 2 * csr.num_edges()));
}
