//! End-to-end tests of the dynamic-graph subsystem through the public facade:
//! apply → repartition → report, warm-vs-cold parity, and determinism.

use xtrapulp_api::{DynamicSession, Method, PartitionJob, Session, UpdateBatch};
use xtrapulp_gen::updates::{generate_stream, StreamKind, UpdateStreamConfig};
use xtrapulp_gen::{GraphConfig, GraphKind};
use xtrapulp_suite::prelude::*;

fn social_base(n: u64) -> xtrapulp_gen::EdgeList {
    GraphConfig::new(
        GraphKind::BarabasiAlbert {
            num_vertices: n,
            edges_per_vertex: 8,
        },
        77,
    )
    .generate()
}

/// A graph class on which the cold partitioner converges *within* the configured
/// tolerance, so warm starts exercise the refine-only fast path (on heavily skewed
/// graphs the cold run itself often cannot meet the constraint, and warm runs fall back
/// to the full schedule — correct, but not the regime these tests assert).
fn mesh_base() -> xtrapulp_gen::EdgeList {
    GraphConfig::new(
        GraphKind::Grid2d {
            width: 64,
            height: 64,
            diagonal: false,
        },
        77,
    )
    .generate()
}

fn job(parts: usize) -> PartitionJob {
    PartitionJob::new(Method::XtraPulp).with_params(PartitionParams {
        num_parts: parts,
        seed: 29,
        ..Default::default()
    })
}

/// The acceptance parity check: a warm start from a trivial (empty-delta) update must
/// reproduce the from-scratch cut-quality envelope.
#[test]
fn warm_start_from_empty_delta_matches_cold_quality_envelope() {
    let base = mesh_base();
    let mut dynamic = DynamicSession::spawn(4, base.to_csr(), job(8)).unwrap();
    let cold = dynamic.repartition().unwrap();

    // Empty update batch: the graph is unchanged.
    let summary = dynamic.apply_updates(&UpdateBatch::new()).unwrap();
    assert_eq!(summary.edges_inserted + summary.edges_deleted, 0);
    let warm = dynamic.repartition().unwrap();

    assert!(warm.warm_start);
    assert!(warm.lp_sweeps < cold.lp_sweeps);
    assert!(
        warm.report.quality.edge_cut as f64 <= cold.report.quality.edge_cut as f64 * 1.05,
        "warm cut {} must stay within 5% of cold cut {}",
        warm.report.quality.edge_cut,
        cold.report.quality.edge_cut
    );
    let tolerance = 1.0 + dynamic.job().params.vertex_imbalance;
    assert!(
        warm.report.quality.vertex_imbalance <= tolerance.max(cold.report.quality.vertex_imbalance),
        "warm imbalance {} must respect the tolerance (cold was {})",
        warm.report.quality.vertex_imbalance,
        cold.report.quality.vertex_imbalance
    );
}

/// A ≤1% churn batch repartitions warm measurably faster than from scratch while keeping
/// quality — the bench acceptance criterion, asserted at test scale.
#[test]
fn small_churn_batches_keep_quality_under_warm_start() {
    let base = mesh_base();
    let m = base.to_csr().num_edges();
    let stream = generate_stream(
        &base,
        &UpdateStreamConfig {
            kind: StreamKind::RandomChurn {
                ops_per_batch: ((m as f64 * 0.01) as usize).max(2),
                delete_fraction: 0.5,
            },
            num_batches: 3,
            seed: 5,
        },
    );
    let mut dynamic = DynamicSession::spawn(4, base.to_csr(), job(8)).unwrap();
    let cold = dynamic.repartition().unwrap();
    let mut cold_session = Session::new(4).unwrap();

    for i in 0..stream.batches.len() {
        let batch = UpdateBatch::from_ops(stream.batch_ops(i));
        dynamic.apply_updates(&batch).unwrap();
        let warm = dynamic.repartition().unwrap();
        assert!(warm.warm_start);
        assert!(
            warm.lp_sweeps < cold.lp_sweeps,
            "epoch {}: warm {} sweeps vs cold {}",
            warm.epoch,
            warm.lp_sweeps,
            cold.lp_sweeps
        );

        // Compare against a from-scratch run on the identical mutated graph.
        let scratch = cold_session
            .submit(dynamic.job(), dynamic.graph().csr())
            .unwrap();
        assert!(
            warm.report.quality.edge_cut as f64 <= scratch.quality.edge_cut as f64 * 1.05,
            "epoch {}: warm cut {} vs scratch cut {}",
            warm.epoch,
            warm.report.quality.edge_cut,
            scratch.quality.edge_cut
        );
        let tolerance = 1.0 + dynamic.job().params.vertex_imbalance;
        assert!(
            warm.report.quality.vertex_imbalance
                <= tolerance.max(scratch.quality.vertex_imbalance) * 1.02,
            "epoch {}: warm imbalance {}",
            warm.epoch,
            warm.report.quality.vertex_imbalance
        );
        // Small churn must not relabel the whole graph.
        assert!(
            warm.vertices_migrated < dynamic.graph().num_vertices() as u64 / 4,
            "epoch {}: {} migrated",
            warm.epoch,
            warm.vertices_migrated
        );
    }
}

/// The whole pipeline — stream generation, batch application, warm repartitioning — is
/// deterministic for a fixed seed and rank count.
#[test]
fn dynamic_pipeline_is_deterministic() {
    let run = || {
        let base = social_base(1 << 11);
        let stream = generate_stream(
            &base,
            &UpdateStreamConfig {
                kind: StreamKind::PreferentialGrowth {
                    vertices_per_batch: 16,
                    edges_per_vertex: 6,
                },
                num_batches: 2,
                seed: 3,
            },
        );
        let mut dynamic = DynamicSession::spawn(3, base.to_csr(), job(4)).unwrap();
        dynamic.repartition().unwrap();
        let mut parts_per_epoch = Vec::new();
        for i in 0..stream.batches.len() {
            dynamic
                .apply_updates(&UpdateBatch::from_ops(stream.batch_ops(i)))
                .unwrap();
            parts_per_epoch.push(dynamic.repartition().unwrap().report.parts);
        }
        parts_per_epoch
    };
    assert_eq!(run(), run());
}

/// Growth batches route new vertices into real parts and keep the distributed per-rank
/// graphs consistent with the authoritative CSR across epochs.
#[test]
fn growth_stream_keeps_graph_and_partition_consistent() {
    let base = social_base(1 << 11);
    let stream = generate_stream(
        &base,
        &UpdateStreamConfig {
            kind: StreamKind::PreferentialGrowth {
                vertices_per_batch: 32,
                edges_per_vertex: 6,
            },
            num_batches: 3,
            seed: 17,
        },
    );
    let mut dynamic = DynamicSession::spawn(3, base.to_csr(), job(4)).unwrap();
    dynamic.repartition().unwrap();
    let mut expected_n = base.num_vertices;
    for i in 0..stream.batches.len() {
        let summary = dynamic
            .apply_updates(&UpdateBatch::from_ops(stream.batch_ops(i)))
            .unwrap();
        expected_n += summary.vertices_added;
        let report = dynamic.repartition().unwrap();
        assert_eq!(dynamic.graph().num_vertices() as u64, expected_n);
        assert_eq!(report.report.parts.len() as u64, expected_n);
        assert!(report.report.parts.iter().all(|&p| (0..4).contains(&p)));
        assert_eq!(report.epoch, (i + 1) as u64);
    }
}

/// Serial warm-capable methods run the same dynamic loop through the facade.
#[test]
fn serial_methods_serve_the_dynamic_loop() {
    for method in [Method::Pulp, Method::LpCoarsenKway] {
        let base = social_base(1 << 10);
        let dyn_job = PartitionJob::new(method).with_params(PartitionParams {
            num_parts: 4,
            seed: 9,
            ..Default::default()
        });
        let mut dynamic = DynamicSession::spawn(1, base.to_csr(), dyn_job).unwrap();
        dynamic.repartition().unwrap();
        let n = base.num_vertices;
        let mut batch = UpdateBatch::new();
        batch.add_vertices(1).insert_edge(n, 0).insert_edge(n, 1);
        dynamic.apply_updates(&batch).unwrap();
        let warm = dynamic.repartition().unwrap();
        assert!(warm.warm_start, "{method}");
        assert_eq!(warm.report.parts.len() as u64, n + 1, "{method}");
    }
}
