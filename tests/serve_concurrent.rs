//! End-to-end tests of the concurrent serving subsystem: snapshot consistency under
//! concurrent readers, queue backpressure, drain-then-stop shutdown, and `.ulog`
//! replay through the same pipeline.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use xtrapulp::PartitionParams;
use xtrapulp_api::{
    BatchPolicy, IngestError, Method, PartitionJob, ServeConfig, ServingSession, UpdateBatch,
};
use xtrapulp_dynamic::DynamicGraph;
use xtrapulp_gen::{generate_stream, GraphConfig, GraphKind, StreamKind, UpdateStreamConfig};
use xtrapulp_graph::io::write_update_log;
use xtrapulp_graph::Csr;

fn ba_graph(n: u64, seed: u64) -> xtrapulp_gen::EdgeList {
    GraphConfig::new(
        GraphKind::BarabasiAlbert {
            num_vertices: n,
            edges_per_vertex: 6,
        },
        seed,
    )
    .generate()
}

fn ba_csr(n: u64, seed: u64) -> Csr {
    ba_graph(n, seed).to_csr()
}

fn xtrapulp_job(parts: usize) -> PartitionJob {
    PartitionJob::new(Method::XtraPulp).with_params(PartitionParams {
        num_parts: parts,
        seed: 13,
        ..Default::default()
    })
}

/// One batch per published epoch, so epoch arithmetic is exact in the tests.
fn one_batch_per_epoch() -> ServeConfig {
    ServeConfig {
        policy: BatchPolicy {
            max_group_ops: 65_536,
            max_group_batches: 1,
        },
        ..ServeConfig::default()
    }
}

/// The acceptance scenario: N concurrent readers observe only fully-published epochs
/// (monotonic, consistent topology, no unassigned entry — never a torn partition)
/// while more than three update batches are ingested and repartitioned in the
/// background, and the warm-start path is engaged (sweeps reported below the cold
/// run's).
#[test]
fn concurrent_readers_observe_only_fully_published_epochs() {
    const BASE_N: u64 = 400;
    const PARTS: usize = 4;
    const BATCHES: u64 = 6;
    let serving = ServingSession::spawn_with_config(
        2,
        ba_csr(BASE_N, 7),
        xtrapulp_job(PARTS),
        one_batch_per_epoch(),
    )
    .unwrap();
    let store = serving.store();
    let cold = store.current();
    assert_eq!(cold.epoch, 0);
    assert!(!cold.warm_start);

    // Readers: each checks every snapshot it observes for the MVCC invariants. Every
    // growth batch adds exactly one vertex, so an epoch-k snapshot must have exactly
    // BASE_N + k part entries — a mixed-epoch ("torn") read cannot satisfy this.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut observed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snapshot = store.current();
                    assert!(
                        snapshot.epoch >= last_epoch,
                        "epochs must be monotonic per reader ({} after {})",
                        snapshot.epoch,
                        last_epoch
                    );
                    last_epoch = snapshot.epoch;
                    assert_eq!(
                        snapshot.num_vertices() as u64,
                        BASE_N + snapshot.epoch,
                        "parts length must match the epoch's topology"
                    );
                    assert_eq!(snapshot.num_parts, PARTS);
                    assert!(
                        snapshot
                            .parts
                            .iter()
                            .all(|&p| p >= 0 && (p as usize) < PARTS),
                        "observed an unassigned/out-of-range entry: a torn partition"
                    );
                    observed += 1;
                }
                (last_epoch, observed)
            })
        })
        .collect();

    // Writer: one growth batch per epoch, ingested while the readers run.
    for i in 0..BATCHES {
        let new_vertex = BASE_N + i;
        let mut batch = UpdateBatch::new();
        batch
            .add_vertices(1)
            .insert_edge(new_vertex, i)
            .insert_edge(new_vertex, i + 1);
        serving.ingest(batch).unwrap();
    }
    let last = store
        .wait_for_epoch(BATCHES, Duration::from_secs(600))
        .expect("all epochs publish");
    assert_eq!(last.epoch, BATCHES);
    stop.store(true, Ordering::Relaxed);
    for reader in readers {
        let (final_epoch, observed) = reader.join().expect("reader must not panic");
        assert!(observed > 0, "every reader observed at least one snapshot");
        assert!(final_epoch <= BATCHES);
    }

    // Warm-start path engaged: the published epochs ran warm, with fewer sweeps than
    // the cold epoch-0 run.
    assert!(last.warm_start);
    assert!(
        last.lp_sweeps < cold.lp_sweeps,
        "warm epoch ran {} sweeps, cold ran {}",
        last.lp_sweeps,
        cold.lp_sweeps
    );

    let (session, stats) = serving.shutdown().expect("serve worker exits cleanly");
    assert_eq!(stats.epochs_published, BATCHES);
    assert_eq!(stats.warm_epochs, BATCHES);
    assert_eq!(stats.cold_epochs, 0);
    assert_eq!(stats.batches_applied, BATCHES);
    assert_eq!(stats.batches_rejected, 0);
    assert_eq!(session.epoch(), BATCHES);
    assert_eq!(session.graph().num_vertices() as u64, BASE_N + BATCHES);
}

#[test]
fn queue_backpressure_is_typed_and_nonfatal() {
    // A tiny queue: an oversized batch can never fit and is rejected immediately, in
    // both submit flavours; the session keeps serving afterwards.
    let config = ServeConfig {
        queue_capacity_ops: 4,
        ..ServeConfig::default()
    };
    let serving = ServingSession::spawn_with_config(
        1,
        ba_csr(200, 3),
        PartitionJob::new(Method::Pulp).with_params(PartitionParams {
            num_parts: 2,
            seed: 5,
            ..Default::default()
        }),
        config,
    )
    .unwrap();
    let mut huge = UpdateBatch::new();
    for i in 0..5u64 {
        huge.insert_edge(150 + i, i);
    }
    for result in [
        serving.try_ingest(huge.clone()),
        serving.ingest(huge.clone()),
    ] {
        assert!(
            matches!(
                result,
                Err(IngestError::BatchTooLarge {
                    batch_ops: 5,
                    capacity: 4
                })
            ),
            "{result:?}"
        );
    }
    // The raw queue reports QueueFull (with depths) when the budget is exhausted;
    // exercised directly so the assertion does not race the draining worker.
    let queue = xtrapulp_api::IngestQueue::new(4);
    let mut batch = UpdateBatch::new();
    batch.insert_edge(0, 1).insert_edge(1, 2).insert_edge(2, 3);
    queue.try_submit(batch.clone()).unwrap();
    let err = queue.try_submit(batch).unwrap_err();
    assert!(
        matches!(
            err,
            IngestError::QueueFull {
                queued_ops: 3,
                capacity: 4,
                batch_ops: 3
            }
        ),
        "{err}"
    );

    // After the rejections, a valid batch still flows end to end.
    let mut ok = UpdateBatch::new();
    ok.add_vertices(1).insert_edge(200, 0);
    serving.ingest(ok).unwrap();
    serving
        .store()
        .wait_for_epoch(1, Duration::from_secs(600))
        .expect("the valid batch publishes");
    let (_, stats) = serving.shutdown().expect("serve worker exits cleanly");
    assert_eq!(stats.batches_applied, 1);
}

#[test]
fn shutdown_drains_queued_batches_before_stopping() {
    const BASE_N: u64 = 300;
    let serving = ServingSession::spawn(
        1,
        ba_csr(BASE_N, 9),
        PartitionJob::new(Method::Pulp).with_params(PartitionParams {
            num_parts: 4,
            seed: 2,
            ..Default::default()
        }),
    )
    .unwrap();
    let store = serving.store();
    // Enqueue five growth batches and shut down immediately: drain-then-stop must
    // apply and publish all of them before the worker exits.
    for i in 0..5u64 {
        let mut batch = UpdateBatch::new();
        batch.add_vertices(1).insert_edge(BASE_N + i, i);
        serving.ingest(batch).unwrap();
    }
    let (session, stats) = serving.shutdown().expect("serve worker exits cleanly");
    assert_eq!(stats.batches_applied, 5);
    assert_eq!(stats.queue_depth_ops, 0);
    assert_eq!(stats.queue_depth_batches, 0);
    assert_eq!(session.epoch(), 5);
    assert_eq!(session.graph().num_vertices() as u64, BASE_N + 5);
    // The final epoch is published, matching the drained graph.
    assert_eq!(store.epoch(), 5);
    assert_eq!(store.current().num_vertices() as u64, BASE_N + 5);
}

/// A recorded `.ulog` mutation trace replays through the ingest queue and produces the
/// same graph as applying the stream's batches directly to the dynamic subsystem.
#[test]
fn ulog_replay_drives_the_serve_pipeline_end_to_end() {
    let base = ba_graph(500, 21);
    let stream = generate_stream(
        &base,
        &UpdateStreamConfig {
            kind: StreamKind::PreferentialGrowth {
                vertices_per_batch: 10,
                edges_per_vertex: 4,
            },
            num_batches: 4,
            seed: 3,
        },
    );
    let mut path = std::env::temp_dir();
    path.push(format!("xtrapulp-serve-e2e-{}.ulog", std::process::id()));
    write_update_log(&path, &stream.all_ops()).unwrap();

    let serving = ServingSession::spawn(
        1,
        base.to_csr(),
        PartitionJob::new(Method::Pulp).with_params(PartitionParams {
            num_parts: 4,
            seed: 8,
            ..Default::default()
        }),
    )
    .unwrap();
    let outcome = serving.replay_log(&path, 64).unwrap();
    assert_eq!(outcome.ops as usize, stream.num_ops());
    let (session, stats) = serving.shutdown().expect("serve worker exits cleanly");
    std::fs::remove_file(&path).ok();

    assert_eq!(stats.batches_rejected, 0, "{:?}", serving_error(&stats));
    assert_eq!(stats.ops_applied, outcome.ops);
    assert!(stats.epochs_published >= 1);
    assert!(stats.warm_epochs >= 1, "replay epochs run warm-started");

    // Reference: the same stream applied directly through the dynamic subsystem.
    let mut reference = DynamicGraph::new(base.to_csr());
    for i in 0..stream.batches.len() {
        let batch = UpdateBatch::from_ops(stream.batch_ops(i));
        reference.apply(&batch).unwrap();
    }
    assert_eq!(session.graph().num_vertices(), reference.num_vertices());
    assert_eq!(session.graph().num_edges(), reference.num_edges());
    // The served partition covers the final topology with valid part ids.
    let parts = session.parts().expect("final partition exists");
    assert_eq!(parts.len(), reference.num_vertices());
    assert!(parts.iter().all(|&p| (0..4).contains(&p)));
}

fn serving_error(stats: &xtrapulp_api::ServeStats) -> String {
    format!("{stats:?}")
}
