//! Live incremental analytics over a served graph: PageRank (plus components and
//! coreness) runs continuously in an analytics consumer while a producer thread
//! streams a recorded `.ulog` mutation trace into the serving pipeline.
//!
//! The pipeline is the full production shape:
//!
//! ```text
//! .ulog trace ──replay──> IngestQueue ──worker──> EpochStore ──poll──> AnalyticsConsumer
//! ```
//!
//! Every published epoch carries its `GraphDelta` stream, so the consumer repairs its
//! PageRank/WCC/coreness state warm instead of redistributing the graph and starting
//! over — watch the `warm` flag, the scored-vertex counts and the top-5 PageRank
//! vertices drift as the graph churns.
//!
//! Run with: `cargo run --release --example analytics_live`

use std::time::Duration;

use xtrapulp_suite::analytics::WarmPolicy;
use xtrapulp_suite::api::{Method, PartitionJob, ServingSession};
use xtrapulp_suite::gen::updates::{generate_stream, StreamKind, UpdateStreamConfig};
use xtrapulp_suite::graph::io::write_update_log;
use xtrapulp_suite::prelude::*;

fn main() {
    let n = 2_000u64;
    let el = GraphConfig::new(
        GraphKind::BarabasiAlbert {
            num_vertices: n,
            edges_per_vertex: 5,
        },
        101,
    )
    .generate();

    // Record a churn trace to a .ulog, as a real deployment would replay from disk.
    let stream = generate_stream(
        &el,
        &UpdateStreamConfig {
            kind: StreamKind::RandomChurn {
                ops_per_batch: 12,
                delete_fraction: 0.4,
            },
            num_batches: 8,
            seed: 7,
        },
    );
    let log_path = std::env::temp_dir().join("xtrapulp_analytics_live.ulog");
    write_update_log(&log_path, &stream.all_ops()).expect("write trace");

    // Spawn the serving pipeline and subscribe the analytics consumer before any
    // traffic flows, so it never lags the delta history. A one-batch group policy
    // publishes every replayed chunk as its own epoch, keeping each epoch's churn in
    // the warm regime (the default policy would happily group a quiet backlog into
    // one big cold epoch).
    let serving = ServingSession::spawn_with_config(
        2,
        el.to_csr(),
        PartitionJob::new(Method::XtraPulp).with_params(PartitionParams {
            num_parts: 4,
            seed: 3,
            ..Default::default()
        }),
        xtrapulp_suite::serve::ServeConfig {
            policy: xtrapulp_suite::serve::BatchPolicy {
                max_group_ops: 16,
                max_group_batches: 1,
            },
            ..Default::default()
        },
    )
    .expect("valid serving job");
    let mut analytics = serving.subscribe_analytics(WarmPolicy::default());
    println!("epoch 0 published; analytics consumer warmed up cold");

    // Producer: replay the recorded trace through the ingest queue (blocking
    // backpressure), off the analytics thread.
    let queue = serving.queue();
    let path = log_path.clone();
    let producer = std::thread::spawn(move || {
        xtrapulp_suite::serve::replay_update_log(&queue, &path, 16).expect("replay trace")
    });

    // Consumer loop: block for each published epoch, repair analytics, report.
    let mut done = false;
    while !done {
        done = producer.is_finished() && {
            // Drain whatever the worker has already published, then stop once the
            // store goes quiet.
            serving.stats().queue_depth_ops == 0
        };
        while let Some(report) = analytics
            .poll(Duration::from_millis(200))
            .expect("consumer within delta history")
        {
            let consumer = analytics.consumer_mut();
            let pr = consumer.pagerank_global();
            let mut top: Vec<(usize, f64)> = pr.iter().copied().enumerate().collect();
            top.sort_by(|a, b| b.1.total_cmp(&a.1));
            let top5: Vec<String> = top
                .iter()
                .take(5)
                .map(|(v, r)| format!("{v}:{r:.5}"))
                .collect();
            println!(
                "epoch {:>2} [{}] churn {:>5.2}% | PR iters {:<3} scored {:<6} | \
                 WCC sweeps {} resets {} | top5 {}",
                report.epoch,
                if report.warm { "warm" } else { "cold" },
                report.churn_fraction * 100.0,
                report.pagerank_iterations,
                report.pagerank_vertices_scored,
                report.wcc_sweeps,
                report.wcc_reset_vertices,
                top5.join(" ")
            );
        }
    }
    let outcome = producer.join().expect("producer thread");
    let (_session, stats) = serving.shutdown().expect("worker exits cleanly");

    // Catch the epochs published during drain-then-stop.
    while let Some(report) = analytics
        .poll(Duration::from_millis(200))
        .expect("consumer within delta history")
    {
        println!(
            "epoch {:>2} [{}] (drained)",
            report.epoch,
            if report.warm { "warm" } else { "cold" }
        );
    }
    let cold = analytics.consumer_mut().cold_reference();
    println!(
        "replayed {} ops in {} batches; {} epochs published; cold reference: {} \
         PageRank vertices scored per recomputation",
        outcome.ops, outcome.batches, stats.epochs_published, cold.pagerank_vertices_scored
    );
    std::fs::remove_file(&log_path).ok();
}
