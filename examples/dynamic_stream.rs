//! Dynamic workflow: serve a continuously mutating social network from one
//! `DynamicSession` — apply a timestamped update batch, repartition warm, report.
//!
//! Run with: `cargo run --release --example dynamic_stream`

use xtrapulp_api::{DynamicSession, UpdateBatch};
use xtrapulp_gen::updates::{generate_stream, StreamKind, UpdateStreamConfig};
use xtrapulp_suite::prelude::*;

fn main() {
    // 1. The initial graph: a preferential-attachment social-network proxy.
    let base = GraphConfig::new(
        GraphKind::BarabasiAlbert {
            num_vertices: 1 << 14,
            edges_per_vertex: 8,
        },
        42,
    )
    .generate();

    // 2. A realistic mutation trace: the network keeps growing by preferential
    //    attachment, batched as it would arrive at a service.
    let stream = generate_stream(
        &base,
        &UpdateStreamConfig {
            kind: StreamKind::PreferentialGrowth {
                vertices_per_batch: 64,
                edges_per_vertex: 8,
            },
            num_batches: 4,
            seed: 7,
        },
    );

    // 3. One dynamic session: persistent ranks, the live graph, and the job every
    //    repartition runs. The first repartition is a cold (from-scratch) run.
    let job = PartitionJob::new(Method::XtraPulp).with_params(PartitionParams::with_parts(16));
    let mut session =
        DynamicSession::spawn(4, base.to_csr(), job).expect("valid job and rank count");
    let cold = session.repartition().expect("cold run succeeds");
    println!(
        "epoch {}: cold run, {} sweeps, cut ratio {:.3}, imbalance {:.3}",
        cold.epoch,
        cold.lp_sweeps,
        cold.report.quality.edge_cut_ratio,
        cold.report.quality.vertex_imbalance
    );

    // 4. The serving loop: apply → repartition (warm) → report. New vertices are
    //    assigned greedily from their neighbourhoods; only a short refinement schedule
    //    runs; the per-rank distributed graphs evolve by delta instead of being rebuilt.
    for i in 0..stream.batches.len() {
        let batch = UpdateBatch::from_ops(stream.batch_ops(i));
        let summary = session
            .apply_updates(&batch)
            .expect("stream batches are valid");
        let report = session.repartition().expect("warm run succeeds");
        println!(
            "epoch {}: +{} vertices, +{} edges, warm run {} sweeps (cold was {}), \
             {} vertices migrated, cut ratio {:.3}, imbalance {:.3}",
            report.epoch,
            summary.vertices_added,
            summary.edges_inserted,
            report.lp_sweeps,
            report.cold_lp_sweeps,
            report.vertices_migrated,
            report.report.quality.edge_cut_ratio,
            report.report.quality.vertex_imbalance
        );
        println!("  summary: {}", report.to_json_summary());
    }
}
