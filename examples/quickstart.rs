//! Quickstart: generate a small-world graph, partition it with XtraPuLP, and print the
//! paper's quality metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use xtrapulp_suite::prelude::*;

fn main() {
    // 1. Generate an R-MAT graph (the paper's synthetic power-law model).
    let graph = GraphConfig::new(GraphKind::Rmat { scale: 14, edge_factor: 16 }, 42)
        .generate()
        .to_csr();
    println!(
        "generated graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Partition it into 16 parts with XtraPuLP running on 4 ranks.
    let params = PartitionParams::with_parts(16);
    let partitioner = XtraPulpPartitioner::new(4);
    let (parts, quality) = partitioner.partition_with_quality(&graph, &params);

    // 3. Inspect the result.
    println!("part of vertex 0: {}", parts[0]);
    println!("edge cut ratio:       {:.3}", quality.edge_cut_ratio);
    println!("scaled max cut ratio: {:.3}", quality.scaled_max_cut_ratio);
    println!("vertex imbalance:     {:.3}", quality.vertex_imbalance);
    println!("edge imbalance:       {:.3}", quality.edge_imbalance);

    // 4. Compare against the PuLP shared-memory baseline.
    let (_, pulp_quality) = PulpPartitioner.partition_with_quality(&graph, &params);
    println!("PuLP edge cut ratio:  {:.3}", pulp_quality.edge_cut_ratio);
}
