//! Quickstart: generate a small-world graph, partition it through the `Session` facade,
//! and print the paper's quality metrics plus the job's JSON report.
//!
//! Run with: `cargo run --release --example quickstart`

use xtrapulp_suite::prelude::*;

fn main() {
    // 1. Generate an R-MAT graph (the paper's synthetic power-law model).
    let graph = GraphConfig::new(
        GraphKind::Rmat {
            scale: 14,
            edge_factor: 16,
        },
        42,
    )
    .generate()
    .to_csr();
    println!(
        "generated graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Open a session with 4 ranks (persistent worker threads standing in for MPI
    //    tasks) and partition into 16 parts with XtraPuLP. Malformed parameters would
    //    come back as a typed `PartitionError` instead of panicking.
    let mut session = Session::new(4).expect("4 ranks is a valid session");
    let params = PartitionParams::with_parts(16);
    let report = session
        .partition(&graph, &params)
        .expect("valid parameters");

    // 3. Inspect the result.
    println!("part of vertex 0: {}", report.parts[0]);
    println!("edge cut ratio:       {:.3}", report.quality.edge_cut_ratio);
    println!(
        "scaled max cut ratio: {:.3}",
        report.quality.scaled_max_cut_ratio
    );
    println!(
        "vertex imbalance:     {:.3}",
        report.quality.vertex_imbalance
    );
    println!("edge imbalance:       {:.3}", report.quality.edge_imbalance);

    // 4. Run more jobs on the same session — the rank threads are reused, and any
    //    registered method can be picked from the `Method` registry (by name if the
    //    request came over the wire).
    let pulp = Method::from_name("pulp").expect("registered method");
    let pulp_report = session
        .submit(&PartitionJob::new(pulp).with_params(params), &graph)
        .expect("valid job");
    println!(
        "PuLP edge cut ratio:  {:.3}",
        pulp_report.quality.edge_cut_ratio
    );

    // 5. Every report serialises to JSON for logging / experiment pipelines.
    println!("\nXtraPuLP job summary:\n{}", report.to_json_summary());
    println!(
        "session completed {} jobs on {} ranks",
        session.jobs_completed(),
        session.nranks()
    );
}
