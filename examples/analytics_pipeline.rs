//! End-to-end analytics pipeline (the Fig. 8 scenario): partition a web-crawl proxy, then
//! run PageRank and connected components on the graph redistributed according to the
//! partition, comparing against a random placement.
//!
//! Run with: `cargo run --release --example analytics_pipeline`

use xtrapulp_suite::analytics::{pagerank, wcc};
use xtrapulp_suite::core::baselines;
use xtrapulp_suite::core::Partitioner;
use xtrapulp_suite::graph::{DistGraph, Distribution};
use xtrapulp_suite::prelude::*;

fn main() {
    let el = GraphConfig::new(
        GraphKind::WebCrawl {
            num_vertices: 1 << 14,
            avg_degree: 16,
            community_size: 256,
        },
        11,
    )
    .generate();
    let csr = el.to_csr();
    let nranks = 4;

    // Compute an XtraPuLP partition and a random placement.
    let params = PartitionParams::with_parts(nranks);
    let xtrapulp_parts = XtraPulpPartitioner::new(nranks).partition(&csr, &params);
    let random_parts = baselines::random_partition(el.num_vertices, nranks, 3);

    for (name, parts) in [("XtraPuLP", &xtrapulp_parts), ("Random", &random_parts)] {
        let dist = Distribution::from_parts(parts);
        let results = Runtime::run(nranks, |ctx| {
            let graph = DistGraph::from_shared_edges(ctx, dist.clone(), el.num_vertices, &el.edges);
            let t = std::time::Instant::now();
            let pr = pagerank(ctx, &graph, 20, 0.85);
            let labels = wcc(ctx, &graph);
            let seconds = t.elapsed().as_secs_f64();
            let bytes = ctx.stats().bytes_sent();
            let local_max_pr = pr.iter().cloned().fold(0.0f64, f64::max);
            let components = labels
                .iter()
                .filter(|&&l| {
                    // a component is counted at its representative (smallest id) vertex
                    graph
                        .local_id(l)
                        .map(|lid| graph.is_owned(lid))
                        .unwrap_or(false)
                        && l == graph.global_id(graph.local_id(l).unwrap())
                })
                .count() as u64;
            (seconds, bytes, local_max_pr, components)
        });
        let max_secs = results.iter().map(|r| r.0).fold(0.0f64, f64::max);
        let total_bytes: u64 = results.iter().map(|r| r.1).sum();
        let components: u64 = results.iter().map(|r| r.3).sum();
        println!(
            "{name:<9}: PageRank+WCC took {max_secs:.3}s, {:.1} MB exchanged, {components} components",
            total_bytes as f64 / 1e6
        );
    }
}
