//! Partitioning a social-network-style graph for distributed analytics — the scenario the
//! paper's introduction motivates: balanced parts with a small cut reduce both load
//! imbalance and communication for downstream graph computations.
//!
//! Run with: `cargo run --release --example social_network_partition`

use xtrapulp_suite::core::metrics::performance_ratios;
use xtrapulp_suite::prelude::*;

fn main() {
    // A Barabási–Albert proxy for an online social network (heavy-tailed degrees).
    let graph = GraphConfig::new(
        GraphKind::BarabasiAlbert {
            num_vertices: 1 << 15,
            edges_per_vertex: 10,
        },
        7,
    )
    .generate()
    .to_csr();
    let params = PartitionParams::with_parts(32);

    // Every method comes from the registry and runs on one persistent session.
    let mut session = Session::new(4).expect("4 ranks is a valid session");
    let methods = [
        Method::XtraPulp,
        Method::Pulp,
        Method::MetisLike,
        Method::VertexBlock,
        Method::Random,
    ];

    println!(
        "{:<12} {:>14} {:>14} {:>10}",
        "method", "edge cut ratio", "max cut ratio", "vimb"
    );
    let mut cuts = Vec::new();
    for method in methods {
        let report = session
            .submit(&PartitionJob::new(method).with_params(params), &graph)
            .expect("valid job");
        let q = report.quality;
        println!(
            "{:<12} {:>14.3} {:>14.3} {:>10.3}",
            method.name(),
            q.edge_cut_ratio,
            q.scaled_max_cut_ratio,
            q.vertex_imbalance
        );
        cuts.push(vec![Some(q.edge_cut.max(1) as f64)]);
    }
    // The paper aggregates with geometric-mean performance ratios; here each "test" has a
    // single graph so the ratio is just cut / best cut.
    let transposed: Vec<Vec<Option<f64>>> = vec![cuts.iter().map(|c| c[0]).collect::<Vec<_>>()];
    let ratios = performance_ratios(&transposed, methods.len());
    println!("\nperformance ratios (1.0 = best cut): {ratios:.3?}");
}
