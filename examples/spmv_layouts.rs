//! Sparse matrix–vector multiplication with different matrix layouts (the Table III
//! scenario): 1-D and 2-D distributions built from block, random and XtraPuLP partitions.
//!
//! Run with: `cargo run --release --example spmv_layouts`

use xtrapulp_suite::core::baselines;
use xtrapulp_suite::core::Partitioner;
use xtrapulp_suite::prelude::*;
use xtrapulp_suite::spmv::{spmv_1d_with_partition, spmv_2d, Matrix2d};

fn main() {
    let el = GraphConfig::new(
        GraphKind::Rmat {
            scale: 13,
            edge_factor: 16,
        },
        5,
    )
    .generate();
    let csr = el.to_csr();
    let n = el.num_vertices;
    let edges: Vec<(u64, u64)> = csr.edges().collect();
    let nranks = 4;
    let iterations = 50;

    let params = PartitionParams::with_parts(nranks);
    let strategies: Vec<(&str, Vec<i32>)> = vec![
        ("Block", baselines::vertex_block_partition(n, nranks)),
        ("Random", baselines::random_partition(n, nranks, 3)),
        (
            "XtraPuLP",
            XtraPulpPartitioner::new(nranks).partition(&csr, &params),
        ),
    ];

    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>14}",
        "strategy", "1D time (s)", "2D time (s)", "1D comm (MB)", "2D comm (MB)"
    );
    for (name, parts) in &strategies {
        let out = Runtime::run(nranks, |ctx| {
            let r1 = spmv_1d_with_partition(ctx, n, &edges, parts, iterations);
            let m = Matrix2d::build(ctx, n, &edges, parts);
            let r2 = spmv_2d(ctx, &m, iterations);
            (r1, r2)
        });
        let (r1, r2) = out[0];
        println!(
            "{name:<10} {:>12.3} {:>12.3} {:>14.2} {:>14.2}",
            r1.seconds,
            r2.seconds,
            r1.comm_bytes as f64 / 1e6,
            r2.comm_bytes as f64 / 1e6
        );
    }
}
