//! Concurrent serving end to end: readers query published epochs while update batches
//! stream through the ingest queue and a background worker repartitions warm-started.
//!
//! ```sh
//! cargo run --release --example serve_concurrent
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use xtrapulp_api::{Method, PartitionJob, ServingSession, UpdateBatch};
use xtrapulp_gen::{GraphConfig, GraphKind};
use xtrapulp_suite::prelude::PartitionParams;

fn main() {
    let n: u64 = 1 << 13;
    let base = GraphConfig::new(
        GraphKind::BarabasiAlbert {
            num_vertices: n,
            edges_per_vertex: 8,
        },
        42,
    )
    .generate();

    // Spawn the serving pipeline: the cold epoch-0 partition is computed before this
    // returns, so readers always see a complete snapshot.
    let job = PartitionJob::new(Method::XtraPulp).with_params(PartitionParams::with_parts(16));
    let serving = ServingSession::spawn(4, base.to_csr(), job).expect("valid job");
    let store = serving.store();
    println!(
        "epoch {}: serving {} vertices in 16 parts (cut ratio {:.3})",
        store.epoch(),
        store.current().num_vertices(),
        store.current().quality.edge_cut_ratio
    );

    // Readers: two threads querying part_of() against whatever epoch is current. They
    // never block on the writer — an epoch-k snapshot keeps serving while epoch k+1
    // repartitions in the background.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|r| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut reads = 0u64;
                let mut checksum = 0i64;
                // ordering: stop-flag poll; an extra read iteration is harmless
                while !stop.load(Ordering::Relaxed) {
                    let snapshot = store.current();
                    for v in 0..256u64 {
                        checksum += snapshot.part_of(v).unwrap_or(0) as i64;
                    }
                    reads += 256;
                }
                (r, reads, checksum)
            })
        })
        .collect();

    // Writer: grow the graph by preferential-attachment batches through the bounded
    // ingest queue. Each batch is validated by the dynamic subsystem on the worker.
    for i in 0..4u64 {
        let mut batch = UpdateBatch::new();
        let new_vertex = n + i;
        batch
            .add_vertices(1)
            .insert_edge(new_vertex, i)
            .insert_edge(new_vertex, i + 1);
        serving.ingest(batch).expect("queue open");
    }
    let final_epoch = store
        .wait_for_epoch(4, Duration::from_secs(600))
        .expect("worker publishes");
    println!(
        "epoch {}: {} vertices, warm start = {}, {} sweeps ({} refine / {} churn)",
        final_epoch.epoch,
        final_epoch.num_vertices(),
        final_epoch.warm_start,
        final_epoch.lp_sweeps,
        final_epoch.stages.refine_sweeps,
        final_epoch.stages.churn_sweeps,
    );
    if let Some(diff) = store.latest_diff() {
        println!(
            "migration diff {} -> {}: {} vertices moved, {} added",
            diff.from_epoch,
            diff.to_epoch,
            diff.num_moved(),
            diff.vertices_added
        );
    }

    stop.store(true, Ordering::Relaxed); // ordering: stop flag; reader threads poll it, join() is the real barrier
    for reader in readers {
        let (r, reads, _) = reader.join().expect("reader thread");
        println!("reader {r}: {reads} part queries against live epochs");
    }

    // Drain-then-stop: anything still queued is applied and published, and the
    // dynamic session (live graph + partition) comes back for further use.
    let (session, stats) = serving.shutdown().expect("serve worker exits cleanly");
    println!(
        "shutdown: {} epochs published ({} warm), {} ops applied, \
         p50 ingest→publish {:.4}s",
        stats.epochs_published,
        stats.warm_epochs,
        stats.ops_applied,
        stats.ingest_to_publish_seconds_p50
    );
    println!(
        "returned session: epoch {}, {} vertices",
        session.epoch(),
        session.graph().num_vertices()
    );
}
