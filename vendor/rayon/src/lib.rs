//! Offline stand-in for the `rayon` crate (see `vendor/README.md`).
//!
//! Implements the data-parallel subset the workspace uses — `into_par_iter()`
//! followed by `map` / `flat_map_iter` / `filter_map` and `collect()`, plus
//! [`join`] — on top of `std::thread::scope`. Work is split into contiguous
//! chunks, one per available core, and chunk outputs are concatenated in
//! order, so results are deterministic and identical to the sequential
//! evaluation (which upstream rayon also guarantees for these adaptors).
//!
//! Unlike upstream there is no work-stealing: each adaptor materialises its
//! input. The workspace only fans out cheap index ranges (graph-generator
//! chunk ids), for which this is equivalent in practice.

use std::num::NonZeroUsize;

/// Number of worker threads a parallel stage fans out to.
fn threads_for(len: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(len).max(1)
}

/// Run `items` through `per_item` (which may emit any number of outputs per
/// input) on a scoped thread pool, preserving input order in the output.
fn par_flat_apply<T, U, F>(items: Vec<T>, per_item: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> Vec<U> + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let nthreads = threads_for(n);
    if nthreads == 1 {
        return items.into_iter().flat_map(&per_item).collect();
    }
    let chunk_len = n.div_ceil(nthreads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(nthreads);
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let per_item = &per_item;
    let outputs: Vec<Vec<U>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || chunk.into_iter().flat_map(per_item).collect::<Vec<U>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon stand-in worker panicked"))
            .collect()
    });
    let total = outputs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for mut chunk in outputs {
        out.append(&mut chunk);
    }
    out
}

/// A materialised "parallel iterator": adaptors evaluate eagerly across
/// threads and hand their ordered output to the next stage.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map, preserving order.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: par_flat_apply(self.items, |t| vec![f(t)]),
        }
    }

    /// Parallel filter-map, preserving order.
    pub fn filter_map<U: Send, F: Fn(T) -> Option<U> + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: par_flat_apply(self.items, |t| f(t).into_iter().collect()),
        }
    }

    /// Parallel flat-map where each item yields a *serial* iterator, matching
    /// rayon's `flat_map_iter` (the per-item iterators are not themselves
    /// split).
    pub fn flat_map_iter<U, I, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync,
    {
        ParIter {
            items: par_flat_apply(self.items, |t| f(t).into_iter().collect()),
        }
    }

    /// Parallel filter, preserving order.
    pub fn filter<F: Fn(&T) -> bool + Sync>(self, f: F) -> ParIter<T> {
        ParIter {
            items: par_flat_apply(self.items, |t| if f(&t) { vec![t] } else { Vec::new() }),
        }
    }

    /// Collect the (already materialised, ordered) results.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items currently in the pipeline.
    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// Conversion into a [`ParIter`], mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Materialise this collection as a parallel pipeline.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_par!(u32, u64, usize, i32, i64);

/// Run two closures, potentially in parallel, and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon stand-in join worker panicked"))
    })
}

/// The prelude, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<u64> = (0u64..10_000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0u64..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_iter_matches_sequential() {
        let par: Vec<u64> = (0u64..257)
            .into_par_iter()
            .flat_map_iter(|c| (0..c % 5).map(move |i| c * 10 + i))
            .collect();
        let seq: Vec<u64> = (0u64..257)
            .flat_map(|c| (0..c % 5).map(move |i| c * 10 + i))
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn filter_map_and_empty_inputs_work() {
        let out: Vec<u32> = (0u32..0).into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let odd: Vec<u32> = (0u32..100)
            .into_par_iter()
            .filter_map(|x| (x % 2 == 1).then_some(x))
            .collect();
        assert_eq!(odd.len(), 50);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }
}
