//! Offline stand-in for the `serde_json` crate (see `vendor/README.md`).
//!
//! Mirrors the call-site shape of the real `serde_json::to_string` — generic
//! over `serde::Serialize`, returning `Result<String, Error>` — so code written
//! against this stand-in keeps compiling if the real crates are restored. With
//! the vendored `serde`, serialisation is infallible, so the error arm is never
//! produced here.

use std::fmt;

/// Serialisation error, mirroring `serde_json::Error`'s role in signatures.
/// The vendored JSON writer is infallible, so values of this type are never
/// constructed; it exists to keep call sites source-compatible.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialisation error")
    }
}

impl std::error::Error for Error {}

/// Serialise `value` to a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_string(value))
}

#[cfg(test)]
mod tests {
    #[test]
    fn to_string_matches_the_writer() {
        assert_eq!(super::to_string(&vec![1u32, 2]).unwrap(), "[1,2]");
        assert_eq!(super::to_string("x").unwrap(), "\"x\"");
    }
}
