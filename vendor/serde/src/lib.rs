//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! Provides the [`Serialize`] / [`Deserialize`] traits the workspace derives,
//! with serialisation hard-wired to JSON: `Serialize::json_into` appends the
//! JSON encoding of a value to a string, and [`json::to_string`] is the
//! convenience entry point. `Deserialize` is a marker trait only — nothing in
//! the workspace parses JSON back.
//!
//! `#[derive(Serialize, Deserialize)]` (re-exported from the sibling
//! `serde_derive` stand-in) supports named structs and fieldless enums, which
//! covers every derived type in the workspace.

pub use serde_derive::{Deserialize, Serialize};

/// A value that can be written as JSON.
pub trait Serialize {
    /// Append this value's JSON encoding to `out`.
    fn json_into(&self, out: &mut String);
}

/// Marker for types that would be deserialisable with the real `serde`.
pub trait Deserialize {}

/// Append a JSON string literal (with escaping) to `out`.
pub fn write_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_display_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_into(&self, out: &mut String) {
                out.push_str(itoa_buf(&mut [0u8; 40], *self as i128));
            }
        }
    )*};
}

/// Format an integer without going through `format!` (keeps the hot JSON path
/// allocation-free apart from the output string itself).
fn itoa_buf(buf: &mut [u8; 40], mut v: i128) -> &str {
    let neg = v < 0;
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10).unsigned_abs() as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    if neg {
        i -= 1;
        buf[i] = b'-';
    }
    std::str::from_utf8(&buf[i..]).expect("ascii digits")
}

impl_serialize_display_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn json_into(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl Serialize for i128 {
    fn json_into(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_into(&self, out: &mut String) {
                if self.is_finite() {
                    // `{:?}` round-trips f64 (shortest representation).
                    out.push_str(&format!("{self:?}"));
                } else {
                    // JSON has no NaN/Infinity; follow serde_json's default.
                    out.push_str("null");
                }
            }
        }
    )*};
}

impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn json_into(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn json_into(&self, out: &mut String) {
        write_json_str(self, out);
    }
}

impl Serialize for String {
    fn json_into(&self, out: &mut String) {
        write_json_str(self, out);
    }
}

impl Serialize for char {
    fn json_into(&self, out: &mut String) {
        write_json_str(&self.to_string(), out);
    }
}

impl Serialize for std::time::Duration {
    fn json_into(&self, out: &mut String) {
        // Durations serialise as fractional seconds; the workspace only reads
        // them for human consumption in reports.
        self.as_secs_f64().json_into(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json_into(&self, out: &mut String) {
        (**self).json_into(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json_into(&self, out: &mut String) {
        match self {
            Some(v) => v.json_into(out),
            None => out.push_str("null"),
        }
    }
}

fn write_json_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.json_into(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn json_into(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json_into(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json_into(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn json_into(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(&k.to_string(), out);
            out.push(':');
            v.json_into(out);
        }
        out.push('}');
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn json_into(&self, out: &mut String) {
        out.push('[');
        self.0.json_into(out);
        out.push(',');
        self.1.json_into(out);
        out.push(']');
    }
}

/// JSON entry points (the stand-in for `serde_json`).
pub mod json {
    use super::Serialize;

    /// Serialise `value` to a JSON string.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        value.json_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::json::to_string;

    #[test]
    fn scalars_and_strings_encode_as_json() {
        assert_eq!(to_string(&42u64), "42");
        assert_eq!(to_string(&-7i32), "-7");
        assert_eq!(to_string(&true), "true");
        assert_eq!(to_string(&1.5f64), "1.5");
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn containers_encode_as_json() {
        assert_eq!(to_string(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(to_string(&Option::<u32>::None), "null");
        assert_eq!(to_string(&Some(5u8)), "5");
        let mut m = std::collections::BTreeMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        assert_eq!(to_string(&m), "{\"a\":1,\"b\":2}");
        assert_eq!(to_string(&std::time::Duration::from_millis(1500)), "1.5");
    }
}
