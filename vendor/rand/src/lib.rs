//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset the workspace uses: a deterministic small PRNG
//! ([`rngs::SmallRng`], xoshiro256++ seeded via splitmix64), the [`Rng`] /
//! [`SeedableRng`] traits with `gen`, `gen_range` and `gen_bool`, and
//! [`seq::SliceRandom`] with `shuffle` / `choose`.
//!
//! The streams produced differ from upstream `rand`'s `SmallRng`; the
//! workspace only relies on determinism for a fixed seed, which this crate
//! guarantees (the generator is a fixed, platform-independent algorithm).

/// A source of random `u64` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it with splitmix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output, the
/// stand-in for sampling from `rand`'s `Standard` distribution via `rng.gen()`.
pub trait StandardSample {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly; implemented for half-open `Range`s
/// over the integer types the workspace draws from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, bound)` without modulo bias (Lemire's method would
/// be overkill here; rejection sampling on the top bits is exact and fast
/// enough for graph generation).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection zone at the top of the u64 range.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let raw = rng.next_u64();
        if raw <= zone {
            return raw % bound;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of its type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Sample uniformly from a half-open range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++ with splitmix64
    /// seed expansion (Blackman & Vigna). Not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::RngCore;

    /// Shuffling and sampling on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_hits_members() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
