//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the two
//! shapes the workspace derives on — **named-field structs** and **fieldless
//! enums** — without depending on `syn`/`quote`. Anything else (tuple
//! structs, generics, data-carrying enums, `#[serde(...)]` attributes) is
//! rejected with a compile-time panic naming the offending item, so a future
//! switch back to the real `serde_derive` can only widen what compiles.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a derive input turned out to be.
enum Shape {
    /// Named struct with its field names, in declaration order.
    Struct(Vec<String>),
    /// Fieldless enum with its variant names.
    Enum(Vec<String>),
}

/// Parse a derive input into `(type_name, shape)`.
fn parse_input(input: TokenStream, trait_name: &str) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + [...]
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive({trait_name}): expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive({trait_name}): expected a type name, found {other:?}"),
    };
    i += 1;

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => panic!(
            "derive({trait_name}) stand-in does not support generic type `{name}`; \
             write the impl by hand or use the real serde_derive"
        ),
        _ => panic!(
            "derive({trait_name}) stand-in supports named structs and fieldless enums only \
             (offending type: `{name}`)"
        ),
    };

    let shape = match keyword.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body, &name, trait_name)),
        "enum" => Shape::Enum(parse_fieldless_variants(body, &name, trait_name)),
        other => panic!("derive({trait_name}): unsupported item kind `{other}`"),
    };
    (name, shape)
}

/// Extract field names from a named-struct body.
fn parse_named_fields(body: TokenStream, type_name: &str, trait_name: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility in front of the field.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let field = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!(
                "derive({trait_name}): unexpected token {other:?} in struct `{type_name}` \
                 (tuple structs are not supported by the stand-in)"
            ),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "derive({trait_name}): expected `:` after field `{field}` of `{type_name}`, \
                 found {other:?}"
            ),
        }
        fields.push(field);
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Extract variant names from an enum body, rejecting data-carrying variants.
fn parse_fieldless_variants(body: TokenStream, type_name: &str, trait_name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                _ => break,
            }
        }
        let variant = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => {
                panic!("derive({trait_name}): unexpected token {other:?} in enum `{type_name}`")
            }
        };
        match iter.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            Some(TokenTree::Group(_)) => panic!(
                "derive({trait_name}) stand-in does not support data-carrying variant \
                 `{type_name}::{variant}`"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => panic!(
                "derive({trait_name}) stand-in does not support explicit discriminants \
                 (`{type_name}::{variant}`)"
            ),
            Some(other) => {
                panic!("derive({trait_name}): unexpected token {other:?} after `{variant}`")
            }
        }
    }
    variants
}

/// `#[derive(Serialize)]`: JSON object for structs, JSON string for enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input, "Serialize");
    let body = match shape {
        Shape::Struct(fields) => {
            if fields.is_empty() {
                "out.push_str(\"{}\");".to_string()
            } else {
                let mut code = String::from("out.push('{');\n");
                for (i, field) in fields.iter().enumerate() {
                    if i > 0 {
                        code.push_str("out.push(',');\n");
                    }
                    code.push_str(&format!(
                        "::serde::write_json_str(\"{field}\", out);\n\
                         out.push(':');\n\
                         ::serde::Serialize::json_into(&self.{field}, out);\n"
                    ));
                }
                code.push_str("out.push('}');");
                code
            }
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\""))
                .collect();
            format!(
                "let variant = match self {{ {} }};\n::serde::write_json_str(variant, out);",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn json_into(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("derive(Serialize) stand-in generated invalid Rust")
}

/// `#[derive(Deserialize)]`: marker impl only (the stand-in never parses).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, _shape) = parse_input(input, "Deserialize");
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("derive(Deserialize) stand-in generated invalid Rust")
}
