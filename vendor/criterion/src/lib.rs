//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Keeps the macro and builder surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`black_box`] — but replaces the statistical machinery
//! with a plain warmup + N-sample loop reporting mean/min/max wall-clock
//! time. Honours `CRITERION_SAMPLE_SIZE` to override the per-bench sample
//! count (handy for smoke runs in CI).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let default_sample_size = std::env::var("CRITERION_SAMPLE_SIZE")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(20);
        Criterion {
            default_sample_size,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            sample_size,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_one(id, sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Extend the measurement budget — accepted for API compatibility; the
    /// stand-in's budget is purely sample-count-driven.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure under the given id.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, &mut f);
        self
    }

    /// Benchmark a closure parameterised by an input value.
    pub fn bench_with_input<I: Display, P, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finish the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter value.
    pub fn new(name: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Hands the closure under measurement to the timing loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`: one untimed warmup call, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {id:<40} (no samples: Bencher::iter was never called)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    println!(
        "  {id:<40} mean {:>12.6?}   min {:>12.6?}   max {:>12.6?}   ({} samples)",
        mean,
        min,
        max,
        bencher.samples.len()
    );
}

/// Bundle benchmark functions into one group runner, mirroring criterion's
/// `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more groups, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion {
            default_sample_size: 3,
        };
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut calls = 0u32;
        group.bench_function("count_calls", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // 1 warmup + 2 samples.
        assert_eq!(calls, 3);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("pr", 4).to_string(), "pr/4");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }
}
