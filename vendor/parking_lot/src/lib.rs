//! Offline stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Exposes the two primitives the workspace uses — [`Mutex`] and [`RwLock`] —
//! with `parking_lot`'s non-poisoning semantics, implemented over their
//! `std::sync` counterparts: if a thread panics while holding a lock, the lock
//! is released and the protected data remains accessible.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard, TryLockError,
};

/// A non-poisoning mutual exclusion primitive with `parking_lot`'s API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Unlike `std`, a panic
    /// in another thread while holding the lock does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access to the mutex).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A non-poisoning reader-writer lock with `parking_lot`'s API shape.
///
/// The serving layer uses it as the publication point of immutable `Arc`'d
/// snapshots: any number of readers clone the current `Arc` under the shared
/// lock while a single writer swaps the pointer — the stand-in for the
/// `arc-swap` pattern in environments without that crate.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// RAII shared-access guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdRwLockReadGuard<'a, T>;

/// RAII exclusive-access guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdRwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until no writer holds the lock.
    /// Unlike `std`, a panic in another thread while holding the lock does not
    /// poison it.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempt to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access to the lock).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_allows_concurrent_readers_and_survives_panics() {
        let l = std::sync::Arc::new(RwLock::new(5u32));
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (5, 5));
        }
        *l.write() = 6;
        let l2 = std::sync::Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*l.read(), 6);
        assert!(l.try_read().is_some());
    }

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(7u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
