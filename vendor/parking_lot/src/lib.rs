//! Offline stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Exposes the one primitive the workspace uses — [`Mutex`] — with
//! `parking_lot`'s non-poisoning semantics, implemented over `std::sync::Mutex`:
//! if a thread panics while holding the lock, the lock is released and the
//! protected data remains accessible.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, TryLockError};

/// A non-poisoning mutual exclusion primitive with `parking_lot`'s API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Unlike `std`, a panic
    /// in another thread while holding the lock does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access to the mutex).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(7u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
