//! Umbrella crate for the XtraPuLP reproduction workspace.
//!
//! This crate exists to host the runnable [examples](https://doc.rust-lang.org/cargo/guide/project-layout.html)
//! and the cross-crate integration tests in `/tests`. It re-exports every
//! workspace crate under a short alias so examples read naturally:
//!
//! ```
//! use xtrapulp_suite::prelude::*;
//! ```
//!
//! The recommended entry point is the [`api`] facade: a persistent [`Session`](api::Session)
//! owning a reusable rank runtime, the [`Method`](api::Method) registry resolving any of
//! the seven partitioning methods by name, and JSON-able
//! [`PartitionReport`](api::PartitionReport) results with typed
//! [`PartitionError`](api::PartitionError) failures.

pub use xtrapulp as core;
pub use xtrapulp_analytics as analytics;
pub use xtrapulp_api as api;
pub use xtrapulp_comm as comm;
pub use xtrapulp_dynamic as dynamic;
pub use xtrapulp_gen as gen;
pub use xtrapulp_graph as graph;
pub use xtrapulp_multilevel as multilevel;
pub use xtrapulp_obs as obs;
pub use xtrapulp_serve as serve;
pub use xtrapulp_spmv as spmv;

/// Convenience re-exports used by the examples and integration tests.
pub mod prelude {
    pub use xtrapulp::{
        metrics::PartitionQuality, PartitionError, PartitionParams, Partitioner, PulpPartitioner,
        WarmStartPartitioner, XtraPulpPartitioner,
    };
    pub use xtrapulp_api::{
        DynamicReport, DynamicSession, EpochStore, IngestError, Method, PartitionJob,
        PartitionReport, PartitionSnapshot, ServeConfig, ServeStats, ServingSession, Session,
        UpdateBatch, UpdateError,
    };
    pub use xtrapulp_comm::{CommStats, RankCtx, Runtime};
    pub use xtrapulp_dynamic::{DynamicGraph, GraphDelta, UpdateOp};
    pub use xtrapulp_gen::{GraphConfig, GraphKind};
    pub use xtrapulp_graph::{Csr, DistGraph, Distribution};
}
