//! Replay recorded mutation traces through the ingest queue.
//!
//! An update log ([`xtrapulp_graph::io::read_update_log`]) is a flat, timestamped op
//! sequence; replay re-chunks it into [`UpdateBatch`]es and submits them with blocking
//! backpressure, so a recorded trace drives the whole serve pipeline — queue → worker →
//! dynamic subsystem → epoch store — exactly like live producers.
//!
//! Chunking splits, never merges, and keeps every chunk self-consistent: a chunk is
//! flushed when it reaches the op budget *or* when the incoming op touches an
//! undirected edge already touched in the chunk (batch validation rejects
//! insert/delete conflicts within one batch, and a recorded trace may legitimately
//! insert an edge and delete it again later).

use std::collections::HashSet;
use std::fmt;
use std::io;
use std::path::Path;

use xtrapulp_dynamic::UpdateBatch;
use xtrapulp_graph::io::read_update_log;
use xtrapulp_graph::{GlobalId, TimedOp, UpdateOp};

use crate::queue::{IngestError, IngestQueue};

/// Why a replay stopped early.
#[derive(Debug)]
pub enum ReplayError {
    /// Reading the log failed.
    Io(io::Error),
    /// Submitting a chunk failed (the queue closed mid-replay; blocking submits never
    /// see `QueueFull`).
    Ingest(IngestError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Io(e) => write!(f, "reading the update log failed: {e}"),
            ReplayError::Ingest(e) => write!(f, "submitting a replay chunk failed: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<io::Error> for ReplayError {
    fn from(e: io::Error) -> ReplayError {
        ReplayError::Io(e)
    }
}

impl From<IngestError> for ReplayError {
    fn from(e: IngestError) -> ReplayError {
        ReplayError::Ingest(e)
    }
}

/// What a completed replay submitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Ops submitted.
    pub ops: u64,
    /// Batches the ops were chunked into.
    pub batches: u64,
}

/// Chunk `ops` into self-consistent batches of at most `max_batch_ops` ops and submit
/// each with blocking backpressure.
pub fn replay_ops(
    queue: &IngestQueue,
    ops: impl IntoIterator<Item = TimedOp>,
    max_batch_ops: usize,
) -> Result<ReplayOutcome, IngestError> {
    let max_batch_ops = max_batch_ops.clamp(1, queue.capacity_ops());
    let mut outcome = ReplayOutcome { ops: 0, batches: 0 };
    let mut chunk = UpdateBatch::new();
    let mut touched: HashSet<(GlobalId, GlobalId)> = HashSet::new();
    let mut flush = |chunk: &mut UpdateBatch,
                     touched: &mut HashSet<(GlobalId, GlobalId)>|
     -> Result<(), IngestError> {
        if chunk.is_empty() {
            return Ok(());
        }
        outcome.ops += chunk.len() as u64;
        outcome.batches += 1;
        queue.submit(std::mem::take(chunk))?;
        touched.clear();
        Ok(())
    };
    for t in ops {
        let edge_key = match t.op {
            UpdateOp::InsertEdge(u, v) | UpdateOp::DeleteEdge(u, v) => Some((u.min(v), u.max(v))),
            UpdateOp::AddVertices(_) => None,
        };
        // Same undirected edge touched twice: the second touch starts a new chunk, so
        // each submitted batch stays valid under batch-level conflict checking.
        if let Some(key) = edge_key {
            if touched.contains(&key) {
                flush(&mut chunk, &mut touched)?;
            }
            touched.insert(key);
        }
        chunk.push(t.op);
        if chunk.len() >= max_batch_ops {
            flush(&mut chunk, &mut touched)?;
        }
    }
    flush(&mut chunk, &mut touched)?;
    Ok(outcome)
}

/// Read an update log from disk (format auto-detected from the extension) and replay
/// it through `queue`.
pub fn replay_update_log(
    queue: &IngestQueue,
    path: &Path,
    max_batch_ops: usize,
) -> Result<ReplayOutcome, ReplayError> {
    let ops = read_update_log(path)?;
    Ok(replay_ops(queue, ops, max_batch_ops)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timed(ops: &[UpdateOp]) -> Vec<TimedOp> {
        ops.iter()
            .enumerate()
            .map(|(i, &op)| TimedOp {
                time: i as u64 + 1,
                op,
            })
            .collect()
    }

    #[test]
    fn replay_chunks_at_the_op_budget() {
        let queue = IngestQueue::new(1000);
        let ops = timed(&[
            UpdateOp::InsertEdge(0, 1),
            UpdateOp::InsertEdge(1, 2),
            UpdateOp::InsertEdge(2, 3),
            UpdateOp::InsertEdge(3, 4),
            UpdateOp::InsertEdge(4, 5),
        ]);
        let outcome = replay_ops(&queue, ops, 2).unwrap();
        assert_eq!(outcome.ops, 5);
        assert_eq!(outcome.batches, 3);
        assert_eq!(queue.queued_batches(), 3);
    }

    #[test]
    fn replay_splits_on_edge_conflicts() {
        let queue = IngestQueue::new(1000);
        // Insert {0,1}, then delete it later in the trace: one batch would be an
        // insert/delete conflict, so the delete must open a new chunk.
        let ops = timed(&[
            UpdateOp::InsertEdge(0, 1),
            UpdateOp::InsertEdge(2, 3),
            UpdateOp::DeleteEdge(1, 0),
        ]);
        let outcome = replay_ops(&queue, ops, 100).unwrap();
        assert_eq!(outcome.batches, 2);
        let policy = crate::queue::BatchPolicy {
            max_group_ops: 1,
            max_group_batches: 1,
        };
        let first = queue.drain_group(&policy).unwrap();
        assert_eq!(first[0].batch.len(), 2);
        let second = queue.drain_group(&policy).unwrap();
        assert_eq!(
            second[0].batch.ops(),
            &[UpdateOp::DeleteEdge(1, 0)],
            "the conflicting delete lands in its own batch"
        );
    }

    #[test]
    fn replay_update_log_reads_and_submits() {
        let mut path = std::env::temp_dir();
        path.push(format!("xtrapulp-serve-replay-{}.ulog", std::process::id()));
        let ops = timed(&[
            UpdateOp::AddVertices(2),
            UpdateOp::InsertEdge(0, 1),
            UpdateOp::InsertEdge(1, 2),
        ]);
        xtrapulp_graph::io::write_update_log(&path, &ops).unwrap();
        let queue = IngestQueue::new(100);
        let outcome = replay_update_log(&queue, &path, 10).unwrap();
        assert_eq!(outcome, ReplayOutcome { ops: 3, batches: 1 });
        assert_eq!(queue.queued_ops(), 3);
        std::fs::remove_file(&path).ok();
    }
}
