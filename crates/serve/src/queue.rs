//! The bounded multi-producer ingest queue feeding the background repartition worker.
//!
//! Producers submit whole [`UpdateBatch`]es (a single op is a one-op batch); the queue
//! is bounded by *total queued ops*, so a burst of producers sees typed backpressure
//! ([`IngestError::QueueFull`]) instead of unbounded memory growth. Batch boundaries
//! are preserved end to end — the worker applies each batch through the dynamic
//! subsystem's validation individually, so one producer's bad batch can never poison
//! another's — and the worker drains *groups* of consecutive batches up to a
//! [`BatchPolicy`] flush threshold, amortising one repartition over several queued
//! batches when producers outpace the partitioner.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use xtrapulp_dynamic::UpdateBatch;

/// Why a submission was not enqueued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The queue's op budget cannot take this batch right now (backpressure). The
    /// producer can retry, drop the batch, or use a blocking submit.
    QueueFull {
        /// Ops currently queued.
        queued_ops: usize,
        /// The queue's total op capacity.
        capacity: usize,
        /// Ops in the rejected batch.
        batch_ops: usize,
    },
    /// The batch alone exceeds the queue's total capacity; it can never be enqueued.
    /// Split it or grow the queue.
    BatchTooLarge {
        /// Ops in the rejected batch.
        batch_ops: usize,
        /// The queue's total op capacity.
        capacity: usize,
    },
    /// A bounded-wait submit ([`IngestQueue::submit_deadline`]) gave up: the queue
    /// stayed full for the whole wait. The batch was not enqueued.
    Timeout {
        /// How long the producer waited before giving up.
        waited_ms: u64,
        /// Ops in the rejected batch.
        batch_ops: usize,
    },
    /// The queue has been closed (the serving session is shutting down); no further
    /// submissions are accepted.
    Closed,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::QueueFull {
                queued_ops,
                capacity,
                batch_ops,
            } => write!(
                f,
                "ingest queue full: {queued_ops}/{capacity} ops queued, batch of \
                 {batch_ops} ops rejected"
            ),
            IngestError::BatchTooLarge {
                batch_ops,
                capacity,
            } => write!(
                f,
                "batch of {batch_ops} ops exceeds the queue capacity of {capacity} ops; \
                 split the batch or grow the queue"
            ),
            IngestError::Timeout {
                waited_ms,
                batch_ops,
            } => write!(
                f,
                "ingest queue stayed full for {waited_ms}ms; batch of {batch_ops} ops \
                 not enqueued"
            ),
            IngestError::Closed => write!(f, "ingest queue is closed"),
        }
    }
}

impl std::error::Error for IngestError {}

/// One queued batch, stamped at submission so ingest-to-publish latency is measurable.
#[derive(Debug, Clone)]
pub struct QueuedBatch {
    /// The submitted batch.
    pub batch: UpdateBatch,
    /// When the batch entered the queue.
    pub enqueued_at: Instant,
}

/// When the worker stops draining and repartitions: after `max_group_ops` queued ops
/// or `max_group_batches` batches, whichever comes first (always at least one batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Op-count flush threshold per drained group.
    pub max_group_ops: usize,
    /// Batch-count flush threshold per drained group.
    pub max_group_batches: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_group_ops: 4096,
            max_group_batches: 64,
        }
    }
}

#[derive(Debug, Default)]
struct QueueState {
    queue: VecDeque<QueuedBatch>,
    queued_ops: usize,
    closed: bool,
}

/// The bounded MPSC ingest queue. Producers share it behind an `Arc`; the single
/// consumer is the background worker's [`drain_group`](IngestQueue::drain_group) loop.
#[derive(Debug)]
pub struct IngestQueue {
    state: Mutex<QueueState>,
    /// Signalled when batches arrive or the queue closes (consumer side).
    readable: Condvar,
    /// Signalled when ops drain or the queue closes (blocked producers).
    writable: Condvar,
    capacity_ops: usize,
}

impl IngestQueue {
    /// A queue accepting at most `capacity_ops` total queued ops (minimum 1).
    pub fn new(capacity_ops: usize) -> IngestQueue {
        IngestQueue {
            state: Mutex::new(QueueState::default()),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity_ops: capacity_ops.max(1),
        }
    }

    /// The queue's total op capacity.
    pub fn capacity_ops(&self) -> usize {
        self.capacity_ops
    }

    /// Ops currently queued (the live queue depth).
    pub fn queued_ops(&self) -> usize {
        self.lock().queued_ops
    }

    /// Batches currently queued.
    pub fn queued_batches(&self) -> usize {
        self.lock().queue.len()
    }

    /// Has [`close`](IngestQueue::close) been called?
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Approximate resident bytes of the queued batches (each op at ~24 bytes
    /// plus per-batch overhead). Feeds the
    /// `mem_bytes{subsystem="ingest_queue"}` gauge.
    pub fn approx_bytes(&self) -> u64 {
        let state = self.lock();
        state.queued_ops as u64 * 24 + state.queue.len() as u64 * 64
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn check(&self, state: &QueueState, batch: &UpdateBatch) -> Result<(), IngestError> {
        if state.closed {
            return Err(IngestError::Closed);
        }
        if batch.len() > self.capacity_ops {
            return Err(IngestError::BatchTooLarge {
                batch_ops: batch.len(),
                capacity: self.capacity_ops,
            });
        }
        if state.queued_ops + batch.len() > self.capacity_ops {
            return Err(IngestError::QueueFull {
                queued_ops: state.queued_ops,
                capacity: self.capacity_ops,
                batch_ops: batch.len(),
            });
        }
        Ok(())
    }

    fn enqueue(&self, state: &mut QueueState, batch: UpdateBatch) {
        state.queued_ops += batch.len();
        state.queue.push_back(QueuedBatch {
            batch,
            enqueued_at: Instant::now(),
        });
        self.readable.notify_one();
    }

    /// Submit without blocking: typed backpressure when the op budget is exhausted.
    /// Empty batches are accepted and dropped (nothing to apply).
    pub fn try_submit(&self, batch: UpdateBatch) -> Result<(), IngestError> {
        if batch.is_empty() {
            return if self.lock().closed {
                Err(IngestError::Closed)
            } else {
                Ok(())
            };
        }
        let mut state = self.lock();
        self.check(&state, &batch)?;
        self.enqueue(&mut state, batch);
        Ok(())
    }

    /// Submit, blocking while the queue is full. Fails with
    /// [`IngestError::BatchTooLarge`] for batches that could never fit and
    /// [`IngestError::Closed`] if the queue closes while waiting.
    pub fn submit(&self, batch: UpdateBatch) -> Result<(), IngestError> {
        if batch.is_empty() {
            return if self.lock().closed {
                Err(IngestError::Closed)
            } else {
                Ok(())
            };
        }
        let mut state = self.lock();
        loop {
            match self.check(&state, &batch) {
                Ok(()) => {
                    self.enqueue(&mut state, batch);
                    return Ok(());
                }
                Err(IngestError::QueueFull { .. }) => {
                    state = self
                        .writable
                        .wait(state)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
                Err(fatal) => return Err(fatal),
            }
        }
    }

    /// Submit with a bounded wait: like [`submit`](IngestQueue::submit), but a queue
    /// that stays full past `deadline` fails with a typed [`IngestError::Timeout`]
    /// instead of blocking indefinitely — the backpressure form a producer with its
    /// own latency budget (an RPC handler, a replay driver with a cancellation
    /// deadline) needs. [`IngestError::BatchTooLarge`] and [`IngestError::Closed`]
    /// surface immediately, as in `submit`.
    pub fn submit_deadline(
        &self,
        batch: UpdateBatch,
        deadline: std::time::Duration,
    ) -> Result<(), IngestError> {
        if batch.is_empty() {
            return if self.lock().closed {
                Err(IngestError::Closed)
            } else {
                Ok(())
            };
        }
        let started = Instant::now();
        let mut state = self.lock();
        loop {
            match self.check(&state, &batch) {
                Ok(()) => {
                    self.enqueue(&mut state, batch);
                    return Ok(());
                }
                Err(IngestError::QueueFull { .. }) => {
                    let waited = started.elapsed();
                    if waited >= deadline {
                        return Err(IngestError::Timeout {
                            waited_ms: waited.as_millis() as u64,
                            batch_ops: batch.len(),
                        });
                    }
                    let (guard, _) = self
                        .writable
                        .wait_timeout(state, deadline - waited)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    state = guard;
                }
                Err(fatal) => return Err(fatal),
            }
        }
    }

    /// Close the queue: further submissions fail with [`IngestError::Closed`]; already
    /// queued batches remain drainable (the worker's drain-then-stop shutdown).
    pub fn close(&self) {
        let mut state = self.lock();
        state.closed = true;
        self.readable.notify_all();
        self.writable.notify_all();
    }

    /// Consumer side: block until at least one batch is queued (or the queue is closed
    /// *and* empty — the drain-then-stop terminal state, returning `None`), then drain
    /// consecutive batches until a `policy` flush threshold is reached.
    pub fn drain_group(&self, policy: &BatchPolicy) -> Option<Vec<QueuedBatch>> {
        match self.drain_group_wait(policy, None) {
            Drained::Group(group) => Some(group),
            Drained::Closed => None,
            Drained::TimedOut => unreachable!("no timeout was requested"),
        }
    }

    /// [`drain_group`](IngestQueue::drain_group) with an optional wait bound: with
    /// `Some(timeout)`, an empty queue returns [`Drained::TimedOut`] after the bound
    /// instead of blocking forever — the worker uses this to retry a pending publish
    /// under quiescent traffic.
    pub fn drain_group_wait(
        &self,
        policy: &BatchPolicy,
        timeout: Option<std::time::Duration>,
    ) -> Drained {
        let mut state = self.lock();
        while state.queue.is_empty() {
            if state.closed {
                return Drained::Closed;
            }
            match timeout {
                None => {
                    state = self
                        .readable
                        .wait(state)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
                Some(bound) => {
                    let (guard, wait) = self
                        .readable
                        .wait_timeout(state, bound)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    state = guard;
                    if wait.timed_out() && state.queue.is_empty() {
                        return if state.closed {
                            Drained::Closed
                        } else {
                            Drained::TimedOut
                        };
                    }
                }
            }
        }
        let mut group = Vec::new();
        let mut group_ops = 0usize;
        while let Some(front) = state.queue.front() {
            let ops = front.batch.len();
            // Always take at least one batch; after that, stop at the flush thresholds.
            if !group.is_empty()
                && (group.len() >= policy.max_group_batches.max(1)
                    || group_ops + ops > policy.max_group_ops.max(1))
            {
                break;
            }
            // The front the loop guard just inspected is popped; `else` is unreachable
            // but degrades to a clean stop instead of a panic.
            let Some(batch) = state.queue.pop_front() else {
                break;
            };
            group_ops += ops;
            state.queued_ops -= ops;
            group.push(batch);
        }
        // Room was freed; wake blocked producers.
        self.writable.notify_all();
        Drained::Group(group)
    }
}

/// What [`IngestQueue::drain_group_wait`] yielded.
#[derive(Debug)]
pub enum Drained {
    /// At least one batch, up to the policy's flush thresholds.
    Group(Vec<QueuedBatch>),
    /// The wait bound elapsed with the queue still empty (and open).
    TimedOut,
    /// The queue is closed and fully drained: the consumer's terminal state.
    Closed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn batch(ops: usize) -> UpdateBatch {
        let mut b = UpdateBatch::new();
        for i in 0..ops {
            b.insert_edge(i as u64, (i + 1) as u64);
        }
        b
    }

    #[test]
    fn try_submit_backpressures_at_the_op_budget() {
        let q = IngestQueue::new(10);
        q.try_submit(batch(6)).unwrap();
        assert_eq!(q.queued_ops(), 6);
        let err = q.try_submit(batch(5)).unwrap_err();
        assert!(
            matches!(
                err,
                IngestError::QueueFull {
                    queued_ops: 6,
                    capacity: 10,
                    batch_ops: 5
                }
            ),
            "{err}"
        );
        // A batch that fits the remaining budget is accepted.
        q.try_submit(batch(4)).unwrap();
        assert_eq!(q.queued_ops(), 10);
        assert_eq!(q.queued_batches(), 2);
    }

    #[test]
    fn oversized_batches_are_permanently_rejected() {
        let q = IngestQueue::new(3);
        for submit in [IngestQueue::try_submit, IngestQueue::submit] {
            let err = submit(&q, batch(4)).unwrap_err();
            assert!(matches!(err, IngestError::BatchTooLarge { .. }), "{err}");
        }
    }

    #[test]
    fn drain_group_respects_flush_thresholds() {
        let q = IngestQueue::new(100);
        for _ in 0..5 {
            q.try_submit(batch(4)).unwrap();
        }
        let policy = BatchPolicy {
            max_group_ops: 10,
            max_group_batches: 64,
        };
        // 4 + 4 fits in 10; a third batch would exceed it.
        let group = q.drain_group(&policy).unwrap();
        assert_eq!(group.len(), 2);
        assert_eq!(q.queued_batches(), 3);
        let policy = BatchPolicy {
            max_group_ops: 1000,
            max_group_batches: 2,
        };
        assert_eq!(q.drain_group(&policy).unwrap().len(), 2);
        // The batch-count cap.
        assert_eq!(q.drain_group(&policy).unwrap().len(), 1);
    }

    #[test]
    fn close_unblocks_producer_and_consumer_and_preserves_queued_batches() {
        let q = Arc::new(IngestQueue::new(4));
        q.try_submit(batch(4)).unwrap();
        // A producer blocked on a full queue observes the close as a typed error.
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.submit(batch(2)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(IngestError::Closed));
        assert_eq!(q.try_submit(batch(1)), Err(IngestError::Closed));
        // Drain-then-stop: the queued batch is still served, then None.
        let policy = BatchPolicy::default();
        assert_eq!(q.drain_group(&policy).unwrap().len(), 1);
        assert!(q.drain_group(&policy).is_none());
    }

    #[test]
    fn submit_deadline_times_out_typed_on_a_stuck_queue() {
        let q = IngestQueue::new(4);
        q.try_submit(batch(4)).unwrap();
        let started = std::time::Instant::now();
        let err = q
            .submit_deadline(batch(2), Duration::from_millis(30))
            .unwrap_err();
        assert!(
            matches!(err, IngestError::Timeout { batch_ops: 2, .. }),
            "{err}"
        );
        assert!(started.elapsed() >= Duration::from_millis(30));
        // Deadline zero degrades to try_submit semantics with a typed timeout.
        let err = q.submit_deadline(batch(1), Duration::ZERO).unwrap_err();
        assert!(matches!(err, IngestError::Timeout { .. }), "{err}");
    }

    #[test]
    fn submit_deadline_succeeds_once_the_consumer_drains() {
        let q = Arc::new(IngestQueue::new(4));
        q.try_submit(batch(4)).unwrap();
        let q2 = Arc::clone(&q);
        let drainer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.drain_group(&BatchPolicy::default())
        });
        q.submit_deadline(batch(3), Duration::from_secs(10))
            .expect("room frees up well within the deadline");
        assert_eq!(drainer.join().unwrap().unwrap().len(), 1);
        assert_eq!(q.queued_ops(), 3);
        // Closed and oversized batches fail immediately, not after the wait.
        let err = q
            .submit_deadline(batch(9), Duration::from_secs(10))
            .unwrap_err();
        assert!(matches!(err, IngestError::BatchTooLarge { .. }), "{err}");
        q.close();
        assert_eq!(
            q.submit_deadline(batch(1), Duration::from_secs(10)),
            Err(IngestError::Closed)
        );
    }

    #[test]
    fn empty_batches_are_accepted_and_dropped() {
        let q = IngestQueue::new(1);
        q.try_submit(UpdateBatch::new()).unwrap();
        q.submit(UpdateBatch::new()).unwrap();
        assert_eq!(q.queued_batches(), 0);
    }
}
