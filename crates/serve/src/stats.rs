//! Serving counters: what the worker records and operators read.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;
use xtrapulp_obs::{Histogram, HistogramSnapshot};

/// Lock-free counter and histogram cells shared between the worker (writer) and any
/// thread asking for a [`ServeStats`] snapshot. Counters are monotonic; the latency
/// distributions are log-bucketed atomic histograms (every publish cycle and every
/// applied batch is recorded, not just the most recent).
#[derive(Debug, Default)]
pub(crate) struct StatsCells {
    pub epochs_published: AtomicU64,
    pub warm_epochs: AtomicU64,
    pub cold_epochs: AtomicU64,
    pub batches_applied: AtomicU64,
    pub batches_rejected: AtomicU64,
    pub ops_applied: AtomicU64,
    pub repartition_failures: AtomicU64,
    /// Total nanoseconds across all publish cycles.
    pub total_publish_nanos: AtomicU64,
    /// Nanoseconds of each apply+repartition+publish cycle.
    pub publish_nanos: Histogram,
    /// Nanoseconds from each applied batch entering the queue to its epoch being
    /// published — the end-to-end ingest-to-publish latency, one sample per batch
    /// (batches whose first repartition fails keep accruing until the retry lands).
    pub ingest_to_publish_nanos: Histogram,
    /// `lp_sweeps` of the last published epoch.
    pub last_lp_sweeps: AtomicU64,
    /// `vertices_scored` of the last published epoch.
    pub last_vertices_scored: AtomicU64,
}

impl StatsCells {
    pub(crate) fn add(&self, cell: &AtomicU64, value: u64) {
        cell.fetch_add(value, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
    }

    pub(crate) fn set(&self, cell: &AtomicU64, value: u64) {
        cell.store(value, Ordering::Relaxed); // ordering: gauge publish; stats readers accept a stale value
    }

    pub(crate) fn snapshot(&self, queue_depth_ops: u64, queue_depth_batches: u64) -> ServeStats {
        let get = |cell: &AtomicU64| cell.load(Ordering::Relaxed); // ordering: stats snapshot; fields may be mutually torn, documented on ServeStats
        let publish = self.publish_nanos.snapshot();
        let ingest = self.ingest_to_publish_nanos.snapshot();
        ServeStats {
            epochs_published: get(&self.epochs_published),
            warm_epochs: get(&self.warm_epochs),
            cold_epochs: get(&self.cold_epochs),
            batches_applied: get(&self.batches_applied),
            batches_rejected: get(&self.batches_rejected),
            ops_applied: get(&self.ops_applied),
            repartition_failures: get(&self.repartition_failures),
            queue_depth_ops,
            queue_depth_batches,
            total_publish_seconds: get(&self.total_publish_nanos) as f64 * 1e-9,
            publish_seconds_p50: publish.p50() as f64 * 1e-9,
            publish_seconds_p99: publish.p99() as f64 * 1e-9,
            ingest_to_publish_seconds_p50: ingest.p50() as f64 * 1e-9,
            ingest_to_publish_seconds_p99: ingest.p99() as f64 * 1e-9,
            last_lp_sweeps: get(&self.last_lp_sweeps),
            last_vertices_scored: get(&self.last_vertices_scored),
        }
    }
}

/// A point-in-time view of the serving subsystem's counters. JSON-able, so benches and
/// monitoring endpoints can emit it directly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ServeStats {
    /// Epochs published by the worker (the initial cold epoch is published by the
    /// spawner, before the worker starts, and is *not* counted here).
    pub epochs_published: u64,
    /// Published epochs that ran warm-started.
    pub warm_epochs: u64,
    /// Published epochs that ran from scratch.
    pub cold_epochs: u64,
    /// Update batches validated and applied to the live graph.
    pub batches_applied: u64,
    /// Update batches the dynamic subsystem rejected (typed validation errors); the
    /// graph is untouched by a rejected batch.
    pub batches_rejected: u64,
    /// Total ops across applied batches.
    pub ops_applied: u64,
    /// Repartition attempts that failed (the previous epoch keeps serving).
    pub repartition_failures: u64,
    /// Ops currently waiting in the ingest queue.
    pub queue_depth_ops: u64,
    /// Batches currently waiting in the ingest queue.
    pub queue_depth_batches: u64,
    /// Cumulative wall-clock seconds across all publish cycles.
    pub total_publish_seconds: f64,
    /// Median wall-clock seconds of an apply+repartition+publish cycle.
    pub publish_seconds_p50: f64,
    /// 99th-percentile wall-clock seconds of an apply+repartition+publish cycle.
    pub publish_seconds_p99: f64,
    /// Median seconds from a batch entering the queue to its epoch going live — what a
    /// producer actually waits for its mutation to be reflected in served partitions.
    /// One sample per applied batch, not per group.
    pub ingest_to_publish_seconds_p50: f64,
    /// 99th-percentile seconds from a batch entering the queue to its epoch going live.
    pub ingest_to_publish_seconds_p99: f64,
    /// Label-propagation sweeps of the last published epoch (warm runs: far fewer
    /// than the cold baseline).
    pub last_lp_sweeps: u64,
    /// Vertices scored by the last published epoch's run.
    pub last_vertices_scored: u64,
}

impl ServeStats {
    /// Serialise to one JSON object. Infallible by construction: every field is a
    /// plain number and the writer appends to an in-memory `String`.
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }
}

/// The serving pipeline's latency distributions, as mergeable snapshots. Benches
/// subtract consecutive snapshots ([`HistogramSnapshot::delta_since`]) to report
/// percentiles per measurement window.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeLatencies {
    /// Nanoseconds of each apply+repartition+publish cycle.
    pub publish_nanos: HistogramSnapshot,
    /// Nanoseconds from each applied batch's enqueue to its epoch's publish.
    pub ingest_to_publish_nanos: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_cells_and_serialises() {
        let cells = StatsCells::default();
        cells.add(&cells.epochs_published, 3);
        cells.add(&cells.warm_epochs, 2);
        cells.add(&cells.cold_epochs, 1);
        cells.add(&cells.ops_applied, 40);
        cells.publish_nanos.record(2_500_000_000);
        let stats = cells.snapshot(7, 2);
        assert_eq!(stats.epochs_published, 3);
        assert_eq!(stats.warm_epochs + stats.cold_epochs, 3);
        assert_eq!(stats.queue_depth_ops, 7);
        // One sample: percentiles land in its bucket (≤ 1/32 error).
        assert!((stats.publish_seconds_p50 - 2.5).abs() < 2.5 / 32.0);
        assert!((stats.publish_seconds_p99 - 2.5).abs() < 2.5 / 32.0);
        let json = stats.to_json();
        for key in [
            "\"epochs_published\":3",
            "\"queue_depth_ops\":7",
            "\"publish_seconds_p50\":",
            "\"ingest_to_publish_seconds_p99\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn deprecated_mean_keys_are_gone_from_the_json() {
        let cells = StatsCells::default();
        for nanos in [1_000_000_000u64, 3_000_000_000] {
            cells.ingest_to_publish_nanos.record(nanos);
        }
        let stats = cells.snapshot(0, 0);
        let json = stats.to_json();
        assert!(!json.contains("last_publish_seconds"));
        assert!(!json.contains("last_ingest_to_publish_seconds"));
        // Percentiles straddle the two samples instead of reporting only the last.
        assert!(stats.ingest_to_publish_seconds_p50 < stats.ingest_to_publish_seconds_p99);
    }
}
