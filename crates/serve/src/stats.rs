//! Serving counters: what the worker records and operators read.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

/// Lock-free counter cells shared between the worker (writer) and any thread asking
/// for a [`ServeStats`] snapshot. All monotonic except the `last_*` gauges.
#[derive(Debug, Default)]
pub(crate) struct StatsCells {
    pub epochs_published: AtomicU64,
    pub warm_epochs: AtomicU64,
    pub cold_epochs: AtomicU64,
    pub batches_applied: AtomicU64,
    pub batches_rejected: AtomicU64,
    pub ops_applied: AtomicU64,
    pub repartition_failures: AtomicU64,
    /// Nanoseconds the last apply+repartition+publish cycle took.
    pub last_publish_nanos: AtomicU64,
    /// Total nanoseconds across all publish cycles.
    pub total_publish_nanos: AtomicU64,
    /// Nanoseconds from the oldest batch of the last group entering the queue to its
    /// epoch being published — the end-to-end ingest-to-publish latency.
    pub last_ingest_to_publish_nanos: AtomicU64,
    /// `lp_sweeps` of the last published epoch.
    pub last_lp_sweeps: AtomicU64,
    /// `vertices_scored` of the last published epoch.
    pub last_vertices_scored: AtomicU64,
}

impl StatsCells {
    pub(crate) fn add(&self, cell: &AtomicU64, value: u64) {
        cell.fetch_add(value, Ordering::Relaxed);
    }

    pub(crate) fn set(&self, cell: &AtomicU64, value: u64) {
        cell.store(value, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, queue_depth_ops: u64, queue_depth_batches: u64) -> ServeStats {
        let get = |cell: &AtomicU64| cell.load(Ordering::Relaxed);
        ServeStats {
            epochs_published: get(&self.epochs_published),
            warm_epochs: get(&self.warm_epochs),
            cold_epochs: get(&self.cold_epochs),
            batches_applied: get(&self.batches_applied),
            batches_rejected: get(&self.batches_rejected),
            ops_applied: get(&self.ops_applied),
            repartition_failures: get(&self.repartition_failures),
            queue_depth_ops,
            queue_depth_batches,
            last_publish_seconds: get(&self.last_publish_nanos) as f64 * 1e-9,
            total_publish_seconds: get(&self.total_publish_nanos) as f64 * 1e-9,
            last_ingest_to_publish_seconds: get(&self.last_ingest_to_publish_nanos) as f64 * 1e-9,
            last_lp_sweeps: get(&self.last_lp_sweeps),
            last_vertices_scored: get(&self.last_vertices_scored),
        }
    }
}

/// A point-in-time view of the serving subsystem's counters. JSON-able, so benches and
/// monitoring endpoints can emit it directly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ServeStats {
    /// Epochs published by the worker (the initial cold epoch is published by the
    /// spawner, before the worker starts, and is *not* counted here).
    pub epochs_published: u64,
    /// Published epochs that ran warm-started.
    pub warm_epochs: u64,
    /// Published epochs that ran from scratch.
    pub cold_epochs: u64,
    /// Update batches validated and applied to the live graph.
    pub batches_applied: u64,
    /// Update batches the dynamic subsystem rejected (typed validation errors); the
    /// graph is untouched by a rejected batch.
    pub batches_rejected: u64,
    /// Total ops across applied batches.
    pub ops_applied: u64,
    /// Repartition attempts that failed (the previous epoch keeps serving).
    pub repartition_failures: u64,
    /// Ops currently waiting in the ingest queue.
    pub queue_depth_ops: u64,
    /// Batches currently waiting in the ingest queue.
    pub queue_depth_batches: u64,
    /// Wall-clock seconds of the last apply+repartition+publish cycle.
    pub last_publish_seconds: f64,
    /// Cumulative wall-clock seconds across all publish cycles.
    pub total_publish_seconds: f64,
    /// Seconds from the oldest batch of the last published group entering the queue to
    /// its epoch going live — what a producer actually waits for its mutation to be
    /// reflected in served partitions.
    pub last_ingest_to_publish_seconds: f64,
    /// Label-propagation sweeps of the last published epoch (warm runs: far fewer
    /// than the cold baseline).
    pub last_lp_sweeps: u64,
    /// Vertices scored by the last published epoch's run.
    pub last_vertices_scored: u64,
}

impl ServeStats {
    /// Serialise to one JSON object.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("stats serialisation is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_cells_and_serialises() {
        let cells = StatsCells::default();
        cells.add(&cells.epochs_published, 3);
        cells.add(&cells.warm_epochs, 2);
        cells.add(&cells.cold_epochs, 1);
        cells.add(&cells.ops_applied, 40);
        cells.set(&cells.last_publish_nanos, 2_500_000_000);
        let stats = cells.snapshot(7, 2);
        assert_eq!(stats.epochs_published, 3);
        assert_eq!(stats.warm_epochs + stats.cold_epochs, 3);
        assert_eq!(stats.queue_depth_ops, 7);
        assert!((stats.last_publish_seconds - 2.5).abs() < 1e-9);
        let json = stats.to_json();
        for key in [
            "\"epochs_published\":3",
            "\"queue_depth_ops\":7",
            "\"last_publish_seconds\":2.5",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
