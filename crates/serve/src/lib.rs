//! # xtrapulp-serve
//!
//! The concurrent serving layer over the dynamic-graph subsystem: MVCC-style epochs
//! for any number of readers, a bounded ingest queue for any number of writers, and a
//! single background worker repartitioning off the serving path.
//!
//! `DynamicSession` (PR 2) made repartitioning after a mutation cheap, but it is
//! strictly single-writer: every `apply_updates` → `repartition` cycle blocks every
//! consumer of the partition. Production traffic wants the serving-path analogue of
//! the paper's design (conf_ipps_SlotaRDM17) — computation proceeds against a stable
//! snapshot while updates are exchanged asynchronously — which is exactly what this
//! crate provides:
//!
//! * [`EpochStore`] — the publication point. The worker publishes each epoch as an
//!   immutable, `Arc`-shared [`PartitionSnapshot`]; readers clone the `Arc` under a
//!   shared lock (the offline stand-in for `arc-swap`) and then query `part_of`,
//!   whole-part views and [`MigrationDiff`]s with no further synchronisation. Epochs
//!   are strictly monotonic and readers can never observe a torn partition: they hold
//!   either epoch `k` or epoch `k+1`, never a mix.
//! * [`IngestQueue`] — a bounded multi-producer queue of [`UpdateBatch`]es with typed
//!   backpressure ([`IngestError::QueueFull`]) and a [`BatchPolicy`] that groups
//!   queued batches per repartition, amortising one warm run over a burst of updates.
//! * [`spawn`] / [`ServeHandle`] — the background worker driving any
//!   [`RepartitionEngine`] (the production engine is
//!   `xtrapulp_api::ServingSession`, wrapping a `DynamicSession`): drain a batch
//!   group, apply each batch through the dynamic subsystem's validation, repartition
//!   warm-started, publish. Shutdown is drain-then-stop: the queue closes to
//!   producers, everything queued is applied and published, then the worker exits,
//!   returning the engine. [`ServeStats`] counts epochs, warm/cold splits, ops,
//!   rejections, queue depth and publish/ingest-to-publish latency.
//! * [`replay_update_log`] — feed a recorded `.ulog` mutation trace
//!   ([`xtrapulp_graph::io::read_update_log`]) through the same queue, so replayed
//!   traffic exercises the identical pipeline as live producers.

pub mod durable;
mod epoch;
mod queue;
mod replay;
mod snapshot;
mod stats;
mod worker;

pub use durable::{Checkpoint, DurableConfig, WalRecord, WalWriter};
pub use epoch::{EpochStore, DEFAULT_DELTA_HISTORY};
pub use queue::{BatchPolicy, Drained, IngestError, IngestQueue, QueuedBatch};
pub use replay::{replay_ops, replay_update_log, ReplayError, ReplayOutcome};
pub use snapshot::{MigrationDiff, PartitionSnapshot};
pub use stats::{ServeLatencies, ServeStats};
pub use worker::{spawn, RepartitionEngine, ServeConfig, ServeError, ServeHandle};

// Re-exported so engine implementors and producers can name the batch type without an
// extra dependency edge.
pub use xtrapulp_dynamic::UpdateBatch;
