//! The MVCC epoch store: `Arc`-published immutable snapshots with non-blocking reads.
//!
//! The store holds the latest [`PartitionSnapshot`] behind an
//! [`RwLock<Arc<_>>`](parking_lot::RwLock) — the offline stand-in for the `arc-swap`
//! publication pattern. A read is a shared lock acquisition plus an `Arc` clone
//! (readers never contend with each other, and a writer holds the lock only for the
//! duration of one pointer swap), so any number of threads can query `part_of`,
//! whole-part views and migration diffs while the background worker repartitions the
//! next epoch. The epoch counter itself is a plain atomic, so "has anything newer been
//! published?" is a wait-free load.
//!
//! Readers that want to *block* for a new epoch (tests, replay drivers) use
//! [`EpochStore::wait_for_epoch`], backed by a condvar the publisher signals.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use crate::snapshot::{MigrationDiff, PartitionSnapshot};

/// The single-writer, many-reader publication point for partition epochs.
#[derive(Debug)]
pub struct EpochStore {
    /// The latest snapshot. Swapped atomically (under a brief write lock) by the
    /// worker; cloned out (under a shared read lock) by readers.
    current: RwLock<Arc<PartitionSnapshot>>,
    /// The previous snapshot, kept so readers can ask for the latest migration diff
    /// without having retained the older epoch themselves.
    previous: RwLock<Option<Arc<PartitionSnapshot>>>,
    /// The latest published epoch, for wait-free staleness checks.
    epoch: AtomicU64,
    /// Publish notifications for blocking waiters.
    publish_mutex: StdMutex<u64>,
    publish_cond: Condvar,
}

impl EpochStore {
    /// Create a store seeded with the initial (epoch-0) snapshot, so readers always
    /// observe *some* fully-published partition.
    pub fn new(initial: PartitionSnapshot) -> Arc<EpochStore> {
        let epoch = initial.epoch;
        Arc::new(EpochStore {
            current: RwLock::new(Arc::new(initial)),
            previous: RwLock::new(None),
            epoch: AtomicU64::new(epoch),
            publish_mutex: StdMutex::new(epoch),
            publish_cond: Condvar::new(),
        })
    }

    /// The latest published epoch (wait-free).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The latest published snapshot. Cheap: a shared lock and an `Arc` clone — the
    /// snapshot itself is never copied, and the returned handle stays valid (and
    /// immutable) however many epochs are published after it.
    pub fn current(&self) -> Arc<PartitionSnapshot> {
        Arc::clone(&self.current.read())
    }

    /// The snapshot published immediately before the current one, if any.
    pub fn previous(&self) -> Option<Arc<PartitionSnapshot>> {
        self.previous.read().clone()
    }

    /// The migration diff from the previous to the current epoch, if two epochs have
    /// been published. (Arbitrary pairs: retain the `Arc`s and use
    /// [`PartitionSnapshot::diff_from`].)
    ///
    /// The two snapshots are read under the same lock order `publish` updates them in
    /// (`previous` first, then `current`), so the pair is always a consistent
    /// previous→current couple even when a publish races this call.
    pub fn latest_diff(&self) -> Option<MigrationDiff> {
        let previous = self.previous.read();
        let current = self.current.read();
        previous.as_ref().map(|p| current.diff_from(p))
    }

    /// Convenience: the current part of global vertex `v`.
    pub fn part_of(&self, v: xtrapulp_graph::GlobalId) -> Option<i32> {
        self.current().part_of(v)
    }

    /// Publish `snapshot` as the new current epoch and wake blocked waiters.
    ///
    /// # Panics
    ///
    /// Panics if `snapshot.epoch` does not exceed the published epoch: epochs are
    /// strictly monotonic, and the store has exactly one writer (the worker).
    pub fn publish(&self, snapshot: PartitionSnapshot) -> Arc<PartitionSnapshot> {
        let published = Arc::new(snapshot);
        assert!(
            published.epoch > self.epoch(),
            "epoch {} published after epoch {}: the store requires strictly \
             monotonic epochs from its single writer",
            published.epoch,
            self.epoch()
        );
        {
            // Both slots are swapped inside one critical section (lock order:
            // `previous`, then `current` — the same order `latest_diff` reads them
            // in), so no reader can ever pair the new current with a stale previous.
            let mut previous = self.previous.write();
            let mut current = self.current.write();
            let displaced = std::mem::replace(&mut *current, Arc::clone(&published));
            *previous = Some(displaced);
            // The epoch counter is bumped while the write lock is still held, so a
            // reader that saw the new counter can never read the *older* snapshot.
            self.epoch.store(published.epoch, Ordering::Release);
        }
        let mut latest = self
            .publish_mutex
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *latest = published.epoch;
        self.publish_cond.notify_all();
        drop(latest);
        published
    }

    /// Block until an epoch `>= min_epoch` is published (or `timeout` elapses),
    /// returning the then-current snapshot — which may be newer than `min_epoch` if
    /// the worker published several epochs in between. `None` on timeout.
    pub fn wait_for_epoch(
        &self,
        min_epoch: u64,
        timeout: Duration,
    ) -> Option<Arc<PartitionSnapshot>> {
        let deadline = Instant::now() + timeout;
        let mut latest = self
            .publish_mutex
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while *latest < min_epoch {
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let (guard, wait) = self
                .publish_cond
                .wait_timeout(latest, remaining)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            latest = guard;
            if wait.timed_out() && *latest < min_epoch {
                return None;
            }
        }
        drop(latest);
        Some(self.current())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::tests::snapshot;

    #[test]
    fn publish_swaps_current_and_keeps_previous() {
        let store = EpochStore::new(snapshot(0, vec![0, 1], 2));
        assert_eq!(store.epoch(), 0);
        assert!(store.previous().is_none());
        assert!(store.latest_diff().is_none());

        let held = store.current();
        store.publish(snapshot(1, vec![1, 1], 2));
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.current().parts, vec![1, 1]);
        // The handle taken before the publish still reads the old epoch.
        assert_eq!(held.parts, vec![0, 1]);
        let diff = store.latest_diff().expect("two epochs published");
        assert_eq!(diff.moved, vec![0]);
        assert_eq!(store.part_of(0), Some(1));
    }

    #[test]
    #[should_panic(expected = "strictly monotonic")]
    fn non_monotonic_publish_panics() {
        let store = EpochStore::new(snapshot(3, vec![0], 1));
        store.publish(snapshot(3, vec![0], 1));
    }

    #[test]
    fn wait_for_epoch_blocks_until_published() {
        let store = EpochStore::new(snapshot(0, vec![0], 1));
        // Already satisfied: returns immediately.
        assert!(store.wait_for_epoch(0, Duration::from_millis(1)).is_some());
        // Not yet published: times out.
        assert!(store.wait_for_epoch(1, Duration::from_millis(10)).is_none());
        // Published from another thread: the waiter wakes.
        let store2 = Arc::clone(&store);
        let publisher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            store2.publish(snapshot(1, vec![0], 1));
        });
        let got = store
            .wait_for_epoch(1, Duration::from_secs(5))
            .expect("publisher fires within the timeout");
        assert!(got.epoch >= 1);
        publisher.join().unwrap();
    }
}
