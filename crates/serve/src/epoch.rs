//! The MVCC epoch store: `Arc`-published immutable snapshots with non-blocking reads.
//!
//! The store holds the latest [`PartitionSnapshot`] behind an
//! [`RwLock<Arc<_>>`](parking_lot::RwLock) — the offline stand-in for the `arc-swap`
//! publication pattern. A read is a shared lock acquisition plus an `Arc` clone
//! (readers never contend with each other, and a writer holds the lock only for the
//! duration of one pointer swap), so any number of threads can query `part_of`,
//! whole-part views and migration diffs while the background worker repartitions the
//! next epoch. The epoch counter itself is a plain atomic, so "has anything newer been
//! published?" is a wait-free load.
//!
//! Readers that want to *block* for a new epoch (tests, replay drivers) use
//! [`EpochStore::wait_for_epoch`], backed by a condvar the publisher signals.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use xtrapulp_graph::GraphDelta;

use crate::snapshot::{MigrationDiff, PartitionSnapshot};

/// How many published epochs' graph deltas the store retains for lagging consumers
/// by default (see [`EpochStore::with_delta_history`]).
pub const DEFAULT_DELTA_HISTORY: usize = 256;

/// One published epoch's graph-mutation record: the deltas that took the graph from
/// `from_epoch` to `to_epoch`. Entries form a contiguous chain, so a consumer holding
/// any published epoch can replay forward without refetching topology.
#[derive(Debug, Clone)]
struct DeltaLogEntry {
    from_epoch: u64,
    to_epoch: u64,
    deltas: Arc<[GraphDelta]>,
}

/// Walk the contiguous delta chain from published epoch `from` to published epoch
/// `to`. `None` when the chain is broken: `from` predates the retained history, or
/// either endpoint was never a published epoch.
fn chain_deltas(log: &VecDeque<DeltaLogEntry>, from: u64, to: u64) -> Option<Vec<GraphDelta>> {
    let mut out = Vec::new();
    let mut at = from;
    for entry in log.iter() {
        if at == to {
            break;
        }
        if entry.to_epoch <= from {
            continue;
        }
        if entry.from_epoch != at {
            return None;
        }
        out.extend(entry.deltas.iter().cloned());
        at = entry.to_epoch;
    }
    (at == to).then_some(out)
}

/// The single-writer, many-reader publication point for partition epochs.
#[derive(Debug)]
pub struct EpochStore {
    /// The latest snapshot. Swapped atomically (under a brief write lock) by the
    /// worker; cloned out (under a shared read lock) by readers.
    current: RwLock<Arc<PartitionSnapshot>>,
    /// The previous snapshot, kept so readers can ask for the latest migration diff
    /// without having retained the older epoch themselves.
    previous: RwLock<Option<Arc<PartitionSnapshot>>>,
    /// A bounded chain of per-publish graph deltas, so consumers that process epochs
    /// slower than the worker publishes them can still catch up incrementally.
    delta_log: RwLock<VecDeque<DeltaLogEntry>>,
    delta_history: usize,
    /// The latest published epoch, for wait-free staleness checks.
    epoch: AtomicU64,
    /// Publish notifications for blocking waiters.
    publish_mutex: StdMutex<u64>,
    publish_cond: Condvar,
}

impl EpochStore {
    /// Create a store seeded with the initial (epoch-0) snapshot, so readers always
    /// observe *some* fully-published partition. Retains
    /// [`DEFAULT_DELTA_HISTORY`] epochs of graph deltas for lagging consumers.
    pub fn new(initial: PartitionSnapshot) -> Arc<EpochStore> {
        EpochStore::with_delta_history(initial, DEFAULT_DELTA_HISTORY)
    }

    /// [`new`](EpochStore::new) with an explicit delta-history depth (minimum 1):
    /// how many published epochs a consumer may lag behind and still recover via
    /// [`deltas_since`](EpochStore::deltas_since).
    pub fn with_delta_history(initial: PartitionSnapshot, history: usize) -> Arc<EpochStore> {
        let epoch = initial.epoch;
        Arc::new(EpochStore {
            current: RwLock::new(Arc::new(initial)),
            previous: RwLock::new(None),
            delta_log: RwLock::new(VecDeque::new()),
            delta_history: history.max(1),
            epoch: AtomicU64::new(epoch),
            publish_mutex: StdMutex::new(epoch),
            publish_cond: Condvar::new(),
        })
    }

    /// The latest published epoch (wait-free).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire) // ordering: pairs with the Release publish; epoch k implies snapshot k is visible
    }

    /// The latest published snapshot. Cheap: a shared lock and an `Arc` clone — the
    /// snapshot itself is never copied, and the returned handle stays valid (and
    /// immutable) however many epochs are published after it.
    pub fn current(&self) -> Arc<PartitionSnapshot> {
        Arc::clone(&self.current.read())
    }

    /// The snapshot published immediately before the current one, if any.
    pub fn previous(&self) -> Option<Arc<PartitionSnapshot>> {
        self.previous.read().clone()
    }

    /// The migration diff from the previous to the current epoch, if two epochs have
    /// been published. (Arbitrary pairs: retain the `Arc`s and use
    /// [`PartitionSnapshot::diff_from`].)
    ///
    /// The two snapshots are read under the same lock order `publish` updates them in
    /// (`previous` first, then `current`), so the pair is always a consistent
    /// previous→current couple even when a publish races this call.
    pub fn latest_diff(&self) -> Option<MigrationDiff> {
        let previous = self.previous.read();
        let current = self.current.read();
        previous.as_ref().map(|p| current.diff_from(p))
    }

    /// Convenience: the current part of global vertex `v`.
    pub fn part_of(&self, v: xtrapulp_graph::GlobalId) -> Option<i32> {
        self.current().part_of(v)
    }

    /// Every graph delta published after `epoch` (which must be an epoch the caller
    /// actually held, i.e. one that was published), flattened into application order —
    /// what an epoch consumer replays against its topology replica to catch up to the
    /// current epoch. `None` when the consumer lagged beyond the store's bounded delta
    /// history and the chain back to `epoch` has been evicted; recovery then requires
    /// a full re-fetch of the graph.
    pub fn deltas_since(&self, epoch: u64) -> Option<Vec<GraphDelta>> {
        let log = self.delta_log.read();
        // The epoch counter is only bumped while the log's write lock is held, so the
        // pair read here is consistent.
        let to = self.epoch.load(Ordering::Acquire); // ordering: pairs with the Release publish
        chain_deltas(&log, epoch, to)
    }

    /// The delta chain from published epoch `from` up to published epoch `to` —
    /// [`deltas_since`](EpochStore::deltas_since) with an explicit endpoint, for
    /// consumers that pinned a snapshot and must not run ahead of it even if newer
    /// epochs have landed since. `None` when either endpoint is outside the retained
    /// history or was never published.
    pub fn deltas_between(&self, from: u64, to: u64) -> Option<Vec<GraphDelta>> {
        let log = self.delta_log.read();
        chain_deltas(&log, from, to)
    }

    /// Publish `snapshot` as the new current epoch and wake blocked waiters.
    ///
    /// # Panics
    ///
    /// Panics if `snapshot.epoch` does not exceed the published epoch: epochs are
    /// strictly monotonic, and the store has exactly one writer (the worker).
    pub fn publish(&self, snapshot: PartitionSnapshot) -> Arc<PartitionSnapshot> {
        let published = Arc::new(snapshot);
        assert!(
            published.epoch > self.epoch(),
            "epoch {} published after epoch {}: the store requires strictly \
             monotonic epochs from its single writer",
            published.epoch,
            self.epoch()
        );
        {
            // Both slots are swapped inside one critical section (lock order:
            // `previous`, then `current`, then `delta_log` — the same order readers
            // acquire them in), so no reader can ever pair the new current with a
            // stale previous, and a reader that saw the new epoch counter always
            // finds its delta-log entry.
            let mut previous = self.previous.write();
            let mut current = self.current.write();
            let mut log = self.delta_log.write();
            log.push_back(DeltaLogEntry {
                from_epoch: current.epoch,
                to_epoch: published.epoch,
                // An Arc clone: the log shares the snapshot's delta slice.
                deltas: Arc::clone(&published.deltas),
            });
            while log.len() > self.delta_history {
                log.pop_front();
            }
            let displaced = std::mem::replace(&mut *current, Arc::clone(&published));
            *previous = Some(displaced);
            // The epoch counter is bumped while the write lock is still held, so a
            // reader that saw the new counter can never read the *older* snapshot.
            self.epoch.store(published.epoch, Ordering::Release); // ordering: Release-publishes the snapshot installed above
        }
        let mut latest = self
            .publish_mutex
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *latest = published.epoch;
        self.publish_cond.notify_all();
        drop(latest);
        published
    }

    /// Approximate resident bytes of the store: the current and previous part
    /// vectors plus the retained delta history. Delta slices are shared
    /// (`Arc`) with the snapshots, so they are counted once, via the log.
    /// Feeds the `mem_bytes{subsystem="epoch_store"}` gauge.
    pub fn approx_bytes(&self) -> u64 {
        // Locks are taken sequentially (each dropped before the next), so this
        // can never deadlock against `publish`'s ordered multi-lock section.
        let current = self.current.read().num_vertices() as u64 * 4;
        let previous = self
            .previous
            .read()
            .as_ref()
            .map_or(0, |p| p.num_vertices() as u64 * 4);
        let log: u64 = self
            .delta_log
            .read()
            .iter()
            .map(|e| e.deltas.iter().map(|d| d.approx_bytes()).sum::<u64>() + 48)
            .sum();
        current + previous + log + 256
    }

    /// Block until an epoch `>= min_epoch` is published (or `timeout` elapses),
    /// returning the then-current snapshot — which may be newer than `min_epoch` if
    /// the worker published several epochs in between. `None` on timeout.
    pub fn wait_for_epoch(
        &self,
        min_epoch: u64,
        timeout: Duration,
    ) -> Option<Arc<PartitionSnapshot>> {
        let deadline = Instant::now() + timeout;
        let mut latest = self
            .publish_mutex
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while *latest < min_epoch {
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let (guard, wait) = self
                .publish_cond
                .wait_timeout(latest, remaining)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            latest = guard;
            if wait.timed_out() && *latest < min_epoch {
                return None;
            }
        }
        drop(latest);
        Some(self.current())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::tests::snapshot;

    #[test]
    fn publish_swaps_current_and_keeps_previous() {
        let store = EpochStore::new(snapshot(0, vec![0, 1], 2));
        assert_eq!(store.epoch(), 0);
        assert!(store.previous().is_none());
        assert!(store.latest_diff().is_none());

        let held = store.current();
        store.publish(snapshot(1, vec![1, 1], 2));
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.current().parts, vec![1, 1]);
        // The handle taken before the publish still reads the old epoch.
        assert_eq!(held.parts, vec![0, 1]);
        let diff = store.latest_diff().expect("two epochs published");
        assert_eq!(diff.moved, vec![0]);
        assert_eq!(store.part_of(0), Some(1));
    }

    #[test]
    #[should_panic(expected = "strictly monotonic")]
    fn non_monotonic_publish_panics() {
        let store = EpochStore::new(snapshot(3, vec![0], 1));
        store.publish(snapshot(3, vec![0], 1));
    }

    #[test]
    fn deltas_since_replays_the_contiguous_chain() {
        let delta = |base_n: u64| GraphDelta::new(base_n, 1, &[], &[]);
        let store = EpochStore::with_delta_history(snapshot(0, vec![0, 1], 2), 2);
        assert_eq!(store.deltas_since(0), Some(vec![]));

        let mut s1 = snapshot(2, vec![0, 1, 1], 2);
        s1.deltas = vec![delta(2)].into();
        store.publish(s1);
        let mut s2 = snapshot(5, vec![0, 1, 1, 0], 2);
        s2.deltas = vec![delta(3)].into();
        store.publish(s2);

        // From epoch 0: both publishes' deltas, in order.
        assert_eq!(store.deltas_since(0), Some(vec![delta(2), delta(3)]));
        // From the intermediate published epoch: just the tail.
        assert_eq!(store.deltas_since(2), Some(vec![delta(3)]));
        assert_eq!(store.deltas_since(5), Some(vec![]));
        // A never-published epoch cannot anchor the chain.
        assert!(store.deltas_since(3).is_none());

        // A third publish evicts the oldest entry (history = 2): epoch 0 is now
        // unrecoverable, epoch 2 onwards still replays.
        let mut s3 = snapshot(6, vec![0, 1, 1, 0, 1], 2);
        s3.deltas = vec![delta(4)].into();
        store.publish(s3);
        assert!(store.deltas_since(0).is_none());
        assert_eq!(store.deltas_since(2), Some(vec![delta(3), delta(4)]));
    }

    #[test]
    fn wait_for_epoch_blocks_until_published() {
        let store = EpochStore::new(snapshot(0, vec![0], 1));
        // Already satisfied: returns immediately.
        assert!(store.wait_for_epoch(0, Duration::from_millis(1)).is_some());
        // Not yet published: times out.
        assert!(store.wait_for_epoch(1, Duration::from_millis(10)).is_none());
        // Published from another thread: the waiter wakes.
        let store2 = Arc::clone(&store);
        let publisher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            store2.publish(snapshot(1, vec![0], 1));
        });
        let got = store
            .wait_for_epoch(1, Duration::from_secs(5))
            .expect("publisher fires within the timeout");
        assert!(got.epoch >= 1);
        publisher.join().unwrap();
    }
}
