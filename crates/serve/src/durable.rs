//! Crash-recoverable serving state: a write-ahead log of accepted update batches
//! with epoch markers, plus atomic checkpoints of the published part vector.
//!
//! The durability contract is *process*-crash recovery for the serving pipeline:
//! the engine appends every batch to the WAL **before** applying it (so a batch
//! the dynamic subsystem would reject is re-rejected identically on replay), and
//! appends an [`WalRecord::EpochMark`] after each successful repartition. Every
//! `checkpoint_every_epochs` epochs the full part vector is checkpointed with a
//! temp-file + atomic-rename write, checksummed, and named by its epoch
//! (`ckpt-<epoch>`), so recovery loads the newest checkpoint that validates —
//! falling back past corrupted ones — and replays only the WAL tail.
//!
//! ## On-disk formats
//!
//! WAL (`serve.wal`), a framed record stream:
//!
//! ```text
//! [u32 len] [u8 kind] [payload; len-1 bytes] [u64 fnv1a-64 of kind+payload]
//! ```
//!
//! * kind 1 (batch): `u32` op count, then per op a tag byte (0 = add-vertices,
//!   1 = insert-edge, 2 = delete-edge) and two `u64` operands.
//! * kind 2 (epoch mark): the `u64` epoch the preceding batches repartitioned to.
//!
//! A torn tail — a record cut short by a crash, or one whose checksum fails — is
//! detected on open and physically truncated, so the writer resumes at the last
//! durable record.
//!
//! Checkpoint (`ckpt-<epoch>`):
//!
//! ```text
//! [u32 magic "XPCK"] [u16 version] [u64 epoch] [u64 wal_records]
//! [u64 num_parts] [i32 parts ...] [u64 fnv1a-64 of everything prior]
//! ```
//!
//! `wal_records` is the WAL position (record count) the checkpoint covers:
//! recovery fast-forwards the topology through records `[0, wal_records)`
//! without repartitioning, seeds the checkpointed parts, then replays the tail.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Instant;

use xtrapulp_graph::UpdateOp;
use xtrapulp_obs::registry::Counter;

use crate::UpdateBatch;

/// File name of the write-ahead log inside a durable directory.
pub const WAL_FILE: &str = "serve.wal";

const WAL_KIND_BATCH: u8 = 1;
const WAL_KIND_EPOCH_MARK: u8 = 2;
/// Frame header (u32 len) + trailing checksum (u64).
const WAL_OVERHEAD: usize = 4 + 8;
/// "XPCK" little-endian.
const CKPT_MAGIC: u32 = 0x4B43_5058;
const CKPT_VERSION: u16 = 1;

fn wal_records_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| xtrapulp_obs::registry::counter("serve_wal_records_total"))
}

fn checkpoint_bytes_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| xtrapulp_obs::registry::counter("serve_checkpoint_bytes_total"))
}

fn checkpoint_write_histogram() -> &'static std::sync::Arc<xtrapulp_obs::Histogram> {
    static H: OnceLock<std::sync::Arc<xtrapulp_obs::Histogram>> = OnceLock::new();
    H.get_or_init(|| xtrapulp_obs::registry::histogram("serve_checkpoint_write_nanos"))
}

/// FNV-1a 64-bit, the integrity checksum of WAL records and checkpoints.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Configuration of the serving layer's durable state.
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Directory holding the WAL, the checkpoints and the persisted base graph.
    pub dir: PathBuf,
    /// Checkpoint the part vector every this many published epochs (minimum 1).
    pub checkpoint_every_epochs: u64,
    /// Fault injection: panic the serve worker once this many WAL records have
    /// been appended, leaving the log ahead of the applied state — the seeded
    /// mid-epoch kill the crash-recovery tests exercise. `None` in production.
    pub crash_after_wal_records: Option<u64>,
}

impl DurableConfig {
    /// Durability under `dir` with the default checkpoint cadence (8 epochs).
    pub fn new(dir: impl Into<PathBuf>) -> DurableConfig {
        DurableConfig {
            dir: dir.into(),
            checkpoint_every_epochs: 8,
            crash_after_wal_records: None,
        }
    }

    /// Replace the checkpoint cadence.
    pub fn checkpoint_every(mut self, epochs: u64) -> DurableConfig {
        self.checkpoint_every_epochs = epochs.max(1);
        self
    }

    /// Arm the injected crash after `records` WAL appends.
    pub fn crash_after_wal_records(mut self, records: u64) -> DurableConfig {
        self.crash_after_wal_records = Some(records);
        self
    }
}

/// One durable WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// An update batch accepted into the pipeline (logged before it is applied).
    Batch(UpdateBatch),
    /// The batches since the previous mark were repartitioned into this epoch.
    EpochMark {
        /// The graph epoch the repartition published.
        epoch: u64,
    },
}

impl WalRecord {
    fn encode_body(&self) -> Vec<u8> {
        match self {
            WalRecord::Batch(batch) => {
                let ops = batch.ops();
                let mut body = Vec::with_capacity(1 + 4 + ops.len() * 17);
                body.push(WAL_KIND_BATCH);
                body.extend_from_slice(&(ops.len() as u32).to_le_bytes());
                for op in ops {
                    let (tag, a, b): (u8, u64, u64) = match *op {
                        UpdateOp::AddVertices(c) => (0, c, 0),
                        UpdateOp::InsertEdge(u, v) => (1, u, v),
                        UpdateOp::DeleteEdge(u, v) => (2, u, v),
                    };
                    body.push(tag);
                    body.extend_from_slice(&a.to_le_bytes());
                    body.extend_from_slice(&b.to_le_bytes());
                }
                body
            }
            WalRecord::EpochMark { epoch } => {
                let mut body = Vec::with_capacity(9);
                body.push(WAL_KIND_EPOCH_MARK);
                body.extend_from_slice(&epoch.to_le_bytes());
                body
            }
        }
    }

    fn decode_body(body: &[u8]) -> Option<WalRecord> {
        let (&kind, payload) = body.split_first()?;
        match kind {
            WAL_KIND_BATCH => {
                let n = u32::from_le_bytes(payload.get(..4)?.try_into().ok()?) as usize;
                let rest = payload.get(4..)?;
                if rest.len() != n * 17 {
                    return None;
                }
                let mut batch = UpdateBatch::new();
                for rec in rest.chunks_exact(17) {
                    let a = u64::from_le_bytes(rec[1..9].try_into().ok()?);
                    let b = u64::from_le_bytes(rec[9..17].try_into().ok()?);
                    batch.push(match rec[0] {
                        0 => UpdateOp::AddVertices(a),
                        1 => UpdateOp::InsertEdge(a, b),
                        2 => UpdateOp::DeleteEdge(a, b),
                        _ => return None,
                    });
                }
                Some(WalRecord::Batch(batch))
            }
            WAL_KIND_EPOCH_MARK => Some(WalRecord::EpochMark {
                epoch: u64::from_le_bytes(payload.try_into().ok()?),
            }),
            _ => None,
        }
    }
}

/// Parse every valid record prefix of a WAL byte buffer. Returns the records
/// and the byte length of the valid prefix; everything past it is a torn tail.
fn parse_wal(bytes: &[u8]) -> (Vec<WalRecord>, u64) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= WAL_OVERHEAD {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let end = pos + 4 + len + 8;
        if len == 0 || end > bytes.len() {
            break;
        }
        let body = &bytes[pos + 4..pos + 4 + len];
        let sum = u64::from_le_bytes(bytes[pos + 4 + len..end].try_into().unwrap());
        if fnv1a64(body) != sum {
            break;
        }
        let Some(record) = WalRecord::decode_body(body) else {
            break;
        };
        records.push(record);
        pos = end;
    }
    (records, pos as u64)
}

/// The append handle of a serving WAL.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    records: u64,
    bytes: u64,
}

impl WalWriter {
    /// Create a fresh (empty) WAL at `path`, truncating any existing one.
    pub fn create(path: &Path) -> io::Result<WalWriter> {
        let file = File::create(path)?;
        Ok(WalWriter {
            file,
            records: 0,
            bytes: 0,
        })
    }

    /// Open an existing WAL (creating it when absent), validate it, truncate
    /// any torn tail, and return the writer positioned after the last durable
    /// record together with the records that survived.
    pub fn open(path: &Path) -> io::Result<(WalWriter, Vec<WalRecord>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, valid_len) = parse_wal(&bytes);
        if valid_len < bytes.len() as u64 {
            file.set_len(valid_len)?;
        }
        file.seek(SeekFrom::Start(valid_len))?;
        let writer = WalWriter {
            file,
            records: records.len() as u64,
            bytes: valid_len,
        };
        Ok((writer, records))
    }

    /// Records durably appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Durable bytes of the log (the valid prefix at open plus every frame
    /// appended since). Feeds the `mem_bytes{subsystem="durable_wal"}` gauge.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Append one record (framed and checksummed) and flush it.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<u64> {
        let body = record.encode_body();
        let mut frame = Vec::with_capacity(body.len() + WAL_OVERHEAD);
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        frame.extend_from_slice(&fnv1a64(&body).to_le_bytes());
        self.file.write_all(&frame)?;
        self.file.flush()?;
        self.records += 1;
        self.bytes += frame.len() as u64;
        wal_records_counter().inc();
        xtrapulp_obs::mem::set("durable_wal", self.bytes);
        Ok(self.records)
    }
}

/// Read and validate a WAL without opening it for appends (the torn tail is
/// ignored, not truncated).
pub fn read_wal(path: &Path) -> io::Result<Vec<WalRecord>> {
    let bytes = fs::read(path)?;
    Ok(parse_wal(&bytes).0)
}

/// One durable checkpoint: the part vector published at `epoch`, covering the
/// first `wal_records` records of the WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The graph epoch the part vector belongs to.
    pub epoch: u64,
    /// WAL position (record count) this checkpoint reflects.
    pub wal_records: u64,
    /// One part id per vertex at `epoch`'s topology.
    pub parts: Vec<i32>,
}

impl Checkpoint {
    fn encode(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(30 + self.parts.len() * 4 + 8);
        bytes.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&self.epoch.to_le_bytes());
        bytes.extend_from_slice(&self.wal_records.to_le_bytes());
        bytes.extend_from_slice(&(self.parts.len() as u64).to_le_bytes());
        for &p in &self.parts {
            bytes.extend_from_slice(&p.to_le_bytes());
        }
        let sum = fnv1a64(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        bytes
    }

    fn decode(bytes: &[u8]) -> Option<Checkpoint> {
        if bytes.len() < 30 + 8 {
            return None;
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        if fnv1a64(body) != u64::from_le_bytes(tail.try_into().ok()?) {
            return None;
        }
        if u32::from_le_bytes(body[0..4].try_into().ok()?) != CKPT_MAGIC
            || u16::from_le_bytes(body[4..6].try_into().ok()?) != CKPT_VERSION
        {
            return None;
        }
        let epoch = u64::from_le_bytes(body[6..14].try_into().ok()?);
        let wal_records = u64::from_le_bytes(body[14..22].try_into().ok()?);
        let n = u64::from_le_bytes(body[22..30].try_into().ok()?) as usize;
        let parts_bytes = body.get(30..)?;
        if parts_bytes.len() != n * 4 {
            return None;
        }
        let parts = parts_bytes
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Some(Checkpoint {
            epoch,
            wal_records,
            parts,
        })
    }
}

/// Write `ckpt` atomically under `dir` as `ckpt-<epoch>`: the bytes land in a
/// temp file first and the final name appears only via `rename`, so a crash
/// mid-write can never leave a half-written file under a checkpoint name.
/// Returns the final path and records the checkpoint size/latency metrics.
pub fn write_checkpoint(dir: &Path, ckpt: &Checkpoint) -> io::Result<PathBuf> {
    let started = Instant::now();
    let bytes = ckpt.encode();
    let path = dir.join(format!("ckpt-{}", ckpt.epoch));
    let tmp = dir.join(format!("ckpt-{}.tmp", ckpt.epoch));
    fs::write(&tmp, &bytes)?;
    fs::rename(&tmp, &path)?;
    checkpoint_bytes_counter().add(bytes.len() as u64);
    checkpoint_write_histogram().record_duration(started.elapsed());
    // The accounted gauge is the *total* on-disk checkpoint footprint, so the
    // soak harness can bound it even when old checkpoints are retained.
    let mut total = 0u64;
    for entry in fs::read_dir(dir)?.flatten() {
        let is_ckpt = entry
            .file_name()
            .to_str()
            .is_some_and(|name| name.starts_with("ckpt-") && !name.ends_with(".tmp"));
        if is_ckpt {
            total += entry.metadata().map(|m| m.len()).unwrap_or(0);
        }
    }
    xtrapulp_obs::mem::set("durable_checkpoints", total);
    Ok(path)
}

/// Load the newest checkpoint under `dir` that validates (magic, version,
/// checksum) *and* whose WAL position is within `max_wal_records` — corrupted
/// or impossible checkpoints are skipped, falling back to older ones. Returns
/// `None` when no checkpoint survives.
pub fn load_newest_checkpoint(dir: &Path, max_wal_records: u64) -> io::Result<Option<Checkpoint>> {
    let mut epochs: Vec<u64> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(epoch) = entry
            .file_name()
            .to_str()
            .and_then(|name| name.strip_prefix("ckpt-"))
            .and_then(|rest| rest.parse::<u64>().ok())
        {
            epochs.push(epoch);
        }
    }
    epochs.sort_unstable_by(|a, b| b.cmp(a));
    for epoch in epochs {
        let Ok(bytes) = fs::read(dir.join(format!("ckpt-{epoch}"))) else {
            continue;
        };
        match Checkpoint::decode(&bytes) {
            Some(ckpt) if ckpt.epoch == epoch && ckpt.wal_records <= max_wal_records => {
                return Ok(Some(ckpt));
            }
            _ => continue,
        }
    }
    Ok(None)
}

/// The injected crash of [`DurableConfig::crash_after_wal_records`]: panic the
/// calling (worker) thread once the WAL has reached `records` appends. The
/// panic is contained by the serve pipeline (surfacing as
/// [`ServeError::WorkerPanicked`](crate::ServeError::WorkerPanicked)) and
/// leaves the WAL strictly ahead of the applied state.
pub fn maybe_inject_crash(config_crash_after: Option<u64>, wal_records: u64) {
    if let Some(after) = config_crash_after {
        if wal_records >= after {
            panic!("injected durability crash after {wal_records} WAL records");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xtrapulp-durable-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch(ops: usize) -> UpdateBatch {
        let mut b = UpdateBatch::new();
        b.add_vertices(1);
        for i in 0..ops {
            b.insert_edge(i as u64, (i + 1) as u64);
        }
        b
    }

    #[test]
    fn wal_round_trips_batches_and_marks() {
        let dir = tmp_dir("wal-roundtrip");
        let path = dir.join(WAL_FILE);
        let mut w = WalWriter::create(&path).unwrap();
        w.append(&WalRecord::Batch(batch(3))).unwrap();
        w.append(&WalRecord::EpochMark { epoch: 1 }).unwrap();
        w.append(&WalRecord::Batch(batch(0))).unwrap();
        assert_eq!(w.records(), 3);
        drop(w);
        let records = read_wal(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], WalRecord::Batch(batch(3)));
        assert_eq!(records[1], WalRecord::EpochMark { epoch: 1 });
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_detected_and_truncated_on_open() {
        let dir = tmp_dir("wal-torn");
        let path = dir.join(WAL_FILE);
        let mut w = WalWriter::create(&path).unwrap();
        w.append(&WalRecord::Batch(batch(2))).unwrap();
        w.append(&WalRecord::EpochMark { epoch: 1 }).unwrap();
        drop(w);
        let full_len = fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append: a third record cut off after its header.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&40u32.to_le_bytes());
        bytes.extend_from_slice(&[WAL_KIND_BATCH, 9, 9, 9]);
        fs::write(&path, &bytes).unwrap();
        // The reader ignores the tail; open truncates it and appends cleanly.
        assert_eq!(read_wal(&path).unwrap().len(), 2);
        let (mut w, records) = WalWriter::open(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(fs::metadata(&path).unwrap().len(), full_len);
        w.append(&WalRecord::EpochMark { epoch: 2 }).unwrap();
        assert_eq!(w.records(), 3);
        drop(w);
        assert_eq!(read_wal(&path).unwrap().len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_record_stops_the_replay_at_the_last_valid_prefix() {
        let dir = tmp_dir("wal-corrupt");
        let path = dir.join(WAL_FILE);
        let mut w = WalWriter::create(&path).unwrap();
        w.append(&WalRecord::EpochMark { epoch: 1 }).unwrap();
        w.append(&WalRecord::EpochMark { epoch: 2 }).unwrap();
        drop(w);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte of the second record: its checksum now fails.
        let n = bytes.len();
        bytes[n - 9] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let records = read_wal(&path).unwrap();
        assert_eq!(records, vec![WalRecord::EpochMark { epoch: 1 }]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoints_round_trip_and_newest_valid_wins() {
        let dir = tmp_dir("ckpt");
        let older = Checkpoint {
            epoch: 2,
            wal_records: 4,
            parts: vec![0, 1, 0, 1],
        };
        let newer = Checkpoint {
            epoch: 5,
            wal_records: 10,
            parts: vec![1, 1, 0, 0, 1],
        };
        write_checkpoint(&dir, &older).unwrap();
        write_checkpoint(&dir, &newer).unwrap();
        assert_eq!(
            load_newest_checkpoint(&dir, u64::MAX).unwrap(),
            Some(newer.clone())
        );
        // A checkpoint ahead of the (truncated) WAL is impossible: fall back.
        assert_eq!(
            load_newest_checkpoint(&dir, 9).unwrap(),
            Some(older.clone())
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_checkpoints_fall_back_to_older_valid_ones() {
        let dir = tmp_dir("ckpt-corrupt");
        let good = Checkpoint {
            epoch: 3,
            wal_records: 6,
            parts: vec![2, 0, 1],
        };
        write_checkpoint(&dir, &good).unwrap();
        let bad = Checkpoint {
            epoch: 7,
            wal_records: 14,
            parts: vec![0, 0, 0, 1],
        };
        let bad_path = write_checkpoint(&dir, &bad).unwrap();
        let mut bytes = fs::read(&bad_path).unwrap();
        bytes[31] ^= 0x55; // corrupt a part id; the checksum no longer matches
        fs::write(&bad_path, &bytes).unwrap();
        assert_eq!(load_newest_checkpoint(&dir, u64::MAX).unwrap(), Some(good));
        // With every checkpoint corrupted, recovery reports none at all.
        let good_path = dir.join("ckpt-3");
        let mut bytes = fs::read(&good_path).unwrap();
        bytes[0] ^= 0x01;
        fs::write(&good_path, &bytes).unwrap();
        assert_eq!(load_newest_checkpoint(&dir, u64::MAX).unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_crash_panics_at_the_configured_record() {
        maybe_inject_crash(None, 100);
        maybe_inject_crash(Some(5), 4);
        let err = std::panic::catch_unwind(|| maybe_inject_crash(Some(5), 5))
            .expect_err("crash must fire");
        let detail = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(detail.contains("injected durability crash"), "{detail}");
    }
}
