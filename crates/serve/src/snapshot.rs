//! Immutable partition snapshots: what the epoch store publishes and readers consume.

use std::sync::Arc;

use xtrapulp::metrics::PartitionQuality;
use xtrapulp::StageBreakdown;
use xtrapulp_graph::{GlobalId, GraphDelta};

/// One epoch's published partition: the part vector plus the metadata a serving reader
/// needs to interpret it. Snapshots are immutable — the epoch store hands them out
/// behind `Arc`s, so any number of threads can hold any number of epochs concurrently
/// while the worker publishes newer ones.
#[derive(Debug, Clone)]
pub struct PartitionSnapshot {
    /// The graph epoch this partition corresponds to (number of update batches applied
    /// to the underlying dynamic graph; epoch 0 is the initial cold partition).
    pub epoch: u64,
    /// Number of parts requested.
    pub num_parts: usize,
    /// One part id per vertex, indexed by global vertex id.
    pub parts: Vec<i32>,
    /// The paper's quality metrics for this partition.
    pub quality: PartitionQuality,
    /// Whether the epoch was produced by a warm-started run.
    pub warm_start: bool,
    /// Label-propagation sweeps the producing run executed.
    pub lp_sweeps: u64,
    /// Vertices the producing run scored (the real unit of sweep work).
    pub vertices_scored: u64,
    /// The producing run's sweep work split per schedule stage.
    pub stages: StageBreakdown,
    /// Previously-assigned vertices whose part changed relative to the epoch this run
    /// was seeded from (0 for cold runs).
    pub vertices_migrated: u64,
    /// The normalised graph mutations applied since the previously *published* epoch,
    /// in application order (one entry per applied batch; empty for the cold epoch-0
    /// snapshot). Epoch consumers — incremental analytics, SpMV layouts — replay these
    /// against their own topology replicas instead of re-fetching the full graph.
    /// Behind an `Arc` so the store's bounded delta history shares, rather than
    /// copies, each publish's deltas.
    pub deltas: Arc<[GraphDelta]>,
}

impl PartitionSnapshot {
    /// Number of vertices this snapshot covers.
    pub fn num_vertices(&self) -> usize {
        self.parts.len()
    }

    /// The part of global vertex `v`, or `None` for vertices beyond this epoch's
    /// topology (e.g. ids added to the graph after this snapshot was taken).
    pub fn part_of(&self, v: GlobalId) -> Option<i32> {
        self.parts.get(v as usize).copied()
    }

    /// The whole-part view: every global vertex id assigned to `part`, ascending.
    pub fn members(&self, part: i32) -> Vec<GlobalId> {
        self.parts
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == part)
            .map(|(v, _)| v as GlobalId)
            .collect()
    }

    /// Per-part vertex counts (length `num_parts`).
    pub fn part_sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.num_parts];
        for &p in &self.parts {
            if p >= 0 && (p as usize) < sizes.len() {
                sizes[p as usize] += 1;
            }
        }
        sizes
    }

    /// The migration diff from an `earlier` snapshot to this one: which vertices moved
    /// part, and how many vertices this epoch added beyond the earlier topology.
    /// A consumer uses it to invalidate caches or schedule data movement for exactly
    /// the vertices that changed owner between the two epochs it holds.
    pub fn diff_from(&self, earlier: &PartitionSnapshot) -> MigrationDiff {
        let shared = earlier.parts.len().min(self.parts.len());
        let moved: Vec<GlobalId> = (0..shared)
            .filter(|&v| earlier.parts[v] != self.parts[v])
            .map(|v| v as GlobalId)
            .collect();
        MigrationDiff {
            from_epoch: earlier.epoch,
            to_epoch: self.epoch,
            moved,
            vertices_added: self.parts.len().saturating_sub(earlier.parts.len()) as u64,
        }
    }
}

/// The difference between two published epochs, from a reader's perspective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationDiff {
    /// The earlier epoch.
    pub from_epoch: u64,
    /// The later epoch.
    pub to_epoch: u64,
    /// Global ids (ascending) present in both epochs whose part changed.
    pub moved: Vec<GlobalId>,
    /// Vertices the later epoch covers beyond the earlier one's topology.
    pub vertices_added: u64,
}

impl MigrationDiff {
    /// Number of vertices that changed part.
    pub fn num_moved(&self) -> usize {
        self.moved.len()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use xtrapulp_graph::csr_from_edges;

    pub(crate) fn snapshot(epoch: u64, parts: Vec<i32>, num_parts: usize) -> PartitionSnapshot {
        let quality =
            PartitionQuality::evaluate(&csr_from_edges(parts.len() as u64, &[]), &parts, num_parts);
        PartitionSnapshot {
            epoch,
            num_parts,
            parts,
            quality,
            warm_start: epoch > 0,
            lp_sweeps: 0,
            vertices_scored: 0,
            stages: StageBreakdown::default(),
            vertices_migrated: 0,
            deltas: Arc::from([]),
        }
    }

    #[test]
    fn part_views_and_sizes() {
        let s = snapshot(0, vec![0, 1, 0, 2, 1], 3);
        assert_eq!(s.num_vertices(), 5);
        assert_eq!(s.part_of(0), Some(0));
        assert_eq!(s.part_of(9), None);
        assert_eq!(s.members(1), vec![1, 4]);
        assert_eq!(s.part_sizes(), vec![2, 2, 1]);
    }

    #[test]
    fn diff_reports_moved_and_added_vertices() {
        let a = snapshot(1, vec![0, 1, 0, 2], 3);
        let b = snapshot(3, vec![0, 2, 0, 2, 1, 1], 3);
        let diff = b.diff_from(&a);
        assert_eq!(diff.from_epoch, 1);
        assert_eq!(diff.to_epoch, 3);
        assert_eq!(diff.moved, vec![1]);
        assert_eq!(diff.vertices_added, 2);
        assert_eq!(diff.num_moved(), 1);
    }
}
