//! The background repartition worker: drains the ingest queue, drives a repartition
//! engine off the serving path, and atomically publishes each new epoch.

use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;
use xtrapulp_dynamic::UpdateBatch;

use xtrapulp_obs as obs;

use crate::epoch::EpochStore;
use crate::queue::{BatchPolicy, Drained, IngestError, IngestQueue, QueuedBatch};
use crate::snapshot::PartitionSnapshot;
use crate::stats::{ServeLatencies, ServeStats, StatsCells};

/// Why the serving pipeline itself (as opposed to one batch or one repartition) is no
/// longer usable. Producer- and control-path code receives these as values; nothing in
/// the pipeline re-raises a worker panic into the calling thread.
///
/// The queue/worker pair is audited to keep panics contained: every
/// `std`-mutex/condvar acquisition recovers from poisoning with `into_inner` (the
/// guarded state is a plain queue or counter, always valid), the worker closes the
/// queue on *any* exit — including a panic — so blocked producers wake to
/// [`IngestError::Closed`](crate::IngestError::Closed) instead of sleeping forever,
/// and [`ServeHandle::shutdown`] reports a dead worker as
/// [`ServeError::WorkerPanicked`] instead of resuming the unwind in the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The worker thread panicked mid-serve; the engine (and its live graph) is lost.
    /// The epoch store keeps serving the last published snapshot.
    WorkerPanicked {
        /// The panic payload, when it was a string (the common case).
        detail: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::WorkerPanicked { detail } => {
                write!(f, "serve worker thread panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// What the worker drives: a stateful engine owning the live graph and the partitioner
/// state. `xtrapulp_api::ServingSession` implements it over a `DynamicSession`
/// (apply → incremental CSR/DistGraph evolution; repartition → warm-started run);
/// tests implement it with toy engines.
///
/// The engine runs on the worker thread, strictly single-threaded — all concurrency
/// lives in the queue in front of it and the epoch store behind it.
pub trait RepartitionEngine: Send + 'static {
    /// Why an apply or repartition failed.
    type Error: fmt::Display + Send;

    /// Validate and apply one update batch to the live graph. An `Err` means the batch
    /// was rejected and the graph is unchanged.
    fn apply(&mut self, batch: &UpdateBatch) -> Result<(), Self::Error>;

    /// Repartition the live graph and return the snapshot to publish. Its `epoch` must
    /// exceed every previously returned epoch (the epoch store enforces this).
    fn repartition(&mut self) -> Result<PartitionSnapshot, Self::Error>;
}

/// Configuration of one serving pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Total ops the ingest queue may hold before producers see backpressure.
    pub queue_capacity_ops: usize,
    /// When the worker stops draining and repartitions.
    pub policy: BatchPolicy,
    /// How long the worker waits for new batches before retrying a *pending* publish
    /// (a repartition that failed transiently after its batches were applied). Without
    /// the retry, quiescent traffic would leave the store serving a stale epoch until
    /// the next batch or shutdown.
    pub publish_retry: std::time::Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity_ops: 65_536,
            policy: BatchPolicy::default(),
            publish_retry: std::time::Duration::from_millis(100),
        }
    }
}

/// A running serving pipeline: the queue producers feed, the store readers consume,
/// and the worker thread in between. Dropping the handle without
/// [`shutdown`](ServeHandle::shutdown) closes the queue, so the worker drains what is
/// already accepted, publishes, and exits detached (the engine is lost); prefer an
/// explicit shutdown, which joins the worker and returns the engine.
pub struct ServeHandle<E: RepartitionEngine> {
    store: Arc<EpochStore>,
    queue: Arc<IngestQueue>,
    stats: Arc<StatsCells>,
    last_error: Arc<Mutex<Option<String>>>,
    /// `Some` until [`shutdown`](ServeHandle::shutdown) joins it.
    worker: Option<JoinHandle<E>>,
}

/// Closes the ingest queue when the worker exits — however it exits. Without this, an
/// engine panic would leave the queue open and producers blocked in
/// [`IngestQueue::submit`] asleep forever; with it they wake to a typed
/// [`IngestError::Closed`].
struct CloseQueueOnExit(Arc<IngestQueue>);

impl Drop for CloseQueueOnExit {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // The worker is dying mid-serve: capture the flight recorder
            // before the process state degrades further. `dump` never panics.
            obs::flight::record(obs::FlightKind::Fault, "worker_panic", 0, 0);
            let _ = obs::flight::dump("worker-panic");
        }
        self.0.close();
    }
}

/// Spawn a serving pipeline around `engine`.
///
/// `initial` is the epoch the store opens with (normally the engine's cold epoch-0
/// partition, computed by the caller *before* spawning so readers never observe an
/// empty store). The worker thread then loops: drain a batch group → apply each batch
/// → repartition → publish, until the queue is closed and drained.
pub fn spawn<E: RepartitionEngine>(
    mut engine: E,
    initial: PartitionSnapshot,
    config: ServeConfig,
) -> ServeHandle<E> {
    let store = EpochStore::new(initial);
    let queue = Arc::new(IngestQueue::new(config.queue_capacity_ops));
    let stats = Arc::new(StatsCells::default());
    let last_error: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));

    let worker = {
        let store = Arc::clone(&store);
        let queue = Arc::clone(&queue);
        let stats = Arc::clone(&stats);
        let last_error = Arc::clone(&last_error);
        let policy = config.policy;
        let publish_retry = config.publish_retry;
        std::thread::Builder::new()
            .name("xtrapulp-serve-worker".to_string())
            .spawn(move || {
                let _close_on_exit = CloseQueueOnExit(Arc::clone(&queue));
                // Applied-but-unpublished state: set when a batch lands, cleared on a
                // successful publish. While set, the wait for the next group is
                // bounded so a pending publish is retried even under quiescent
                // traffic, and every cycle retries regardless of what its own group
                // applied.
                let mut dirty = false;
                // Enqueue instants of batches applied to the graph but not yet
                // reflected in a published epoch; drained on a successful publish
                // into the ingest-to-publish histogram (one sample per batch),
                // carried across failed repartitions so retried batches keep
                // accruing latency instead of being dropped from the distribution.
                let mut pending_enqueues: Vec<Instant> = Vec::new();
                loop {
                    let bound = dirty.then_some(publish_retry);
                    let drained = {
                        let _span = obs::span("serve_drain");
                        queue.drain_group_wait(&policy, bound)
                    };
                    obs::mem::set("ingest_queue", queue.approx_bytes());
                    match drained {
                        Drained::Group(group) => {
                            step(
                                &mut engine,
                                group,
                                &store,
                                &stats,
                                &last_error,
                                &mut dirty,
                                &mut pending_enqueues,
                            );
                        }
                        Drained::TimedOut => {
                            dirty = !repartition_and_publish(
                                &mut engine,
                                &store,
                                &stats,
                                &last_error,
                                Instant::now(),
                                &mut pending_enqueues,
                            );
                        }
                        Drained::Closed => break,
                    }
                }
                // Drain-then-stop must not exit with applied-but-unpublished state: if
                // the last cycle's repartition failed, retry once so the final graph
                // is published (or the failure is recorded a second time).
                if dirty {
                    repartition_and_publish(
                        &mut engine,
                        &store,
                        &stats,
                        &last_error,
                        Instant::now(),
                        &mut pending_enqueues,
                    );
                }
                engine
            })
            .expect("failed to spawn the serve worker thread")
    };

    ServeHandle {
        store,
        queue,
        stats,
        last_error,
        worker: Some(worker),
    }
}

/// One worker cycle: apply a drained group, repartition, publish. `dirty` carries
/// applied-but-unpublished state across cycles (a failed repartition leaves the graph
/// ahead of the published epoch; the next cycle must retry even if its own group
/// applies nothing).
fn step<E: RepartitionEngine>(
    engine: &mut E,
    group: Vec<QueuedBatch>,
    store: &EpochStore,
    stats: &StatsCells,
    last_error: &Mutex<Option<String>>,
    dirty: &mut bool,
    pending_enqueues: &mut Vec<Instant>,
) {
    let cycle_start = Instant::now();
    let apply_span = obs::span_with("serve_apply", group.len() as u64);
    let mut applied = 0usize;
    for qb in &group {
        match engine.apply(&qb.batch) {
            Ok(()) => {
                applied += 1;
                stats.add(&stats.batches_applied, 1);
                stats.add(&stats.ops_applied, qb.batch.len() as u64);
                pending_enqueues.push(qb.enqueued_at);
            }
            Err(e) => {
                stats.add(&stats.batches_rejected, 1);
                *last_error.lock() = Some(e.to_string());
            }
        }
    }
    drop(apply_span);
    if applied == 0 && !*dirty {
        // Every batch was rejected and nothing earlier is waiting to publish: the
        // graph matches the published epoch — skip the repartition entirely.
        return;
    }
    *dirty = !repartition_and_publish(
        engine,
        store,
        stats,
        last_error,
        cycle_start,
        pending_enqueues,
    );
}

/// Repartition and publish the engine's current graph, recording the latency
/// histograms. Returns whether a snapshot was published; on failure the previous
/// epoch keeps serving, the failure is counted and recorded, and `pending_enqueues`
/// is left intact so the batches' ingest-to-publish clocks keep running.
fn repartition_and_publish<E: RepartitionEngine>(
    engine: &mut E,
    store: &EpochStore,
    stats: &StatsCells,
    last_error: &Mutex<Option<String>>,
    cycle_start: Instant,
    pending_enqueues: &mut Vec<Instant>,
) -> bool {
    let repartition_span = obs::span("serve_repartition");
    let outcome = engine.repartition();
    drop(repartition_span);
    match outcome {
        Ok(snapshot) => {
            let _span = obs::span_with("serve_publish", snapshot.epoch);
            // All of this epoch's counters and histograms are recorded *before* the
            // publish: a consumer woken by `wait_for_epoch` must read stats that
            // already describe the epoch it waited for (the publish itself is a
            // pointer swap, negligible against the repartition just timed).
            stats.set(&stats.last_lp_sweeps, snapshot.lp_sweeps);
            stats.set(&stats.last_vertices_scored, snapshot.vertices_scored);
            stats.add(&stats.epochs_published, 1);
            stats.add(
                if snapshot.warm_start {
                    &stats.warm_epochs
                } else {
                    &stats.cold_epochs
                },
                1,
            );
            let publish_nanos = cycle_start.elapsed().as_nanos() as u64;
            stats.publish_nanos.record(publish_nanos);
            stats.add(&stats.total_publish_nanos, publish_nanos);
            // Every batch this epoch reflects gets its own end-to-end sample —
            // including batches applied in earlier cycles whose publish failed.
            for enqueued in pending_enqueues.drain(..) {
                stats
                    .ingest_to_publish_nanos
                    .record(enqueued.elapsed().as_nanos() as u64);
            }
            obs::flight::record(
                obs::FlightKind::EpochPublish,
                "epoch",
                snapshot.epoch,
                publish_nanos,
            );
            store.publish(snapshot);
            obs::mem::set("epoch_store", store.approx_bytes());
            true
        }
        Err(e) => {
            stats.add(&stats.repartition_failures, 1);
            *last_error.lock() = Some(e.to_string());
            false
        }
    }
}

impl<E: RepartitionEngine> ServeHandle<E> {
    /// The epoch store readers subscribe to. Clone the `Arc` per reader thread; every
    /// accessor on it is safe (and non-blocking) under concurrent publishing.
    pub fn store(&self) -> Arc<EpochStore> {
        Arc::clone(&self.store)
    }

    /// The ingest queue, for producers that want to share it across threads directly.
    pub fn queue(&self) -> Arc<IngestQueue> {
        Arc::clone(&self.queue)
    }

    /// Submit a batch without blocking (typed backpressure when full).
    pub fn try_ingest(&self, batch: UpdateBatch) -> Result<(), IngestError> {
        self.queue.try_submit(batch)
    }

    /// Submit a batch, blocking while the queue is full.
    pub fn ingest(&self, batch: UpdateBatch) -> Result<(), IngestError> {
        self.queue.submit(batch)
    }

    /// A point-in-time view of the serving counters (including live queue depth).
    pub fn stats(&self) -> ServeStats {
        self.stats.snapshot(
            self.queue.queued_ops() as u64,
            self.queue.queued_batches() as u64,
        )
    }

    /// A cheap `'static` closure snapshotting the pipeline's counters without
    /// borrowing the handle — what a metrics-exposition thread captures. The closure
    /// stays valid (returning final counters) after the worker exits.
    pub fn stats_fn(&self) -> impl Fn() -> ServeStats + Send + Sync + 'static {
        let stats = Arc::clone(&self.stats);
        let queue = Arc::clone(&self.queue);
        move || stats.snapshot(queue.queued_ops() as u64, queue.queued_batches() as u64)
    }

    /// The pipeline's latency distributions. Benches sample this per measurement
    /// window and subtract consecutive snapshots
    /// ([`HistogramSnapshot::delta_since`](xtrapulp_obs::HistogramSnapshot::delta_since))
    /// to report per-window percentiles.
    pub fn latencies(&self) -> ServeLatencies {
        ServeLatencies {
            publish_nanos: self.stats.publish_nanos.snapshot(),
            ingest_to_publish_nanos: self.stats.ingest_to_publish_nanos.snapshot(),
        }
    }

    /// The most recent apply/repartition failure, if any (rejected batches land here
    /// with their typed validation message).
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }

    /// Drain-then-stop shutdown: close the queue to producers, let the worker apply
    /// and publish everything already queued, then join it — returning the engine
    /// (with its final graph and partition state) and the final counters.
    ///
    /// A worker that died mid-serve comes back as a typed
    /// [`ServeError::WorkerPanicked`] instead of re-raising the panic in the calling
    /// thread, so a crashed pipeline cannot cascade into its producers.
    pub fn shutdown(mut self) -> Result<(E, ServeStats), ServeError> {
        self.queue.close();
        // `self.worker` is `Some` until this method consumes it; `shutdown` takes
        // `self` by value, so it can only run once.
        let Some(worker) = self.worker.take() else {
            return Err(ServeError::WorkerPanicked {
                detail: "worker handle already consumed".to_string(),
            });
        };
        let engine = worker.join().map_err(|panic| {
            let detail = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            ServeError::WorkerPanicked { detail }
        })?;
        let stats = self.stats.snapshot(
            self.queue.queued_ops() as u64,
            self.queue.queued_batches() as u64,
        );
        Ok((engine, stats))
    }
}

impl<E: RepartitionEngine> Drop for ServeHandle<E> {
    fn drop(&mut self) {
        // Dropping without `shutdown`: close the queue so the (detached) worker
        // drains, publishes and exits instead of sleeping on the condvar forever —
        // and so producer threads blocked in `submit` wake to `IngestError::Closed`.
        self.queue.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::tests::snapshot;
    use std::time::Duration;

    /// A toy engine over a virtual growing "graph": each applied batch appends its op
    /// count as new vertices (all in part 0); repartition publishes the next epoch.
    struct ToyEngine {
        epoch: u64,
        vertices: usize,
        reject_batches_of: Option<usize>,
        fail_repartitions: u64,
    }

    impl RepartitionEngine for ToyEngine {
        type Error = String;

        fn apply(&mut self, batch: &UpdateBatch) -> Result<(), String> {
            if self.reject_batches_of == Some(batch.len()) {
                return Err(format!("rejecting batches of {} ops", batch.len()));
            }
            self.vertices += batch.len();
            self.epoch += 1;
            Ok(())
        }

        fn repartition(&mut self) -> Result<PartitionSnapshot, String> {
            if self.fail_repartitions > 0 {
                self.fail_repartitions -= 1;
                return Err("transient repartition failure".to_string());
            }
            Ok(snapshot(self.epoch, vec![0; self.vertices], 1))
        }
    }

    fn batch(ops: usize) -> UpdateBatch {
        let mut b = UpdateBatch::new();
        for i in 0..ops {
            b.insert_edge(i as u64, (i + 1) as u64);
        }
        b
    }

    #[test]
    fn worker_applies_groups_and_publishes_monotonic_epochs() {
        let engine = ToyEngine {
            epoch: 0,
            vertices: 4,
            reject_batches_of: None,
            fail_repartitions: 0,
        };
        let handle = spawn(engine, snapshot(0, vec![0; 4], 1), ServeConfig::default());
        let store = handle.store();
        for _ in 0..3 {
            handle.ingest(batch(2)).unwrap();
        }
        let seen = store
            .wait_for_epoch(1, Duration::from_secs(10))
            .expect("worker publishes");
        assert!(seen.epoch >= 1);
        let (engine, stats) = handle.shutdown().expect("worker exits cleanly");
        // Drain-then-stop: every batch applied, final state published.
        assert_eq!(engine.epoch, 3);
        assert_eq!(engine.vertices, 10);
        assert_eq!(stats.batches_applied, 3);
        assert_eq!(stats.ops_applied, 6);
        assert_eq!(stats.queue_depth_ops, 0);
        assert!(stats.epochs_published >= 1);
        assert_eq!(store.epoch(), 3);
        assert_eq!(store.current().num_vertices(), 10);
        assert!(stats.total_publish_seconds >= 0.0);
        assert!(stats.publish_seconds_p99 >= stats.publish_seconds_p50);
        assert!(stats.ingest_to_publish_seconds_p99 >= stats.ingest_to_publish_seconds_p50);
    }

    #[test]
    fn every_applied_batch_gets_an_ingest_to_publish_sample() {
        let engine = ToyEngine {
            epoch: 0,
            vertices: 1,
            reject_batches_of: Some(3),
            fail_repartitions: 0,
        };
        let handle = spawn(engine, snapshot(0, vec![0], 1), ServeConfig::default());
        for _ in 0..5 {
            handle.ingest(batch(2)).unwrap(); // applied
        }
        handle.ingest(batch(3)).unwrap(); // rejected: must NOT contribute a sample
                                          // The engine's epoch advances once per applied batch, so epoch 5 going live
                                          // means every applied batch's sample is already recorded (samples land
                                          // before the publish).
        handle
            .store()
            .wait_for_epoch(5, Duration::from_secs(10))
            .expect("all applied batches publish");
        let lat = handle.latencies();
        // The old gauge sampled one batch per group; the histogram records each
        // applied batch exactly once, however the worker grouped them.
        assert_eq!(lat.ingest_to_publish_nanos.count(), 5);
        assert!(lat.publish_nanos.count() >= 1);
        let (_, stats) = handle.shutdown().expect("worker exits cleanly");
        assert_eq!(stats.batches_applied, 5);
        assert_eq!(stats.batches_rejected, 1);
        assert!(stats.ingest_to_publish_seconds_p50 > 0.0);
        assert!(stats.ingest_to_publish_seconds_p99 >= stats.ingest_to_publish_seconds_p50);
    }

    #[test]
    fn rejected_batches_are_counted_and_do_not_publish() {
        let engine = ToyEngine {
            epoch: 0,
            vertices: 1,
            reject_batches_of: Some(3),
            fail_repartitions: 0,
        };
        let handle = spawn(engine, snapshot(0, vec![0], 1), ServeConfig::default());
        handle.ingest(batch(3)).unwrap(); // rejected by the engine
        handle.ingest(batch(2)).unwrap(); // applied
        let store = handle.store();
        store
            .wait_for_epoch(1, Duration::from_secs(10))
            .expect("the good batch publishes");
        let (_, stats) = handle.shutdown().expect("worker exits cleanly");
        assert_eq!(stats.batches_rejected, 1);
        assert_eq!(stats.batches_applied, 1);
        assert_eq!(store.epoch(), 1);
    }

    #[test]
    fn repartition_failures_keep_the_previous_epoch_serving() {
        let engine = ToyEngine {
            epoch: 0,
            vertices: 1,
            reject_batches_of: None,
            fail_repartitions: 1,
        };
        // A long retry interval keeps the quiescent retry out of this test (it has
        // its own: `pending_publish_is_retried_under_quiescent_traffic`).
        let config = ServeConfig {
            publish_retry: Duration::from_secs(3600),
            ..ServeConfig::default()
        };
        let handle = spawn(engine, snapshot(0, vec![0], 1), config);
        handle.ingest(batch(1)).unwrap();
        // Wait until the failure is recorded, then ingest a batch that succeeds.
        let deadline = Instant::now() + Duration::from_secs(10);
        while handle.stats().repartition_failures == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(handle.store().epoch(), 0, "failed epoch must not publish");
        assert_eq!(
            handle.last_error().as_deref(),
            Some("transient repartition failure")
        );
        handle.ingest(batch(1)).unwrap();
        let (_, stats) = handle.shutdown().expect("worker exits cleanly");
        assert_eq!(stats.repartition_failures, 1);
        assert!(stats.epochs_published >= 1);
    }

    #[test]
    fn applied_but_unpublished_state_is_retried_even_by_rejected_groups() {
        // Cycle 1 applies a batch but its repartition fails; cycle 2's batch is
        // rejected by the engine. The dirty-state retry must still publish the
        // cycle-1 graph instead of leaving the store stale forever.
        let engine = ToyEngine {
            epoch: 0,
            vertices: 1,
            reject_batches_of: Some(3),
            fail_repartitions: 1,
        };
        // Long retry interval: this test exercises the rejected-group retry path, not
        // the quiescent timed retry.
        let config = ServeConfig {
            publish_retry: Duration::from_secs(3600),
            ..ServeConfig::default()
        };
        let handle = spawn(engine, snapshot(0, vec![0], 1), config);
        handle.ingest(batch(1)).unwrap(); // applied; repartition fails
        let deadline = Instant::now() + Duration::from_secs(10);
        while handle.stats().repartition_failures == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(handle.store().epoch(), 0);
        handle.ingest(batch(3)).unwrap(); // rejected by the engine
        let store = handle.store();
        let published = store
            .wait_for_epoch(1, Duration::from_secs(10))
            .expect("the rejected group still retries the pending publish");
        assert_eq!(published.epoch, 1);
        let (_, stats) = handle.shutdown().expect("worker exits cleanly");
        assert_eq!(stats.batches_rejected, 1);
        assert_eq!(stats.epochs_published, 1);
    }

    #[test]
    fn pending_publish_is_retried_under_quiescent_traffic() {
        // A transient repartition failure with no follow-up traffic: the bounded
        // drain wait must retry the pending publish on its own instead of leaving
        // readers on a stale epoch until shutdown.
        let engine = ToyEngine {
            epoch: 0,
            vertices: 1,
            reject_batches_of: None,
            fail_repartitions: 1,
        };
        let config = ServeConfig {
            publish_retry: Duration::from_millis(10),
            ..ServeConfig::default()
        };
        let handle = spawn(engine, snapshot(0, vec![0], 1), config);
        handle.ingest(batch(1)).unwrap();
        let published = handle
            .store()
            .wait_for_epoch(1, Duration::from_secs(10))
            .expect("the timed retry publishes without further ingest");
        assert_eq!(published.epoch, 1);
        let (_, stats) = handle.shutdown().expect("worker exits cleanly");
        assert_eq!(stats.repartition_failures, 1);
        assert_eq!(stats.epochs_published, 1);
    }

    /// An engine that panics while applying: the worker dies, but producers and the
    /// shutdown path must observe typed errors, not cascaded panics.
    #[derive(Debug)]
    struct PanickingEngine;

    impl RepartitionEngine for PanickingEngine {
        type Error = String;

        fn apply(&mut self, _batch: &UpdateBatch) -> Result<(), String> {
            panic!("engine bug");
        }

        fn repartition(&mut self) -> Result<PartitionSnapshot, String> {
            Ok(snapshot(1, vec![0], 1))
        }
    }

    #[test]
    fn worker_panic_surfaces_as_typed_error_not_cascade() {
        let handle = spawn(
            PanickingEngine,
            snapshot(0, vec![0], 1),
            ServeConfig::default(),
        );
        let queue = handle.queue();
        let store = handle.store();
        handle.ingest(batch(1)).unwrap();
        // The dying worker closes the queue, so producers wake to a typed error
        // instead of blocking (or panicking) forever.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !queue.is_closed() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(queue.submit(batch(1)), Err(IngestError::Closed));
        // Shutdown reports the panic as a value; the store still serves epoch 0.
        let err = handle.shutdown().expect_err("worker died");
        let ServeError::WorkerPanicked { detail } = err;
        assert!(detail.contains("engine bug"), "{detail}");
        assert_eq!(store.epoch(), 0);
    }

    #[test]
    fn dropping_the_handle_closes_the_queue_and_the_worker_drains() {
        let engine = ToyEngine {
            epoch: 0,
            vertices: 2,
            reject_batches_of: None,
            fail_repartitions: 0,
        };
        let handle = spawn(engine, snapshot(0, vec![0; 2], 1), ServeConfig::default());
        let store = handle.store();
        let queue = handle.queue();
        handle.ingest(batch(2)).unwrap();
        drop(handle);
        // The detached worker drains and publishes the queued batch...
        let published = store
            .wait_for_epoch(1, Duration::from_secs(10))
            .expect("dropped handle still drains the queue");
        assert_eq!(published.num_vertices(), 4);
        // ...and producers see a typed close instead of blocking forever.
        assert_eq!(queue.submit(batch(1)), Err(IngestError::Closed));
    }
}
