//! In-proc vs TCP parity: every collective, and a full partition job, must
//! produce identical results whether ranks are threads of one process (typed
//! frames, no serialisation) or sockets over localhost (real byte streams).
//!
//! The TCP "processes" here are threads of the test binary, each owning its
//! own connected [`TcpTransport`] endpoint — the wire path is exactly the one
//! `xtrapulp-mp` exercises across real processes (see `mp_e2e.rs` for that).

use std::net::TcpListener;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use xtrapulp::PartitionParams;
use xtrapulp_api::Session;
use xtrapulp_comm::{RankCtx, Runtime, TcpConfig, TcpTransport, Transport};
use xtrapulp_gen::{GraphConfig, GraphKind};
use xtrapulp_graph::Distribution;

/// One TCP mesh at a time per test process, so rendezvous ports never collide.
fn mesh_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .and_then(|l| l.local_addr())
        .map(|a| a.port())
        .expect("probe a free port")
}

/// Run `f` collectively over `nranks` TcpTransport endpoints (one thread per
/// rank, sockets over localhost) and return the results in rank order.
fn run_tcp<F, R>(nranks: usize, f: F) -> Vec<R>
where
    F: Fn(&RankCtx) -> R + Sync + Send + 'static,
    R: Send + 'static,
{
    let _guard = mesh_lock().lock().unwrap();
    let coordinator = format!("127.0.0.1:{}", free_port());
    let f = Arc::new(f);
    let mut handles = Vec::with_capacity(nranks);
    for rank in 0..nranks {
        let coordinator = coordinator.clone();
        let f = Arc::clone(&f);
        handles.push(std::thread::spawn(move || {
            let mut config = TcpConfig::new(coordinator, Some(rank), nranks);
            config.recv_timeout = Duration::from_secs(30);
            let transport = TcpTransport::connect(&config).expect("mesh connects");
            let mut runtime = Runtime::with_transport(Box::new(transport)).expect("valid rank");
            let mut out = runtime.execute(|ctx| f(ctx));
            assert_eq!(out.len(), 1, "one local rank per endpoint");
            out.pop().unwrap()
        }));
    }
    handles
        .into_iter()
        .map(|h| h.join().expect("rank thread completes"))
        .collect()
}

/// Exercise every collective once and return everything observable.
#[allow(clippy::type_complexity)]
fn exercise_all_collectives(
    ctx: &RankCtx,
) -> (
    u64,              // broadcast
    Vec<u64>,         // allgather
    Vec<(u64, i32)>,  // allgatherv
    Option<Vec<u64>>, // gather at root 0 (None off-root)
    u64,              // scatter from last rank
    Vec<u64>,         // alltoall
    Vec<Vec<u64>>,    // alltoallv
    Vec<u64>,         // allreduce sum
    Vec<f64>,         // allreduce max f64
    u64,              // exscan
    u64,              // scalar sum
) {
    let rank = ctx.rank() as u64;
    let n = ctx.nranks();
    ctx.barrier();
    let bcast = ctx.broadcast(0, ctx.is_root().then_some(7_000_007u64));
    let allgather = ctx.allgather(rank * rank + 1);
    let allgatherv: Vec<(u64, i32)> = ctx.allgatherv(
        (0..rank + 1)
            .map(|i| (rank * 100 + i, -(i as i32)))
            .collect(),
    );
    let gathered = ctx.gather(0, rank + 10);
    let scatter_root = n - 1;
    let scattered = ctx.scatter(
        scatter_root,
        (ctx.rank() == scatter_root).then(|| (0..n as u64).map(|d| d * 3 + 1).collect()),
    );
    let alltoall = ctx.alltoall((0..n as u64).map(|d| rank * 1000 + d).collect());
    let alltoallv = ctx.alltoallv(
        (0..n as u64)
            .map(|d| (0..d + 1).map(|i| rank * 10_000 + d * 100 + i).collect())
            .collect(),
    );
    let summed = ctx.allreduce_sum_u64(&[rank, 1, rank * 2]);
    let maxed = ctx.allreduce_max_f64(&[rank as f64 * 1.5, -(rank as f64)]);
    let exscan = ctx.exscan_sum_u64(rank + 1);
    ctx.barrier();
    let scalar = ctx.allreduce_scalar_sum_u64(rank + 5);
    (
        bcast, allgather, allgatherv, gathered, scattered, alltoall, alltoallv, summed, maxed,
        exscan, scalar,
    )
}

#[test]
fn every_collective_matches_inproc_at_1_2_and_8_ranks() {
    for nranks in [1usize, 2, 8] {
        let inproc = Runtime::new(nranks).execute(exercise_all_collectives);
        let tcp = run_tcp(nranks, exercise_all_collectives);
        assert_eq!(
            inproc, tcp,
            "collective results diverged between backends at {nranks} ranks"
        );
    }
}

#[test]
fn partition_job_is_bit_identical_across_backends() {
    let nranks = 4;
    let csr = GraphConfig::new(
        GraphKind::Rmat {
            scale: 9,
            edge_factor: 8,
        },
        1234,
    )
    .generate()
    .to_csr();
    let params = PartitionParams {
        num_parts: 4,
        ..Default::default()
    };

    let mut inproc = Session::new(nranks).expect("in-process session");
    let reference = inproc.partition(&csr, &params).expect("in-process job");

    let csr = Arc::new(csr);
    let per_rank_parts = {
        let _guard = mesh_lock().lock().unwrap();
        let coordinator = format!("127.0.0.1:{}", free_port());
        let mut handles = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            let coordinator = coordinator.clone();
            let csr = Arc::clone(&csr);
            handles.push(std::thread::spawn(move || {
                let config = TcpConfig::new(coordinator, Some(rank), nranks);
                let transport = TcpTransport::connect(&config).expect("mesh connects");
                let runtime = Runtime::with_transport(Box::new(transport)).expect("valid rank");
                let mut session = Session::with_runtime(runtime, Distribution::Block);
                assert!(session.is_distributed());
                let report = session.partition(&csr, &params).expect("distributed job");
                assert_eq!(report.nranks, nranks);
                report.parts
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank completes"))
            .collect::<Vec<_>>()
    };

    for (rank, parts) in per_rank_parts.iter().enumerate() {
        assert_eq!(
            parts, &reference.parts,
            "rank {rank}'s gathered part vector differs from the in-process backend"
        );
    }
}

#[test]
fn coordinator_assigns_free_ranks_to_auto_workers() {
    let _guard = mesh_lock().lock().unwrap();
    let nranks = 4;
    let coordinator = format!("127.0.0.1:{}", free_port());
    let mut handles = Vec::with_capacity(nranks);
    for i in 0..nranks {
        let coordinator = coordinator.clone();
        handles.push(std::thread::spawn(move || {
            // Only the coordinator claims its rank; everyone else takes
            // whatever is assigned.
            let requested = if i == 0 { Some(0) } else { None };
            let config = TcpConfig::new(coordinator, requested, nranks);
            let transport = TcpTransport::connect(&config).expect("mesh connects");
            let assigned = transport.rank();
            let mut runtime = Runtime::with_transport(Box::new(transport)).expect("valid rank");
            let seen: Vec<u64> = runtime
                .execute(|ctx| ctx.allgather(ctx.rank() as u64))
                .pop()
                .unwrap();
            (assigned, seen)
        }));
    }
    let results: Vec<(usize, Vec<u64>)> = handles
        .into_iter()
        .map(|h| h.join().expect("worker completes"))
        .collect();
    let mut assigned: Vec<usize> = results.iter().map(|(r, _)| *r).collect();
    assigned.sort_unstable();
    assert_eq!(assigned, vec![0, 1, 2, 3], "ranks must be a permutation");
    for (_, seen) in &results {
        assert_eq!(seen, &vec![0u64, 1, 2, 3], "allgather sees every rank");
    }
}

#[test]
fn zero_and_mismatched_rank_configs_fail_typed() {
    use xtrapulp_comm::CommError;
    assert_eq!(Runtime::try_new(0).err(), Some(CommError::ZeroRanks));
    // A transport claiming a rank beyond its nranks is rejected up front.
    let err = TcpTransport::connect(&TcpConfig::new("127.0.0.1:1", Some(3), 2))
        .err()
        .expect("out-of-range rank must not connect");
    assert_eq!(err.kind(), "handshake");
}
