//! End-to-end drills of the `xtrapulp-mp` launcher: real OS processes, real
//! sockets. Covers the two acceptance behaviours of the transport subsystem —
//! multi-process partitions bit-identical to the in-process backend, and a
//! killed worker surfacing a typed error within a bounded timeout.

use std::process::Command;
use std::time::Instant;

fn launcher() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xtrapulp-mp"))
}

#[test]
fn spawn_four_processes_produces_bit_identical_partition() {
    let output = launcher()
        .args([
            "--spawn", "4", "--scale", "8", "--parts", "8", "--seed", "99", "--json",
        ])
        .output()
        .expect("launcher runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "launcher failed\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(
        stdout.contains("\"bit_identical_across_processes\":true"),
        "part vectors must agree across processes: {stdout}"
    );
    assert!(
        stdout.contains("\"matches_inproc\":true"),
        "part vector must match the in-process backend: {stdout}"
    );
}

#[test]
fn killed_worker_yields_typed_error_not_a_hang() {
    let started = Instant::now();
    let output = launcher()
        .args([
            "--spawn",
            "3",
            "--kill-rank",
            "1",
            "--scale",
            "8",
            "--recv-timeout-ms",
            "10000",
        ])
        .output()
        .expect("launcher runs");
    let elapsed = started.elapsed();
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "drill failed\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(
        stdout.contains("\"survivors_failed_typed\":true"),
        "survivors must fail with typed transport errors: {stdout}"
    );
    assert!(
        elapsed.as_secs() < 60,
        "peer death must surface within the bounded timeout, took {elapsed:?}"
    );
}
