//! Fig. 2: weak scaling — RMAT/RandER/RandHD graphs with a fixed number of vertices per
//! rank and average degree 16/32/64; the number of parts equals the number of ranks.

use xtrapulp::{xtrapulp_partition, PartitionParams};
use xtrapulp_bench::{fmt, print_table, scaled};
use xtrapulp_comm::{Runtime, Timer};
use xtrapulp_gen::{GraphConfig, GraphKind};
use xtrapulp_graph::{DistGraph, Distribution};

fn main() {
    let per_rank = scaled(1 << 13);
    let rank_counts = [1usize, 2, 4, 8];
    let degrees = [16u64, 32, 64];
    let mut rows = Vec::new();
    for family in ["RMAT", "RandER", "RandHD"] {
        for &davg in &degrees {
            let mut row = vec![family.to_string(), davg.to_string()];
            for &nranks in &rank_counts {
                let n = per_rank * nranks as u64;
                let kind = match family {
                    "RMAT" => GraphKind::Rmat {
                        scale: (n as f64).log2().ceil() as u32,
                        edge_factor: davg / 2,
                    },
                    "RandER" => GraphKind::ErdosRenyi {
                        num_vertices: n,
                        avg_degree: davg,
                    },
                    _ => GraphKind::RandHd {
                        num_vertices: n,
                        avg_degree: davg,
                    },
                };
                let el = GraphConfig::new(kind, 9).generate();
                let edges = el.edges.clone();
                let secs = Runtime::run(nranks, |ctx| {
                    let g = DistGraph::from_shared_edges(
                        ctx,
                        Distribution::Hashed,
                        el.num_vertices,
                        &edges,
                    );
                    let params = PartitionParams {
                        num_parts: nranks.max(2),
                        seed: 3,
                        ..Default::default()
                    };
                    let t = Timer::start();
                    let _ = xtrapulp_partition(ctx, &g, &params);
                    ctx.allreduce_max_f64(&[t.elapsed_secs()])[0]
                })[0];
                row.push(fmt(secs));
            }
            rows.push(row);
        }
    }
    print_table(
        "Fig. 2 — weak scaling: XtraPuLP time (s), parts = ranks, fixed vertices per rank",
        &["family", "d_avg", "1 rank", "2 ranks", "4 ranks", "8 ranks"],
        &rows,
    );
}
