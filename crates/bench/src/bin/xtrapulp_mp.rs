//! `xtrapulp-mp`: the multi-process partition launcher.
//!
//! Runs one rank of a shared-nothing XtraPuLP job over the TCP transport, or —
//! with `--spawn K` — forks `K` local worker processes, waits for them, and
//! verifies their gathered part vectors are identical to each other (and, by
//! default, to an in-process run at the same rank count).
//!
//! Worker mode:
//!
//! ```text
//! xtrapulp-mp --rank 0 --nranks 4 --coordinator 127.0.0.1:47000 \
//!             --kind rmat --scale 10 --edge-factor 8 --parts 4 --seed 42
//! ```
//!
//! Spawn mode (single command, local processes):
//!
//! ```text
//! xtrapulp-mp --spawn 4 --scale 10 --parts 4
//! xtrapulp-mp --spawn 3 --kill-rank 1 --recv-timeout-ms 15000   # failure drill
//! xtrapulp-mp --spawn 3 --respawn --recv-timeout-ms 5000        # recovery drill
//! ```
//!
//! The `--respawn` drill kills one rank mid-job (a seeded frame-count fault
//! injected below the runtime), respawns it, lets the survivors re-rendezvous
//! with the replacement, and verifies the retried job's part vectors are
//! bit-identical to the in-process backend — the full fault-tolerance loop.
//!
//! The `--stall-ms` drill wedges one rank with injected transport delays past
//! the watchdog deadline (`--watchdog-ms`): the victim trips with a typed
//! stall naming the collective, rank and frame, every rank re-joins the mesh,
//! and the job's flight recorders are gathered into one merged post-mortem
//! file (`--postmortem`) that the spawner validates.
//!
//! Exit codes: 0 success, 2 usage error, 3 typed transport failure,
//! 4 verification/timeout failure in spawn mode, 5 typed stall (watchdog
//! trip), 17 deliberate death (`--die-after-handshake` / `--kill-at-frame`,
//! used by the drills).

use std::io::Write;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use xtrapulp::PartitionParams;
use xtrapulp_api::Session;
use xtrapulp_comm::{FaultInjectTransport, FaultPlan, Runtime, TcpConfig, TcpTransport, Transport};
use xtrapulp_gen::{GraphConfig, GraphKind};
use xtrapulp_graph::Distribution;

const EXIT_USAGE: i32 = 2;
const EXIT_TRANSPORT: i32 = 3;
const EXIT_VERIFY: i32 = 4;
const EXIT_STALLED: i32 = 5;
const EXIT_DELIBERATE_DEATH: i32 = 17;

#[derive(Clone)]
struct Options {
    // Worker identity.
    rank: Option<usize>,
    nranks: Option<usize>,
    coordinator: Option<String>,
    out: Option<PathBuf>,
    die_after_handshake: bool,
    /// Kill this process (exit 17) once the transport's combined send+recv
    /// frame counter reaches this value — a mid-job death, unlike
    /// `--die-after-handshake`'s pre-job one.
    kill_at_frame: Option<u64>,
    /// Retry a transport-faulted job up to this many times, running the
    /// runtime's recovery protocol (re-rendezvous with a respawned peer)
    /// between attempts.
    max_recoveries: u32,
    // Spawn mode.
    spawn: Option<usize>,
    kill_rank: Option<usize>,
    /// Recovery drill: kill a rank mid-job, respawn it, expect full recovery.
    respawn: bool,
    no_verify: bool,
    // Job description.
    kind: String,
    scale: u32,
    edge_factor: u64,
    seed: u64,
    parts: Option<usize>,
    recv_timeout_ms: u64,
    json: bool,
    /// Merged cross-rank trace output (chrome://tracing JSON). In worker mode the
    /// process hosting rank 0 writes it; in spawn mode the path is forwarded to
    /// every worker and the spawner validates the merged file.
    trace: Option<PathBuf>,
    /// Prometheus text-exposition listener address (worker mode; spawn mode
    /// forwards it to rank 0's worker only, so one process binds).
    metrics: Option<String>,
    /// Stall drill: the rank that gets delay-injected transport ops.
    stall_rank: Option<usize>,
    /// Stall drill: injected delay per faulted op, milliseconds (0 = off).
    stall_ms: u64,
    /// Per-collective stall-watchdog deadline, milliseconds (None = disabled).
    watchdog_ms: Option<u64>,
    /// Merged cross-rank flight-recorder post-mortem output path. After a
    /// stalled/faulted job, every rank recovers the mesh and contributes its
    /// flight ring; the process hosting rank 0 writes the merged file.
    postmortem: Option<PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            rank: None,
            nranks: None,
            coordinator: None,
            out: None,
            die_after_handshake: false,
            kill_at_frame: None,
            max_recoveries: 0,
            spawn: None,
            kill_rank: None,
            respawn: false,
            no_verify: false,
            kind: "rmat".to_string(),
            scale: 10,
            edge_factor: 8,
            seed: 42,
            parts: None,
            recv_timeout_ms: 60_000,
            json: false,
            trace: None,
            metrics: None,
            stall_rank: None,
            stall_ms: 0,
            watchdog_ms: None,
            postmortem: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: xtrapulp-mp --rank N --nranks K --coordinator HOST:PORT [job args]\n\
         \x20      xtrapulp-mp --spawn K [--kill-rank R] [--respawn] [--no-verify] [job args]\n\
         job args: --kind rmat|webcrawl|er --scale S --edge-factor F --seed X\n\
         \x20         --parts P --recv-timeout-ms MS --json\n\
         \x20         --kill-at-frame N (die mid-job at transport frame N)\n\
         \x20         --max-recoveries K (retry faulted jobs after recovery)\n\
         \x20         --trace FILE (merged chrome://tracing JSON, all ranks)\n\
         \x20         --metrics HOST:PORT (Prometheus text endpoint)\n\
         \x20         --stall-rank R --stall-ms MS (inject delays on rank R)\n\
         \x20         --watchdog-ms MS (per-collective stall deadline)\n\
         \x20         --postmortem FILE (merged flight-recorder dump)"
    );
    std::process::exit(EXIT_USAGE);
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--rank" => opts.rank = value(&mut i).parse().ok(),
            "--nranks" => opts.nranks = value(&mut i).parse().ok(),
            "--coordinator" => opts.coordinator = Some(value(&mut i)),
            "--out" => opts.out = Some(PathBuf::from(value(&mut i))),
            "--die-after-handshake" => opts.die_after_handshake = true,
            "--kill-at-frame" => opts.kill_at_frame = value(&mut i).parse().ok(),
            "--max-recoveries" => {
                opts.max_recoveries = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--spawn" => opts.spawn = value(&mut i).parse().ok(),
            "--kill-rank" => opts.kill_rank = value(&mut i).parse().ok(),
            "--respawn" => opts.respawn = true,
            "--no-verify" => opts.no_verify = true,
            "--kind" => opts.kind = value(&mut i),
            "--scale" => opts.scale = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--edge-factor" => opts.edge_factor = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--parts" => opts.parts = value(&mut i).parse().ok(),
            "--recv-timeout-ms" => {
                opts.recv_timeout_ms = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--json" => opts.json = true,
            "--trace" => opts.trace = Some(PathBuf::from(value(&mut i))),
            "--metrics" => opts.metrics = Some(value(&mut i)),
            "--stall-rank" => opts.stall_rank = value(&mut i).parse().ok(),
            "--stall-ms" => opts.stall_ms = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--watchdog-ms" => opts.watchdog_ms = value(&mut i).parse().ok(),
            "--postmortem" => opts.postmortem = Some(PathBuf::from(value(&mut i))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }
    opts
}

fn graph_config(opts: &Options) -> GraphConfig {
    let kind = match opts.kind.as_str() {
        "rmat" => GraphKind::Rmat {
            scale: opts.scale,
            edge_factor: opts.edge_factor,
        },
        "er" => GraphKind::ErdosRenyi {
            num_vertices: 1u64 << opts.scale,
            avg_degree: opts.edge_factor,
        },
        "webcrawl" => GraphKind::WebCrawl {
            num_vertices: 1u64 << opts.scale,
            avg_degree: opts.edge_factor,
            community_size: 64,
        },
        other => {
            eprintln!("unknown graph kind: {other}");
            usage();
        }
    };
    GraphConfig::new(kind, opts.seed)
}

fn main() {
    let opts = parse_args();
    let code = if let Some(workers) = opts.spawn {
        run_spawner(&opts, workers)
    } else {
        run_worker(&opts)
    };
    std::process::exit(code);
}

// ----------------------------------------------------------------------------------
// Worker mode: one rank of the job in this process.
// ----------------------------------------------------------------------------------

fn run_worker(opts: &Options) -> i32 {
    let (Some(nranks), Some(coordinator)) = (opts.nranks, opts.coordinator.as_deref()) else {
        usage();
    };
    let mut config = TcpConfig::new(coordinator, opts.rank, nranks);
    config.recv_timeout = Duration::from_millis(opts.recv_timeout_ms);
    let started = Instant::now();
    let transport = match TcpTransport::connect(&config) {
        Ok(t) => t,
        Err(e) => return report_transport_error(&e),
    };
    let rank = Transport::rank(&transport);
    if opts.die_after_handshake {
        // Failure drill: vanish after the mesh is up, mid-job for the peers.
        eprintln!("rank {rank}: dying deliberately after handshake");
        std::process::exit(EXIT_DELIBERATE_DEATH);
    }
    // Recovery drill: die mid-job, once the seeded fault layer counts enough
    // transport frames. The exit code tells the spawner to respawn this rank.
    let stall_here = opts.stall_ms > 0 && opts.stall_rank == Some(rank);
    let boxed: Box<dyn Transport> = match opts.kill_at_frame {
        Some(frame) => {
            let plan = FaultPlan::new(opts.seed ^ rank as u64)
                .kill_process_at_frame(frame, EXIT_DELIBERATE_DEATH);
            Box::new(FaultInjectTransport::new(Box::new(transport), plan))
        }
        None if stall_here => {
            // Stall drill: wedge every 64th op long enough to blow the
            // watchdog deadline. Frame 0 is a multiple of 64, so the very
            // first collective on this rank stalls — a deterministic trip —
            // while the plan stays sparse enough for the post-mortem export
            // to complete afterwards.
            let plan = FaultPlan::new(opts.seed ^ rank as u64)
                .delay_every(64, Duration::from_millis(opts.stall_ms));
            Box::new(FaultInjectTransport::new(Box::new(transport), plan))
        }
        None => Box::new(transport),
    };
    let runtime = match Runtime::with_transport(boxed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{{\"error\":\"comm\",\"detail\":\"{e}\"}}");
            return EXIT_TRANSPORT;
        }
    };
    let mut session = Session::with_runtime(runtime, Distribution::Block);
    if let Some(ms) = opts.watchdog_ms {
        session.set_watchdog_deadline(Some(Duration::from_millis(ms)));
    }

    // Live metrics plane: the registry already carries the per-collective latency
    // histograms this job will record; keep the listener alive until exit.
    let _metrics_server = opts.metrics.as_deref().map(|addr| {
        xtrapulp_obs::MetricsServer::bind(addr).unwrap_or_else(|e| {
            eprintln!("failed to bind metrics endpoint {addr}: {e}");
            std::process::exit(EXIT_USAGE);
        })
    });
    if opts.trace.is_some() {
        xtrapulp_obs::set_enabled(true);
    }

    let config = graph_config(opts);
    let csr = config.generate().to_csr();
    let params = PartitionParams {
        num_parts: opts.parts.unwrap_or(nranks),
        ..Default::default()
    };
    // Retry loop: a transport-faulted job is retried from scratch after the
    // runtime recovers its mesh (re-rendezvous, waiting for a respawned peer
    // to claim the dead rank). Jobs are deterministic, so the retried run's
    // part vector is identical to what the faulted run would have produced.
    let mut recoveries = 0u32;
    let mut report = loop {
        match session.partition(&csr, &params) {
            Ok(report) => break report,
            Err(xtrapulp::PartitionError::Comm(xtrapulp_comm::CommError::Stalled {
                collective,
                rank: stalled_rank,
                frame,
                waited_ms,
            })) => {
                // Watchdog trip: typed, machine-readable, names the wedged
                // collective. The flight recorder already dumped a local
                // post-mortem; if asked, contribute to the merged one too.
                println!(
                    "{{\"error\":\"stalled\",\"collective\":\"{collective}\",\"rank\":{stalled_rank},\"frame\":{frame},\"waited_ms\":{waited_ms}}}"
                );
                if let Some(path) = &opts.postmortem {
                    export_postmortem(&mut session, rank, path);
                }
                return EXIT_STALLED;
            }
            Err(xtrapulp::PartitionError::Comm(xtrapulp_comm::CommError::Transport(e))) => {
                if recoveries >= opts.max_recoveries {
                    if let Some(path) = &opts.postmortem {
                        export_postmortem(&mut session, rank, path);
                    }
                    return report_transport_error(&e);
                }
                recoveries += 1;
                eprintln!(
                    "rank {rank}: job faulted ({e}); recovering mesh \
                     (attempt {recoveries}/{})",
                    opts.max_recoveries
                );
                match session.recover() {
                    Ok(()) => eprintln!("rank {rank}: mesh recovered, retrying job"),
                    Err(xtrapulp::PartitionError::Comm(xtrapulp_comm::CommError::Transport(
                        re,
                    ))) => {
                        eprintln!("rank {rank}: recovery failed");
                        return report_transport_error(&re);
                    }
                    Err(re) => {
                        eprintln!("rank {rank}: recovery failed: {re}");
                        return EXIT_TRANSPORT;
                    }
                }
            }
            Err(e) => {
                eprintln!("partition failed: {e}");
                return 1;
            }
        }
    };

    // Collective: every worker contributes its buffers; the process hosting rank 0
    // writes the merged, clock-aligned file.
    let mut trace_written = false;
    if let Some(path) = &opts.trace {
        match session.export_trace(path) {
            Ok(wrote) => {
                trace_written = wrote;
                if wrote {
                    report.trace_path = Some(path.display().to_string());
                }
            }
            Err(xtrapulp::PartitionError::Comm(xtrapulp_comm::CommError::Transport(e))) => {
                return report_transport_error(&e);
            }
            Err(e) => {
                eprintln!("trace export failed: {e}");
                return 1;
            }
        }
    }

    if let Some(path) = &opts.out {
        let mut body = String::with_capacity(report.parts.len() * 3);
        for p in &report.parts {
            body.push_str(&p.to_string());
            body.push('\n');
        }
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("failed to write {}: {e}", path.display());
            return 1;
        }
    }
    let summary = format!(
        "{{\"rank\":{},\"nranks\":{},\"vertices\":{},\"edges\":{},\"edge_cut\":{},\"wire_bytes_sent\":{},\"frames_sent\":{},\"recoveries\":{},\"trace_written\":{},\"seconds\":{:.3}}}",
        rank,
        nranks,
        report.num_vertices,
        report.num_edges,
        report.quality.edge_cut,
        report.comm.wire_bytes_sent,
        report.comm.frames_sent,
        recoveries,
        trace_written,
        started.elapsed().as_secs_f64(),
    );
    println!("{summary}");
    0
}

/// Post-failure flight-recorder gather. Collective: every rank of a stall
/// drill runs this from its own failure path, so the `export_flight`
/// rendezvous always completes. The watchdog is disarmed first (the gather
/// itself must not trip) and the mesh recovered (the abandoned collective
/// left stale in-flight frames that `recover` flushes).
fn export_postmortem(session: &mut Session, rank: usize, path: &std::path::Path) {
    session.set_watchdog_deadline(None);
    if let Err(e) = session.recover() {
        eprintln!("rank {rank}: post-stall mesh recovery failed: {e}");
        return;
    }
    match session.export_flight(path, "stall") {
        Ok(true) => eprintln!("rank {rank}: wrote merged post-mortem {}", path.display()),
        Ok(false) => {}
        Err(e) => eprintln!("rank {rank}: post-mortem export failed: {e}"),
    }
}

fn report_transport_error(e: &xtrapulp_comm::TransportError) -> i32 {
    // Machine-readable: the spawner (and CI) greps the kind.
    println!(
        "{{\"error\":\"transport\",\"kind\":\"{}\",\"detail\":\"{}\"}}",
        e.kind(),
        e.to_string().replace('"', "'"),
    );
    EXIT_TRANSPORT
}

// ----------------------------------------------------------------------------------
// Spawn mode: fork local workers, wait, verify.
// ----------------------------------------------------------------------------------

fn pick_free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .and_then(|l| l.local_addr())
        .map(|a| a.port())
        .expect("could not probe for a free port")
}

fn run_spawner(opts: &Options, workers: usize) -> i32 {
    if workers == 0 {
        eprintln!("--spawn needs at least one worker");
        return EXIT_USAGE;
    }
    if let Some(k) = opts.kill_rank {
        if k >= workers {
            eprintln!("--kill-rank {k} out of range for {workers} workers");
            return EXIT_USAGE;
        }
    }
    // Recovery drill: a nonzero victim dies mid-job at a transport frame count,
    // the spawner respawns it, survivors re-rendezvous and retry. Rank 0 hosts
    // the rendezvous listener, so it cannot be the victim.
    let respawn_victim = if opts.respawn {
        if workers < 2 {
            eprintln!("--respawn needs at least two workers");
            return EXIT_USAGE;
        }
        let victim = opts.kill_rank.unwrap_or(workers - 1);
        if victim == 0 {
            eprintln!("--respawn cannot kill rank 0 (it hosts the rendezvous listener)");
            return EXIT_USAGE;
        }
        Some(victim)
    } else {
        None
    };
    let exe = std::env::current_exe().expect("own executable path");
    let coordinator = format!("127.0.0.1:{}", pick_free_port());
    let dir = std::env::temp_dir().join(format!("xtrapulp-mp-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("failed to create {}: {e}", dir.display());
        return 1;
    }
    let drill = opts.kill_rank.is_some() && respawn_victim.is_none();
    // Stall drill: one rank gets delay-injected transport, every rank arms the
    // watchdog, and the merged post-mortem is validated after the job fails.
    let stall_drill = opts.stall_ms > 0;
    let stall_victim = opts.stall_rank.unwrap_or(workers - 1);
    let watchdog_ms = opts.watchdog_ms.unwrap_or(500);
    let postmortem = opts
        .postmortem
        .clone()
        .unwrap_or_else(|| dir.join("postmortem.json"));
    if stall_drill {
        if drill || respawn_victim.is_some() {
            eprintln!("--stall-ms cannot be combined with the kill/respawn drills");
            return EXIT_USAGE;
        }
        if stall_victim >= workers {
            eprintln!("--stall-rank {stall_victim} out of range for {workers} workers");
            return EXIT_USAGE;
        }
        if opts.stall_ms <= watchdog_ms {
            eprintln!(
                "--stall-ms ({}) must exceed the watchdog deadline ({watchdog_ms}ms) to trip it",
                opts.stall_ms
            );
            return EXIT_USAGE;
        }
    }
    // The drills must not wait out the full production receive timeout.
    let recv_timeout_ms = if drill || respawn_victim.is_some() {
        opts.recv_timeout_ms.min(15_000)
    } else if stall_drill {
        opts.recv_timeout_ms.min(10_000)
    } else {
        opts.recv_timeout_ms
    };

    let spawn_worker = |rank: usize, kill_at_frame: Option<u64>| -> std::io::Result<Child> {
        let out = dir.join(format!("parts-{rank}.txt"));
        let mut cmd = Command::new(&exe);
        cmd.arg("--rank")
            .arg(rank.to_string())
            .arg("--nranks")
            .arg(workers.to_string())
            .arg("--coordinator")
            .arg(&coordinator)
            .arg("--out")
            .arg(&out)
            .arg("--kind")
            .arg(&opts.kind)
            .arg("--scale")
            .arg(opts.scale.to_string())
            .arg("--edge-factor")
            .arg(opts.edge_factor.to_string())
            .arg("--seed")
            .arg(opts.seed.to_string())
            .arg("--parts")
            .arg(opts.parts.unwrap_or(workers).to_string())
            .arg("--recv-timeout-ms")
            .arg(recv_timeout_ms.to_string());
        if let Some(trace) = &opts.trace {
            cmd.arg("--trace").arg(trace);
        }
        if let (Some(metrics), 0) = (&opts.metrics, rank) {
            // One listener per job: rank 0's process hosts the metrics plane.
            cmd.arg("--metrics").arg(metrics);
        }
        if respawn_victim.is_some() {
            // Every worker may need one mesh recovery when the victim dies.
            cmd.arg("--max-recoveries").arg("1");
        }
        if let Some(frame) = kill_at_frame {
            cmd.arg("--kill-at-frame").arg(frame.to_string());
        }
        if drill && opts.kill_rank == Some(rank) {
            cmd.arg("--die-after-handshake");
        }
        if stall_drill {
            // Every rank arms the watchdog and contributes to the merged
            // post-mortem; only the victim gets the delay-injected transport.
            cmd.arg("--watchdog-ms").arg(watchdog_ms.to_string());
            cmd.arg("--postmortem").arg(&postmortem);
            if rank == stall_victim {
                cmd.arg("--stall-rank").arg(rank.to_string());
                cmd.arg("--stall-ms").arg(opts.stall_ms.to_string());
            }
        }
        cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
        cmd.spawn()
    };

    let started = Instant::now();
    let kill_frame = opts.kill_at_frame.unwrap_or(8);
    let mut children: Vec<Child> = Vec::with_capacity(workers);
    for rank in 0..workers {
        let kill = (respawn_victim == Some(rank)).then_some(kill_frame);
        match spawn_worker(rank, kill) {
            Ok(child) => children.push(child),
            Err(e) => {
                eprintln!("failed to spawn worker {rank}: {e}");
                for mut c in children {
                    let _ = c.kill();
                }
                return 1;
            }
        }
    }

    // Wait for every worker, with a hard deadline so a hang is a test failure,
    // not a stuck pipeline. In the recovery drill, a victim exiting with the
    // deliberate-death code is reaped and respawned (once) instead of recorded.
    let deadline = started + Duration::from_millis(recv_timeout_ms.max(30_000) * 4);
    let mut exits: Vec<Option<i32>> = vec![None; workers];
    let mut respawned = false;
    loop {
        let mut pending = false;
        for (rank, child) in children.iter_mut().enumerate() {
            if exits[rank].is_some() {
                continue;
            }
            match child.try_wait() {
                Ok(Some(status)) => exits[rank] = Some(status.code().unwrap_or(-1)),
                Ok(None) => pending = true,
                Err(e) => {
                    eprintln!("wait on worker {rank} failed: {e}");
                    exits[rank] = Some(-1);
                }
            }
        }
        if let Some(victim) = respawn_victim {
            if !respawned && exits[victim] == Some(EXIT_DELIBERATE_DEATH) {
                eprintln!(
                    "spawner: rank {victim} died deliberately at frame {kill_frame}; respawning"
                );
                match spawn_worker(victim, None) {
                    Ok(child) => {
                        children[victim] = child;
                        exits[victim] = None;
                        respawned = true;
                        pending = true;
                    }
                    Err(e) => {
                        eprintln!("failed to respawn worker {victim}: {e}");
                        for child in children.iter_mut() {
                            let _ = child.kill();
                        }
                        return 1;
                    }
                }
            }
        }
        if !pending {
            break;
        }
        if Instant::now() >= deadline {
            eprintln!(
                "TIMEOUT: workers still running after {:.1}s — killing",
                started.elapsed().as_secs_f64()
            );
            for child in children.iter_mut() {
                let _ = child.kill();
            }
            return EXIT_VERIFY;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let elapsed = started.elapsed();

    // Collect captured output for reporting / drill validation.
    let mut outputs: Vec<(String, String)> = Vec::with_capacity(workers);
    for child in &mut children {
        let mut stdout = String::new();
        let mut stderr = String::new();
        if let Some(mut s) = child.stdout.take() {
            use std::io::Read;
            let _ = s.read_to_string(&mut stdout);
        }
        if let Some(mut s) = child.stderr.take() {
            use std::io::Read;
            let _ = s.read_to_string(&mut stderr);
        }
        outputs.push((stdout, stderr));
    }

    let result = if stall_drill {
        validate_stall(
            workers,
            stall_victim,
            &postmortem,
            &exits,
            &outputs,
            elapsed,
        )
    } else if drill {
        validate_drill(opts, workers, &exits, &outputs, elapsed)
    } else if let Some(victim) = respawn_victim {
        validate_respawn(
            opts, workers, victim, respawned, &exits, &outputs, &dir, elapsed,
        )
    } else {
        validate_success(opts, workers, &exits, &outputs, &dir, elapsed)
    };
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Happy path: every worker exited 0, all part files identical, and (unless
/// `--no-verify`) identical to an in-process run at the same rank count.
fn validate_success(
    opts: &Options,
    workers: usize,
    exits: &[Option<i32>],
    outputs: &[(String, String)],
    dir: &Path,
    elapsed: Duration,
) -> i32 {
    for (rank, code) in exits.iter().enumerate() {
        if *code != Some(0) {
            eprintln!(
                "worker {rank} exited with {:?}\n--- stdout ---\n{}--- stderr ---\n{}",
                code, outputs[rank].0, outputs[rank].1
            );
            return EXIT_VERIFY;
        }
    }
    let mut parts: Vec<String> = Vec::with_capacity(workers);
    for rank in 0..workers {
        match std::fs::read_to_string(dir.join(format!("parts-{rank}.txt"))) {
            Ok(body) => parts.push(body),
            Err(e) => {
                eprintln!("worker {rank} wrote no part vector: {e}");
                return EXIT_VERIFY;
            }
        }
    }
    for rank in 1..workers {
        if parts[rank] != parts[0] {
            eprintln!("part vectors differ between rank 0 and rank {rank}");
            return EXIT_VERIFY;
        }
    }
    let mut inproc_match = true;
    if !opts.no_verify {
        let reference = inproc_reference_parts(opts, workers);
        inproc_match = reference == parts[0];
        if !inproc_match {
            eprintln!("multi-process part vector differs from the in-process backend");
            return EXIT_VERIFY;
        }
    }
    let mut trace_ranks = 0usize;
    if let Some(trace) = &opts.trace {
        match validate_merged_trace(trace, workers) {
            Ok(ranks) => trace_ranks = ranks,
            Err(detail) => {
                eprintln!("trace validation failed for {}: {detail}", trace.display());
                return EXIT_VERIFY;
            }
        }
    }
    let lines = parts[0].lines().count();
    let summary = format!(
        "{{\"spawned\":{workers},\"vertices\":{lines},\"bit_identical_across_processes\":true,\
         \"matches_inproc\":{inproc_match},\"trace_ranks\":{trace_ranks},\"seconds\":{:.3}}}",
        elapsed.as_secs_f64()
    );
    println!("{summary}");
    if !opts.json {
        for (rank, (stdout, _)) in outputs.iter().enumerate() {
            print!("worker {rank}: {stdout}");
        }
        let _ = std::io::stdout().flush();
    }
    0
}

/// Recovery drill: the victim must actually have died and been respawned, every
/// (final) worker must exit 0, at least one survivor must report a mesh
/// recovery, and the retried job's part vectors must pass the full success
/// validation — bit-identical across processes and against the in-process
/// backend.
#[allow(clippy::too_many_arguments)]
fn validate_respawn(
    opts: &Options,
    workers: usize,
    victim: usize,
    respawned: bool,
    exits: &[Option<i32>],
    outputs: &[(String, String)],
    dir: &Path,
    elapsed: Duration,
) -> i32 {
    if !respawned {
        eprintln!(
            "respawn drill: rank {victim} never died (exited {:?}) — raise --kill-at-frame?",
            exits[victim]
        );
        return EXIT_VERIFY;
    }
    let survivors_recovered = (0..workers)
        .filter(|&r| r != victim)
        .any(|r| outputs[r].0.contains("\"recoveries\":1"));
    if !survivors_recovered {
        eprintln!("respawn drill: no survivor reported a mesh recovery");
        for (rank, (stdout, stderr)) in outputs.iter().enumerate() {
            eprintln!("--- worker {rank} stdout ---\n{stdout}--- stderr ---\n{stderr}");
        }
        return EXIT_VERIFY;
    }
    let code = validate_success(opts, workers, exits, outputs, dir, elapsed);
    if code == 0 {
        println!(
            "{{\"drill\":\"respawn\",\"killed\":{victim},\"respawned\":true,\
             \"survivors_recovered\":true,\"seconds\":{:.3}}}",
            elapsed.as_secs_f64()
        );
    }
    code
}

/// Failure drill: the killed rank must exit 17 and every survivor must fail
/// typed (exit 3 with a peer-death or timeout kind), not hang.
fn validate_drill(
    _opts: &Options,
    workers: usize,
    exits: &[Option<i32>],
    outputs: &[(String, String)],
    elapsed: Duration,
) -> i32 {
    let killed = _opts.kill_rank.expect("drill has a kill rank");
    if exits[killed] != Some(EXIT_DELIBERATE_DEATH) {
        eprintln!(
            "killed rank {killed} exited {:?}, expected {EXIT_DELIBERATE_DEATH}",
            exits[killed]
        );
        return EXIT_VERIFY;
    }
    let mut peer_death_seen = false;
    for rank in (0..workers).filter(|&r| r != killed) {
        if exits[rank] != Some(EXIT_TRANSPORT) {
            eprintln!(
                "survivor {rank} exited {:?}, expected typed transport failure ({EXIT_TRANSPORT})\n\
                 --- stdout ---\n{}--- stderr ---\n{}",
                exits[rank], outputs[rank].0, outputs[rank].1
            );
            return EXIT_VERIFY;
        }
        let stdout = &outputs[rank].0;
        if stdout.contains("\"kind\":\"peer-death\"") {
            peer_death_seen = true;
        } else if !stdout.contains("\"kind\":\"timeout\"")
            && !stdout.contains("\"kind\":\"short-read\"")
        {
            eprintln!("survivor {rank} reported an unexpected failure: {stdout}");
            return EXIT_VERIFY;
        }
    }
    if workers > 1 && !peer_death_seen {
        eprintln!("no survivor observed the peer death directly");
        return EXIT_VERIFY;
    }
    println!(
        "{{\"drill\":\"kill-rank\",\"killed\":{killed},\"survivors_failed_typed\":true,\
         \"seconds\":{:.3}}}",
        elapsed.as_secs_f64()
    );
    0
}

/// Stall drill: the delay-injected rank must trip the watchdog and exit with
/// the typed stall code and a machine-readable line naming the wedged
/// collective and frame. Peers must fail typed too — stalled (their receive
/// timeout upgraded by the watchdog) or transport (the victim's panic closed
/// the connection) — never hang. The merged post-mortem all ranks cooperated
/// on must exist, record the stall reason and the watchdog trip for the same
/// collective the victim reported, and carry events from several ranks.
fn validate_stall(
    workers: usize,
    victim: usize,
    postmortem: &Path,
    exits: &[Option<i32>],
    outputs: &[(String, String)],
    elapsed: Duration,
) -> i32 {
    if exits[victim] != Some(EXIT_STALLED) {
        eprintln!(
            "stalled rank {victim} exited {:?}, expected typed stall ({EXIT_STALLED})\n\
             --- stdout ---\n{}--- stderr ---\n{}",
            exits[victim], outputs[victim].0, outputs[victim].1
        );
        return EXIT_VERIFY;
    }
    let victim_stdout = &outputs[victim].0;
    if !victim_stdout.contains("\"error\":\"stalled\"")
        || !victim_stdout.contains("\"collective\":\"")
        || !victim_stdout.contains("\"frame\":")
    {
        eprintln!("stalled rank {victim} did not report a typed stall: {victim_stdout}");
        return EXIT_VERIFY;
    }
    let collective = victim_stdout
        .split("\"collective\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .unwrap_or("");
    for rank in (0..workers).filter(|&r| r != victim) {
        if exits[rank] != Some(EXIT_STALLED) && exits[rank] != Some(EXIT_TRANSPORT) {
            eprintln!(
                "rank {rank} exited {:?}, expected typed stall ({EXIT_STALLED}) or \
                 transport failure ({EXIT_TRANSPORT})\n\
                 --- stdout ---\n{}--- stderr ---\n{}",
                exits[rank], outputs[rank].0, outputs[rank].1
            );
            return EXIT_VERIFY;
        }
    }
    let body = match std::fs::read_to_string(postmortem) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "merged post-mortem {} unreadable: {e}",
                postmortem.display()
            );
            return EXIT_VERIFY;
        }
    };
    if !body.contains("\"reason\":\"stall\"") {
        eprintln!("post-mortem does not record the stall reason");
        return EXIT_VERIFY;
    }
    if !body.contains(&format!("\"kind\":\"watchdog\",\"name\":\"{collective}\"")) {
        eprintln!("post-mortem has no watchdog trip for collective '{collective}'");
        return EXIT_VERIFY;
    }
    let ranks_seen = (0..workers)
        .filter(|r| body.contains(&format!("\"rank\":{r},")))
        .count();
    if ranks_seen < 2 {
        eprintln!("post-mortem carries events from {ranks_seen} rank(s), expected a merged dump");
        return EXIT_VERIFY;
    }
    println!(
        "{{\"drill\":\"stall\",\"stalled_rank\":{victim},\"collective\":\"{collective}\",\
         \"postmortem_ranks\":{ranks_seen},\"seconds\":{:.3}}}",
        elapsed.as_secs_f64()
    );
    0
}

/// Check the merged chrome://tracing file all workers cooperated on: it must be
/// one JSON document with a `traceEvents` array carrying span events from every
/// rank (`"pid":R` for each rank in `0..workers`). Returns the distinct rank
/// count seen.
fn validate_merged_trace(path: &Path, workers: usize) -> Result<usize, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    if !body.contains("\"traceEvents\":[") {
        return Err("missing traceEvents array".to_string());
    }
    if !body.contains("\"ph\":\"B\"") || !body.contains("\"ph\":\"E\"") {
        return Err("no complete spans in the trace".to_string());
    }
    let mut ranks = 0usize;
    for rank in 0..workers {
        if body.contains(&format!("\"pid\":{rank},")) {
            ranks += 1;
        } else {
            return Err(format!("no events from rank {rank}"));
        }
    }
    Ok(ranks)
}

/// Same job on the in-process backend, formatted like a worker's part file.
fn inproc_reference_parts(opts: &Options, nranks: usize) -> String {
    let csr = graph_config(opts).generate().to_csr();
    let params = PartitionParams {
        num_parts: opts.parts.unwrap_or(nranks),
        ..Default::default()
    };
    let mut session = Session::new(nranks).expect("in-process session");
    let report = session
        .partition(&csr, &params)
        .expect("in-process reference partition");
    let mut body = String::with_capacity(report.parts.len() * 3);
    for p in &report.parts {
        body.push_str(&p.to_string());
        body.push('\n');
    }
    body
}
