//! Concurrent-serving benchmark: reader throughput under churn, and ingest-to-publish
//! latency.
//!
//! Two experiments over a `ServingSession` (the `crates/serve` pipeline wrapping a
//! warm-starting `DynamicSession` on 4 ranks):
//!
//! * **readers-under-churn** — N reader threads hammer `EpochStore::current()` +
//!   `part_of` queries while one producer continuously ingests churn batches; the row
//!   reports sustained reads/s alongside how many epochs the worker published in the
//!   same window. The point of the MVCC design is that the left column does not
//!   collapse when the right column is busy.
//! * **ingest-to-publish** — sequential batches, each waited to its published epoch;
//!   the row reports the mean end-to-end latency from a batch entering the queue to
//!   its epoch serving, plus the worker's own publish (apply+repartition) time.
//! * **saturating-producer** — one producer submits batches back-to-back (blocking on
//!   backpressure) while the main thread samples the pipeline's latency histograms per
//!   epoch window; each window's row reports the ingest-to-publish p50/p99 over
//!   exactly the batches published in that window
//!   ([`HistogramSnapshot::delta_since`](xtrapulp_api::HistogramSnapshot) of
//!   consecutive snapshots), which is what a saturated pipeline's tail actually
//!   looks like — a single mean would hide it.
//!
//! `--json` emits one line per row with the full [`ServeStats`] object embedded.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use xtrapulp::PartitionParams;
use xtrapulp_api::{BatchPolicy, Method, PartitionJob, ServeConfig, ServingSession, UpdateBatch};
use xtrapulp_bench::{fmt, json_flag, print_table, scaled};
use xtrapulp_gen::{generate_stream, GraphConfig, GraphKind, StreamKind, UpdateStreamConfig};
use xtrapulp_graph::distribution::splitmix64;

const NRANKS: usize = 4;
const NUM_PARTS: usize = 16;
const RUN_MS: u64 = 300;

fn job() -> PartitionJob {
    PartitionJob::new(Method::XtraPulp).with_params(PartitionParams {
        num_parts: NUM_PARTS,
        seed: 29,
        ..Default::default()
    })
}

fn emit_json(series: &str, fields: &[(&str, String)], stats: &xtrapulp_api::ServeStats) {
    if json_flag() {
        let mut line = String::from("{\"experiment\":\"bench_serve\",\"series\":");
        serde::write_json_str(series, &mut line);
        for (key, value) in fields {
            line.push(',');
            serde::write_json_str(key, &mut line);
            line.push(':');
            line.push_str(value);
        }
        line.push_str(",\"stats\":");
        line.push_str(&stats.to_json());
        line.push('}');
        println!("{line}");
    }
}

/// N readers querying the epoch store while a producer churns the graph.
fn readers_under_churn(
    rows: &mut Vec<Vec<String>>,
    base: &xtrapulp_gen::EdgeList,
    num_readers: usize,
    ops_per_batch: usize,
) {
    let serving = ServingSession::spawn(NRANKS, base.to_csr(), job()).expect("valid job");
    let store = serving.store();
    let queue = serving.queue();
    let stop = Arc::new(AtomicBool::new(false));
    let total_reads = Arc::new(AtomicU64::new(0));

    let readers: Vec<_> = (0..num_readers)
        .map(|r| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let total_reads = Arc::clone(&total_reads);
            std::thread::spawn(move || {
                let mut x = r as u64;
                let mut checksum = 0i64;
                let mut reads = 0u64;
                // ordering: stop-flag poll; an extra read batch is harmless
                while !stop.load(Ordering::Relaxed) {
                    let snapshot = store.current();
                    let n = snapshot.num_vertices() as u64;
                    for _ in 0..64 {
                        x = splitmix64(x);
                        checksum += snapshot.part_of(x % n).unwrap_or(0) as i64;
                    }
                    reads += 64;
                }
                total_reads.fetch_add(reads, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
                checksum
            })
        })
        .collect();

    // Producer: churn batches, pre-generated so the run window measures serving, not
    // stream generation.
    let stream = generate_stream(
        base,
        &UpdateStreamConfig {
            kind: StreamKind::RandomChurn {
                ops_per_batch,
                delete_fraction: 0.5,
            },
            num_batches: 64,
            seed: 17,
        },
    );
    let producer = {
        let stop = Arc::clone(&stop);
        let queue = Arc::clone(&queue);
        std::thread::spawn(move || {
            for i in 0..stream.batches.len() {
                // ordering: stop-flag poll; an extra produce iteration is harmless
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                if queue
                    .submit(UpdateBatch::from_ops(stream.batch_ops(i)))
                    .is_err()
                {
                    break;
                }
            }
        })
    };

    let window = Instant::now();
    std::thread::sleep(Duration::from_millis(RUN_MS));
    stop.store(true, Ordering::Relaxed); // ordering: stop flag; worker threads poll it, join() is the real barrier
    for reader in readers {
        reader.join().expect("reader thread");
    }
    let elapsed = window.elapsed().as_secs_f64();
    producer.join().expect("producer thread");
    let (_, stats) = serving.shutdown().expect("serve worker exits cleanly");

    let reads_per_sec = total_reads.load(Ordering::Relaxed) as f64 / elapsed; // ordering: read after join(); all bumps happened-before
    let series = "readers-under-churn";
    emit_json(
        series,
        &[
            ("readers", num_readers.to_string()),
            ("reads_per_sec", format!("{reads_per_sec:.0}")),
        ],
        &stats,
    );
    rows.push(vec![
        series.to_string(),
        num_readers.to_string(),
        format!("{:.2}M", reads_per_sec / 1e6),
        format!("{}", stats.epochs_published),
        format!("{}/{}", stats.warm_epochs, stats.cold_epochs),
        fmt(stats.publish_seconds_p50),
        fmt(stats.ingest_to_publish_seconds_p50),
    ]);
}

/// Sequential batches, each waited to its published epoch: the end-to-end latency.
fn ingest_to_publish(
    rows: &mut Vec<Vec<String>>,
    base: &xtrapulp_gen::EdgeList,
    ops_per_batch: usize,
) {
    let config = ServeConfig {
        // One batch per publish, so each wait observes exactly its own epoch.
        policy: BatchPolicy {
            max_group_ops: 65_536,
            max_group_batches: 1,
        },
        ..ServeConfig::default()
    };
    let serving =
        ServingSession::spawn_with_config(NRANKS, base.to_csr(), job(), config).expect("valid job");
    let store = serving.store();
    let stream = generate_stream(
        base,
        &UpdateStreamConfig {
            kind: StreamKind::RandomChurn {
                ops_per_batch,
                delete_fraction: 0.5,
            },
            num_batches: 4,
            seed: 31,
        },
    );
    for i in 0..stream.batches.len() {
        serving
            .ingest(UpdateBatch::from_ops(stream.batch_ops(i)))
            .expect("queue open");
        store
            .wait_for_epoch(i as u64 + 1, Duration::from_secs(600))
            .expect("epoch publishes");
    }
    let (_, stats) = serving.shutdown().expect("serve worker exits cleanly");
    let series = "ingest-to-publish";
    emit_json(
        series,
        &[
            ("ops_per_batch", ops_per_batch.to_string()),
            (
                "p50_latency_seconds",
                fmt(stats.ingest_to_publish_seconds_p50),
            ),
        ],
        &stats,
    );
    rows.push(vec![
        series.to_string(),
        format!("ops={ops_per_batch}"),
        "-".to_string(),
        format!("{}", stats.epochs_published),
        format!("{}/{}", stats.warm_epochs, stats.cold_epochs),
        fmt(stats.publish_seconds_p50),
        fmt(stats.ingest_to_publish_seconds_p50),
    ]);
}

/// One producer saturates the queue while the main thread slices the pipeline's
/// ingest-to-publish histogram into per-epoch-window percentiles.
fn saturating_producer(
    rows: &mut Vec<Vec<String>>,
    base: &xtrapulp_gen::EdgeList,
    ops_per_batch: usize,
    epochs_per_window: u64,
) {
    let serving = ServingSession::spawn(NRANKS, base.to_csr(), job()).expect("valid job");
    let store = serving.store();
    let queue = serving.queue();
    let stop = Arc::new(AtomicBool::new(false));

    let stream = generate_stream(
        base,
        &UpdateStreamConfig {
            kind: StreamKind::RandomChurn {
                ops_per_batch,
                delete_fraction: 0.5,
            },
            num_batches: 64,
            seed: 23,
        },
    );
    let producer = {
        let stop = Arc::clone(&stop);
        let queue = Arc::clone(&queue);
        std::thread::spawn(move || {
            // Cycle the pre-generated batches back-to-back: `submit` blocks on
            // backpressure, so the producer runs exactly as fast as the pipeline
            // absorbs work — the saturation point.
            let mut submitted = 0u64;
            'outer: loop {
                for i in 0..stream.batches.len() {
                    // ordering: stop-flag poll; an extra produce iteration is harmless
                    if stop.load(Ordering::Relaxed) {
                        break 'outer;
                    }
                    if queue
                        .submit(UpdateBatch::from_ops(stream.batch_ops(i)))
                        .is_err()
                    {
                        break 'outer;
                    }
                    submitted += 1;
                }
            }
            submitted
        })
    };

    let deadline = Instant::now() + Duration::from_millis(RUN_MS * 3);
    let mut window_floor = serving.latencies();
    let mut next_epoch_mark = epochs_per_window;
    let mut window = 0u64;
    let mut overall_p50 = 0.0f64;
    let mut overall_p99 = 0.0f64;
    while Instant::now() < deadline {
        if store
            .wait_for_epoch(next_epoch_mark, Duration::from_millis(50))
            .is_none()
        {
            continue;
        }
        let now = serving.latencies();
        let slice = now
            .ingest_to_publish_nanos
            .delta_since(&window_floor.ingest_to_publish_nanos);
        let publish_slice = now.publish_nanos.delta_since(&window_floor.publish_nanos);
        if slice.count() > 0 {
            let p50 = slice.p50() as f64 * 1e-9;
            let p99 = slice.p99() as f64 * 1e-9;
            overall_p50 = p50;
            overall_p99 = p99;
            emit_json(
                "saturating-producer",
                &[
                    ("window", window.to_string()),
                    ("epoch", store.epoch().to_string()),
                    ("batches", slice.count().to_string()),
                    ("i2p_p50_seconds", fmt(p50)),
                    ("i2p_p99_seconds", fmt(p99)),
                    (
                        "publish_p50_seconds",
                        fmt(publish_slice.p50() as f64 * 1e-9),
                    ),
                    (
                        "publish_p99_seconds",
                        fmt(publish_slice.p99() as f64 * 1e-9),
                    ),
                ],
                &serving.stats(),
            );
            window += 1;
        }
        window_floor = now;
        next_epoch_mark = store.epoch() + epochs_per_window;
    }
    stop.store(true, Ordering::Relaxed); // ordering: stop flag; worker threads poll it, join() is the real barrier
                                         // Unblock a producer parked on a full queue by draining the pipeline normally.
    let submitted = producer.join().expect("producer thread");
    let (_, stats) = serving.shutdown().expect("serve worker exits cleanly");

    let series = "saturating-producer";
    emit_json(
        series,
        &[
            ("window", "\"final\"".to_string()),
            ("batches_submitted", submitted.to_string()),
            ("i2p_p50_seconds", fmt(stats.ingest_to_publish_seconds_p50)),
            ("i2p_p99_seconds", fmt(stats.ingest_to_publish_seconds_p99)),
        ],
        &stats,
    );
    rows.push(vec![
        series.to_string(),
        format!("{window} windows"),
        "-".to_string(),
        format!("{}", stats.epochs_published),
        format!("{}/{}", stats.warm_epochs, stats.cold_epochs),
        format!(
            "{} p50 / {} p99",
            fmt(stats.publish_seconds_p50),
            fmt(stats.publish_seconds_p99)
        ),
        format!("{} p50 / {} p99", fmt(overall_p50), fmt(overall_p99)),
    ]);
}

fn main() {
    let n = scaled(1 << 14);
    let base = GraphConfig::new(
        GraphKind::BarabasiAlbert {
            num_vertices: n,
            edges_per_vertex: 8,
        },
        77,
    )
    .generate();
    let m = base.to_csr().num_edges();
    let churn_ops = ((m as f64 * 0.005) as usize).max(2);

    let mut rows = Vec::new();
    for readers in [1usize, 4, 8] {
        readers_under_churn(&mut rows, &base, readers, churn_ops);
    }
    ingest_to_publish(&mut rows, &base, churn_ops);
    saturating_producer(&mut rows, &base, churn_ops, 4);

    print_table(
        "Concurrent serving — reader throughput under churn, ingest-to-publish latency",
        &[
            "series",
            "readers",
            "reads/s",
            "epochs",
            "warm/cold",
            "publish s",
            "ingest→publish s",
        ],
        &rows,
    );
}
