//! Table I: statistics (n, m, average/max degree, approximate diameter) of every proxy
//! graph standing in for the paper's evaluation corpus.

use xtrapulp_bench::{fmt, print_table};
use xtrapulp_gen::presets::all_presets;
use xtrapulp_graph::GraphStats;

fn main() {
    let mut rows = Vec::new();
    for preset in all_presets() {
        // The largest scaling presets are skipped at default scale to keep the run short.
        if preset.config.num_vertices() > (1 << 17) {
            continue;
        }
        let csr = preset.config.generate().to_csr();
        let stats = GraphStats::compute(&csr, 10, 1);
        rows.push(vec![
            preset.name.to_string(),
            format!("{:?}", preset.class),
            stats.num_vertices.to_string(),
            stats.num_edges.to_string(),
            fmt(stats.avg_degree),
            stats.max_degree.to_string(),
            stats.approx_diameter.to_string(),
        ]);
    }
    print_table(
        "Table I — proxy graph corpus statistics",
        &["graph", "class", "n", "m", "d_avg", "d_max", "~D"],
        &rows,
    );
}
