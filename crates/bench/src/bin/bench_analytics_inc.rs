//! Incremental vs from-scratch analytics across churn rates.
//!
//! For each churn rate, a Barabási–Albert serving graph is evolved through a random
//! churn stream. Two consumers ingest the identical epoch stream:
//!
//! * **incremental** — the default [`WarmPolicy`]: warm PageRank/WCC/coreness repair,
//!   cold fallback only beyond the churn threshold;
//! * **cold** — the same consumer with `max_churn_fraction = 0`, forcing a
//!   from-scratch recomputation every epoch (the pre-subsystem behaviour).
//!
//! Reported per rate: wall-clock and comm-bytes totals for both consumers, the
//! speedup, and the work counters (PageRank iterations / vertices scored, WCC
//! sweeps) that explain it. The 2-D SpMV layout rides along: each epoch is applied to
//! a [`Matrix2d`] once via [`Matrix2d::apply_delta`] and once by rebuilding from the
//! full edge list, timing both.
//!
//! `--json` switches to one JSON object per epoch plus one summary object per rate.
//! `XTRAPULP_SCALE` scales the graph size.

use std::time::Instant;

use xtrapulp_analytics::{AnalyticsConsumer, WarmPolicy};
use xtrapulp_bench::scaled;
use xtrapulp_gen::updates::{generate_stream, StreamKind, UpdateStreamConfig};
use xtrapulp_gen::{GraphConfig, GraphKind};
use xtrapulp_graph::{GlobalId, GraphDelta};
use xtrapulp_spmv::Matrix2d;

const NRANKS: usize = 4;
const EPOCHS: usize = 10;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let n = scaled(4_000);
    let el = GraphConfig::new(
        GraphKind::BarabasiAlbert {
            num_vertices: n,
            edges_per_vertex: 6,
        },
        29,
    )
    .generate();
    let csr0 = el.to_csr();
    let parts = xtrapulp::baselines::vertex_block_partition(n, NRANKS);
    let num_edges = csr0.num_edges();

    if !json {
        println!("# bench_analytics_inc: n={n} m={num_edges} ranks={NRANKS} epochs={EPOCHS}");
        println!(
            "{:>7} {:>6} | {:>10} {:>10} {:>7} | {:>12} {:>12} | {:>9} {:>9} | {:>10} {:>10}",
            "churn",
            "warm",
            "inc_s",
            "cold_s",
            "speedup",
            "inc_scored",
            "cold_scored",
            "inc_MB",
            "cold_MB",
            "patch2d_s",
            "build2d_s"
        );
    }

    // Churn rate = mutated edges per epoch as a fraction of the vertex count, so each
    // epoch touches roughly `2 * churn` of the vertices: the two smaller rates sit in
    // the warm regime, the largest trips the cold fallback.
    for churn in [0.002f64, 0.01, 0.05] {
        let ops_per_batch = ((n as f64 * churn) as usize).max(2);
        let stream = generate_stream(
            &el,
            &UpdateStreamConfig {
                kind: StreamKind::RandomChurn {
                    ops_per_batch,
                    delete_fraction: 0.4,
                },
                num_batches: EPOCHS,
                seed: 41,
            },
        );

        let mut incremental =
            AnalyticsConsumer::new(NRANKS, csr0.clone(), &parts, WarmPolicy::default());
        let mut cold = AnalyticsConsumer::new(
            NRANKS,
            csr0.clone(),
            &parts,
            WarmPolicy {
                max_churn_fraction: 0.0,
                ..WarmPolicy::default()
            },
        );

        // The 2-D SpMV layout, patched per epoch vs rebuilt per epoch, on a
        // persistent rank runtime (one local matrix block per rank).
        let mut spmv_runtime = xtrapulp_comm::Runtime::new(NRANKS);
        let mut matrices = {
            let edges = &el.edges;
            let parts = &parts;
            spmv_runtime.execute(|ctx| Matrix2d::build(ctx, n, edges, parts))
        };
        let mut edges: Vec<(GlobalId, GlobalId)> = el.edges.clone();

        let mut totals = Totals::default();
        let mut base_n = n;
        for (i, _) in stream.batches.iter().enumerate() {
            let delta = GraphDelta::from_ops(base_n, stream.batch_ops(i));
            base_n = delta.new_n();
            let epoch = (i + 1) as u64;

            let inc = incremental.ingest_epoch(epoch, std::slice::from_ref(&delta), &parts);
            let cold_report = cold.ingest_epoch(epoch, std::slice::from_ref(&delta), &parts);

            // SpMV layout maintenance: in-place patch vs full rebuild.
            apply_edges(&mut edges, &delta);
            let t = Instant::now();
            let rebuilt = {
                let edges = &edges;
                let parts = &parts;
                let new_n = delta.new_n();
                spmv_runtime.execute(|ctx| Matrix2d::build(ctx, new_n, edges, parts))
            };
            let build2d_seconds = t.elapsed().as_secs_f64();
            drop(rebuilt);
            let t = Instant::now();
            matrices = {
                let ms = &matrices;
                let delta = &delta;
                let parts = &parts;
                spmv_runtime.execute(|ctx| {
                    let mut m = ms[ctx.rank()].clone();
                    m.apply_delta(ctx, delta, parts);
                    m
                })
            };
            let patch2d_seconds = t.elapsed().as_secs_f64();

            totals.add(&inc, &cold_report, patch2d_seconds, build2d_seconds);
            if json {
                println!(
                    "{{\"churn\":{churn},\"epoch\":{epoch},\"incremental\":{},\"cold\":{},\
                     \"patch2d_seconds\":{patch2d_seconds},\"build2d_seconds\":{build2d_seconds}}}",
                    inc.to_json(),
                    cold_report.to_json()
                );
            }
        }

        let warm_epochs = totals.warm_epochs;
        if json {
            println!(
                "{{\"summary\":true,\"churn\":{churn},\"epochs\":{EPOCHS},\
                 \"warm_epochs\":{warm_epochs},\
                 \"inc_seconds\":{:.6},\"cold_seconds\":{:.6},\"speedup\":{:.3},\
                 \"inc_scored\":{},\"cold_scored\":{},\
                 \"inc_comm_bytes\":{},\"cold_comm_bytes\":{},\
                 \"patch2d_seconds\":{:.6},\"build2d_seconds\":{:.6}}}",
                totals.inc_seconds,
                totals.cold_seconds,
                totals.cold_seconds / totals.inc_seconds.max(1e-12),
                totals.inc_scored,
                totals.cold_scored,
                totals.inc_bytes,
                totals.cold_bytes,
                totals.patch2d_seconds,
                totals.build2d_seconds,
            );
        } else {
            println!(
                "{:>6.3} {:>5}/{EPOCHS} | {:>10.4} {:>10.4} {:>6.2}x | {:>12} {:>12} | {:>9.2} {:>9.2} | {:>10.4} {:>10.4}",
                churn,
                warm_epochs,
                totals.inc_seconds,
                totals.cold_seconds,
                totals.cold_seconds / totals.inc_seconds.max(1e-12),
                totals.inc_scored,
                totals.cold_scored,
                totals.inc_bytes as f64 / 1e6,
                totals.cold_bytes as f64 / 1e6,
                totals.patch2d_seconds,
                totals.build2d_seconds,
            );
        }
    }
}

#[derive(Default)]
struct Totals {
    warm_epochs: u64,
    inc_seconds: f64,
    cold_seconds: f64,
    inc_scored: u64,
    cold_scored: u64,
    inc_bytes: u64,
    cold_bytes: u64,
    patch2d_seconds: f64,
    build2d_seconds: f64,
}

impl Totals {
    fn add(
        &mut self,
        inc: &xtrapulp_analytics::EpochReport,
        cold: &xtrapulp_analytics::EpochReport,
        patch2d: f64,
        build2d: f64,
    ) {
        self.warm_epochs += inc.warm as u64;
        self.inc_seconds += inc.seconds;
        self.cold_seconds += cold.seconds;
        self.inc_scored += inc.pagerank_vertices_scored;
        self.cold_scored += cold.pagerank_vertices_scored;
        self.inc_bytes += inc.comm_bytes;
        self.cold_bytes += cold.comm_bytes;
        self.patch2d_seconds += patch2d;
        self.build2d_seconds += build2d;
    }
}

/// Mirror a delta onto the flat edge list the rebuild path consumes.
fn apply_edges(edges: &mut Vec<(GlobalId, GlobalId)>, delta: &GraphDelta) {
    edges.retain(|&(u, v)| !delta.is_deleted(u, v) && !delta.is_deleted(v, u));
    edges.extend(delta.insert_arcs().iter().filter(|&&(u, v)| u < v));
}
