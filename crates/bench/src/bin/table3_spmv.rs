//! Table III: time for 100 SpMV operations under 1-D and 2-D matrix distributions built
//! from Block / Random / MetisLike / XtraPuLP partitions, at several rank counts. The
//! placement partitions are produced through the method registry on one session.

use xtrapulp::PartitionParams;
use xtrapulp_api::{Method, Session};
use xtrapulp_bench::{fmt, print_table, proxy_graph, time_job};
use xtrapulp_comm::Runtime;
use xtrapulp_spmv::{spmv_1d_with_partition, spmv_2d, Matrix2d};

fn main() {
    let graphs = ["lj", "orkut", "wdc12-pay", "rmat_24", "nlpkkt240"];
    let rank_counts = [4usize, 8, 16];
    let iterations = 100;
    let strategies = [
        Method::VertexBlock,
        Method::Random,
        Method::MetisLike,
        Method::XtraPulp,
    ];
    let mut rows = Vec::new();
    for name in graphs {
        let csr = proxy_graph(name);
        let n = csr.num_vertices() as u64;
        let edges: Vec<(u64, u64)> = csr.edges().collect();
        for &nranks in &rank_counts {
            let params = PartitionParams {
                num_parts: nranks,
                seed: 19,
                ..Default::default()
            };
            let mut session = Session::new(nranks).expect("valid rank count");
            let mut row = vec![name.to_string(), nranks.to_string()];
            let mut rand_1d = 0.0;
            let mut xtra_2d = 0.0;
            for method in strategies {
                let (_, report) = time_job(&mut session, method, &csr, &params);
                let parts = report.parts;
                let (t1, t2) = {
                    let out = Runtime::run(nranks, |ctx| {
                        let r1 = spmv_1d_with_partition(ctx, n, &edges, &parts, iterations);
                        let m = Matrix2d::build(ctx, n, &edges, &parts);
                        let r2 = spmv_2d(ctx, &m, iterations);
                        (r1.seconds, r2.seconds)
                    });
                    out[0]
                };
                if method == Method::Random {
                    rand_1d = t1;
                }
                if method == Method::XtraPulp {
                    xtra_2d = t2;
                }
                row.push(format!("{}/{}", fmt(t1), fmt(t2)));
            }
            row.push(fmt(rand_1d / xtra_2d.max(1e-9)));
            rows.push(row);
        }
    }
    print_table(
        &format!("Table III — time (s) for {iterations} SpMVs, formatted 1D/2D per strategy"),
        &[
            "graph",
            "ranks",
            "Block 1D/2D",
            "Rand 1D/2D",
            "PM 1D/2D",
            "XtraPuLP 1D/2D",
            "2D-XtraPuLP speedup over 1D-Rand",
        ],
        &rows,
    );
}
