//! Fig. 1: strong scaling — partitioning time for fixed-size WDC12/RMAT/RandER/RandHD
//! proxies into 256 parts while the rank count grows.
//!
//! `--json` additionally emits one line per (graph, rank count) with the sweep
//! accounting of the frontier engine — wall seconds, label-propagation sweeps,
//! vertices scored and the resulting sweep throughput (scored vertices per second) —
//! which is what `BENCH_sweep.json` records as the perf trajectory.

use xtrapulp::{xtrapulp_partition, PartitionParams};
use xtrapulp_bench::{fmt, json_flag, print_table, scaled};
use xtrapulp_comm::{Runtime, Timer};
use xtrapulp_gen::{GraphConfig, GraphKind};
use xtrapulp_graph::{DistGraph, Distribution};

fn main() {
    let n = scaled(1 << 15);
    let graphs = vec![
        (
            "WDC12",
            GraphKind::WebCrawl {
                num_vertices: n,
                avg_degree: 16,
                community_size: 512,
            },
        ),
        (
            "RMAT",
            GraphKind::Rmat {
                scale: (n as f64).log2() as u32,
                edge_factor: 16,
            },
        ),
        (
            "RandER",
            GraphKind::ErdosRenyi {
                num_vertices: n,
                avg_degree: 16,
            },
        ),
        (
            "RandHD",
            GraphKind::RandHd {
                num_vertices: n,
                avg_degree: 16,
            },
        ),
    ];
    let rank_counts = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    for (name, kind) in graphs {
        let el = GraphConfig::new(kind, 42).generate();
        let edges = el.edges.clone();
        let mut row = vec![name.to_string()];
        let mut base = 0.0;
        for &nranks in &rank_counts {
            let (secs, lp_sweeps, vertices_scored) = Runtime::run(nranks, |ctx| {
                let g = DistGraph::from_shared_edges(
                    ctx,
                    Distribution::Hashed,
                    el.num_vertices,
                    &edges,
                );
                let params = PartitionParams {
                    num_parts: 256,
                    seed: 7,
                    ..Default::default()
                };
                let t = Timer::start();
                let result = xtrapulp_partition(ctx, &g, &params);
                (
                    ctx.allreduce_max_f64(&[t.elapsed_secs()])[0],
                    result.lp_sweeps,
                    result.vertices_scored,
                )
            })[0];
            if json_flag() {
                let mut line = String::from("{\"experiment\":\"fig1_strong_scaling\",\"graph\":");
                serde::write_json_str(name, &mut line);
                line.push_str(&format!(
                    ",\"nranks\":{nranks},\"seconds\":{secs},\"lp_sweeps\":{lp_sweeps},\"vertices_scored\":{vertices_scored},\"scored_per_sec\":{}}}",
                    vertices_scored as f64 / secs.max(1e-9)
                ));
                println!("{line}");
            }
            if nranks == rank_counts[0] {
                base = secs;
            }
            row.push(fmt(secs));
        }
        row.push(fmt(base / row.last().unwrap().parse::<f64>().unwrap()));
        rows.push(row);
    }
    print_table(
        "Fig. 1 — strong scaling: XtraPuLP time (s) computing 256 parts",
        &[
            "graph",
            "1 rank",
            "2 ranks",
            "4 ranks",
            "8 ranks",
            "speedup 1->8",
        ],
        &rows,
    );
}
