//! §V-A.2 "Trillion-edge runs": the largest graphs that fit on this machine, partitioned
//! at the maximum rank count, reported like the paper's headline runs (RandER / RandHD /
//! RMAT at 2^34 vertices, 2^39-2^40 edges on 8192 nodes).

use xtrapulp::{xtrapulp_partition, PartitionParams};
use xtrapulp_bench::{fmt, print_table, scaled};
use xtrapulp_comm::{Runtime, Timer};
use xtrapulp_gen::{GraphConfig, GraphKind};
use xtrapulp_graph::{DistGraph, Distribution};

fn main() {
    let n = scaled(1 << 17);
    let nranks = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(8)
        .min(16);
    let graphs = vec![
        (
            "RandER",
            GraphKind::ErdosRenyi {
                num_vertices: n,
                avg_degree: 32,
            },
        ),
        (
            "RandHD",
            GraphKind::RandHd {
                num_vertices: n,
                avg_degree: 32,
            },
        ),
        (
            "RMAT",
            GraphKind::Rmat {
                scale: (n as f64).log2() as u32,
                edge_factor: 16,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, kind) in graphs {
        let el = GraphConfig::new(kind, 11).generate();
        let edges = el.edges.clone();
        let m = el.edges.len();
        let secs = Runtime::run(nranks, |ctx| {
            let g =
                DistGraph::from_shared_edges(ctx, Distribution::Hashed, el.num_vertices, &edges);
            let params = PartitionParams {
                num_parts: 256,
                seed: 5,
                ..Default::default()
            };
            let t = Timer::start();
            let _ = xtrapulp_partition(ctx, &g, &params);
            ctx.allreduce_max_f64(&[t.elapsed_secs()])[0]
        })[0];
        rows.push(vec![
            name.to_string(),
            el.num_vertices.to_string(),
            m.to_string(),
            nranks.to_string(),
            fmt(secs),
        ]);
    }
    print_table(
        "§V-A.2 — largest-graph runs (paper: 2^34 vertices / 10^12 edges in 357-608 s on 8192 nodes)",
        &["graph", "n", "edges generated", "ranks", "time (s)"],
        &rows,
    );
}
