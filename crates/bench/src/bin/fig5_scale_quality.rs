//! Fig. 5: how partition quality varies with the rank count when computing 256 parts of
//! the WDC12 proxy (edge cut ratio, scaled max cut ratio, edge imbalance).

use xtrapulp::{PartitionParams, Partitioner, XtraPulpPartitioner};
use xtrapulp_bench::{fmt, print_table, proxy_graph};

fn main() {
    let csr = proxy_graph("wdc12-host");
    let rank_counts = [1usize, 2, 4, 8, 16];
    let params = PartitionParams {
        num_parts: 256,
        seed: 31,
        ..Default::default()
    };
    let mut rows = Vec::new();
    for &nranks in &rank_counts {
        let (_, q) = XtraPulpPartitioner::new(nranks).partition_with_quality(&csr, &params);
        rows.push(vec![
            nranks.to_string(),
            fmt(q.edge_cut_ratio),
            fmt(q.scaled_max_cut_ratio),
            fmt(q.edge_imbalance),
        ]);
    }
    print_table(
        "Fig. 5 — WDC12 proxy, 256 parts: quality vs rank count",
        &[
            "ranks",
            "edge cut ratio",
            "scaled max cut ratio",
            "max edge imbalance",
        ],
        &rows,
    );
}
