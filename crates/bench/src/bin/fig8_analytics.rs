//! Fig. 8: end-to-end execution time of six graph analytics (HC, KC, LP, PR, SCC, WCC)
//! on the WDC12 proxy under four placement strategies: EdgeBlock, Random, VertexBlock and
//! XtraPuLP (including its partitioning time).

use xtrapulp::{baselines, InitStrategy, PartitionParams, Partitioner, XtraPulpPartitioner};
use xtrapulp_analytics::run_suite_with_partition;
use xtrapulp_bench::{fmt, print_table, scaled};
use xtrapulp_gen::{GraphConfig, GraphKind};

fn main() {
    let n = scaled(1 << 15);
    let el = GraphConfig::new(
        GraphKind::WebCrawl { num_vertices: n, avg_degree: 16, community_size: 512 },
        51,
    )
    .generate();
    let csr = el.to_csr();
    let nranks = 8;

    let edge_block = baselines::edge_block_partition(&csr, nranks);
    let random = baselines::random_partition(n, nranks, 3);
    let vert_block = baselines::vertex_block_partition(n, nranks);
    // As in the paper, XtraPuLP is initialised from the vertex-block placement and only
    // the balancing stages run.
    let params = PartitionParams {
        num_parts: nranks,
        init: InitStrategy::VertexBlock,
        seed: 5,
        ..Default::default()
    };
    let t = std::time::Instant::now();
    let xtrapulp = XtraPulpPartitioner::new(nranks).partition(&csr, &params);
    let xtrapulp_secs = t.elapsed().as_secs_f64();

    let strategies: Vec<(&str, &Vec<i32>, f64)> = vec![
        ("EdgeBlock", &edge_block, 0.0),
        ("Random", &random, 0.0),
        ("VertBlock", &vert_block, 0.0),
        ("XtraPuLP", &xtrapulp, xtrapulp_secs),
    ];
    let mut rows = Vec::new();
    for (name, parts, psecs) in strategies {
        let result = run_suite_with_partition(nranks, n, &el.edges, parts, name, psecs, 16);
        let mut row = vec![name.to_string()];
        for a in &result.analytics {
            row.push(format!("{} {:.2}s", a.name, a.seconds));
        }
        row.push(fmt(result.partition_seconds));
        row.push(fmt(result.total_seconds()));
        rows.push(row);
    }
    print_table(
        "Fig. 8 — analytics end-to-end time on the WDC12 proxy (8 ranks)",
        &["strategy", "HC", "KC", "LP", "PR", "SCC", "WCC", "partition (s)", "total (s)"],
        &rows,
    );
}
