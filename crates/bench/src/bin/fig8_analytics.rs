//! Fig. 8: end-to-end execution time of six graph analytics (HC, KC, LP, PR, SCC, WCC)
//! on the WDC12 proxy under four placement strategies — EdgeBlock, Random, VertexBlock
//! and XtraPuLP (including its partitioning time) — all resolved through the method
//! registry and partitioned on one persistent session.

use xtrapulp::{InitStrategy, PartitionParams};
use xtrapulp_analytics::run_suite_with_partition;
use xtrapulp_api::{Method, Session};
use xtrapulp_bench::{emit_json, fmt, print_table, scaled, time_job};
use xtrapulp_gen::{GraphConfig, GraphKind};

fn main() {
    let n = scaled(1 << 15);
    let el = GraphConfig::new(
        GraphKind::WebCrawl {
            num_vertices: n,
            avg_degree: 16,
            community_size: 512,
        },
        51,
    )
    .generate();
    let csr = el.to_csr();
    let nranks = 8;
    let mut session = Session::new(nranks).expect("valid rank count");

    // As in the paper, XtraPuLP is initialised from the vertex-block placement and only
    // the balancing stages run; the naive strategies cost no partitioning time.
    let params = PartitionParams {
        num_parts: nranks,
        init: InitStrategy::VertexBlock,
        seed: 5,
        ..Default::default()
    };
    let strategies = [
        Method::EdgeBlock,
        Method::Random,
        Method::VertexBlock,
        Method::XtraPulp,
    ];
    let mut rows = Vec::new();
    for method in strategies {
        let (secs, report) = time_job(&mut session, method, &csr, &params);
        emit_json("fig8_analytics", "wdc12-proxy", &report);
        let partition_seconds = if method == Method::XtraPulp {
            secs
        } else {
            0.0
        };
        let result = run_suite_with_partition(
            nranks,
            n,
            &el.edges,
            &report.parts,
            method.name(),
            partition_seconds,
            16,
        );
        let mut row = vec![method.to_string()];
        for a in &result.analytics {
            row.push(format!("{} {:.2}s", a.name, a.seconds));
        }
        row.push(fmt(result.partition_seconds));
        row.push(fmt(result.total_seconds()));
        rows.push(row);
    }
    print_table(
        "Fig. 8 — analytics end-to-end time on the WDC12 proxy (8 ranks)",
        &[
            "strategy",
            "HC",
            "KC",
            "LP",
            "PR",
            "SCC",
            "WCC",
            "partition (s)",
            "total (s)",
        ],
        &rows,
    );
}
