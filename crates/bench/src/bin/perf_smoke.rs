//! CI perf smoke gate for the sweep engine: runs the quick preset cold (frontier and
//! legacy full modes) plus a touched-scoped warm start, and fails — exit code 1 — if
//! the engine's deterministic work counters (sweeps, scored vertices) regress more
//! than 2x against the checked-in baseline (`crates/bench/perf_baseline.json`); wall
//! time is printed for context but never gates, since CI machines vary.
//!
//! The 2x gate is deliberately loose: it is a tripwire for "someone re-introduced full
//! sweeps / broke the frontier", not a microbenchmark. Regenerate the baseline with
//! `cargo run --release -p xtrapulp-bench --bin perf_smoke -- --write-baseline`
//! after an intentional perf change.

use std::time::Instant;

use xtrapulp::{
    try_pulp_partition_from_with_stats, try_pulp_partition_with_stats, PartitionParams, SweepMode,
};
use xtrapulp_gen::{GraphConfig, GraphKind};

const BASELINE_PATH: &str = "crates/bench/perf_baseline.json";
/// Wall-time and work-counter regression tolerance.
const TOLERANCE: f64 = 2.0;

struct Measurement {
    cold_frontier_seconds: f64,
    cold_frontier_scored: u64,
    cold_frontier_sweeps: u64,
    cold_full_scored: u64,
    warm_touched_scored: u64,
    dist_loopback_seconds: f64,
    dist_loopback_frames: u64,
}

fn measure() -> Measurement {
    let csr = GraphConfig::new(
        GraphKind::WebCrawl {
            num_vertices: 4096,
            avg_degree: 16,
            community_size: 256,
        },
        77,
    )
    .generate()
    .to_csr();
    let frontier = PartitionParams {
        num_parts: 8,
        seed: 29,
        ..Default::default()
    };
    let full = PartitionParams {
        sweep_mode: SweepMode::Full,
        ..frontier
    };

    // Warm-up run so the first timed sample is not paying page faults.
    let _ = try_pulp_partition_with_stats(&csr, &frontier).unwrap();
    // Median of three for the timed quantity.
    let mut times = Vec::new();
    let mut stats = None;
    let mut parts = Vec::new();
    for _ in 0..3 {
        let t = Instant::now();
        let (p, s) = try_pulp_partition_with_stats(&csr, &frontier).unwrap();
        times.push(t.elapsed().as_secs_f64());
        stats = Some(s);
        parts = p;
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let stats = stats.unwrap();

    let (_, full_stats) = try_pulp_partition_with_stats(&csr, &full).unwrap();
    let touched: Vec<u64> = (0..16u64).collect();
    let (_, warm_stats) =
        try_pulp_partition_from_with_stats(&csr, &frontier, &parts, Some(&touched)).unwrap();

    // Distributed loopback: the same graph through the 4-rank in-process
    // transport, so collective traffic pays the full Transport-trait
    // indirection. Wall time is informational; the frame count is
    // deterministic and gates (a regression here means a collective started
    // sending more frames than it should).
    let mut session = xtrapulp_api::Session::new(4).expect("loopback session");
    let _ = session.partition(&csr, &frontier).unwrap(); // warm-up
    let mut dist_times = Vec::new();
    let mut dist_frames = 0;
    for _ in 0..3 {
        let t = Instant::now();
        let report = session.partition(&csr, &frontier).unwrap();
        dist_times.push(t.elapsed().as_secs_f64());
        dist_frames = report.comm.frames_sent;
    }
    dist_times.sort_by(|a, b| a.partial_cmp(b).unwrap());

    Measurement {
        cold_frontier_seconds: times[1],
        cold_frontier_scored: stats.vertices_scored,
        cold_frontier_sweeps: stats.sweeps,
        cold_full_scored: full_stats.vertices_scored,
        warm_touched_scored: warm_stats.vertices_scored,
        dist_loopback_seconds: dist_times[1],
        dist_loopback_frames: dist_frames,
    }
}

fn to_json(m: &Measurement) -> String {
    format!(
        "{{\n  \"cold_frontier_seconds\": {},\n  \"cold_frontier_scored\": {},\n  \
         \"cold_frontier_sweeps\": {},\n  \"cold_full_scored\": {},\n  \
         \"warm_touched_scored\": {},\n  \"dist_loopback_seconds\": {},\n  \
         \"dist_loopback_frames\": {}\n}}\n",
        m.cold_frontier_seconds,
        m.cold_frontier_scored,
        m.cold_frontier_sweeps,
        m.cold_full_scored,
        m.warm_touched_scored,
        m.dist_loopback_seconds,
        m.dist_loopback_frames
    )
}

/// Extract a numeric field from the flat baseline JSON (the workspace's vendored
/// serde_json only serialises, so parsing is a two-line scan).
fn field(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let write = std::env::args().any(|a| a == "--write-baseline");
    let m = measure();
    println!(
        "perf_smoke: cold frontier {:.3}s, {} sweeps, {} scored (full mode scores {}); \
         warm touched scores {}; 4-rank loopback {:.3}s / {} frames",
        m.cold_frontier_seconds,
        m.cold_frontier_sweeps,
        m.cold_frontier_scored,
        m.cold_full_scored,
        m.warm_touched_scored,
        m.dist_loopback_seconds,
        m.dist_loopback_frames
    );

    if write {
        std::fs::write(BASELINE_PATH, to_json(&m)).expect("write baseline");
        println!("perf_smoke: baseline written to {BASELINE_PATH}");
        return;
    }

    let baseline = match std::fs::read_to_string(BASELINE_PATH)
        .ok()
        .or_else(|| std::fs::read_to_string(format!("../../{BASELINE_PATH}")).ok())
    {
        Some(b) => b,
        None => {
            eprintln!("perf_smoke: no baseline at {BASELINE_PATH}; run with --write-baseline");
            std::process::exit(1);
        }
    };

    let mut failed = false;
    let mut check = |name: &str, current: f64| {
        let base = match field(&baseline, name) {
            Some(b) if b > 0.0 => b,
            _ => {
                eprintln!("perf_smoke: baseline missing field {name}");
                failed = true;
                return;
            }
        };
        let ratio = current / base;
        let verdict = if ratio > TOLERANCE { "REGRESSED" } else { "ok" };
        println!("perf_smoke: {name}: {current} vs baseline {base} ({ratio:.2}x) {verdict}");
        if ratio > TOLERANCE {
            failed = true;
        }
    };
    // Wall time is logged for context but does not gate: CI machines vary, the
    // engine's deterministic work counters do not.
    if let Some(base) = field(&baseline, "cold_frontier_seconds") {
        println!(
            "perf_smoke: cold_frontier_seconds: {} vs baseline {base} ({:.2}x) [informational]",
            m.cold_frontier_seconds,
            m.cold_frontier_seconds / base.max(1e-9)
        );
    }
    if let Some(base) = field(&baseline, "dist_loopback_seconds") {
        println!(
            "perf_smoke: dist_loopback_seconds: {} vs baseline {base} ({:.2}x) [informational]",
            m.dist_loopback_seconds,
            m.dist_loopback_seconds / base.max(1e-9)
        );
    }
    check("cold_frontier_scored", m.cold_frontier_scored as f64);
    check("cold_frontier_sweeps", m.cold_frontier_sweeps as f64);
    check("warm_touched_scored", m.warm_touched_scored as f64);
    check("dist_loopback_frames", m.dist_loopback_frames as f64);

    if !tracing_overhead_gate() {
        failed = true;
    }

    if failed {
        eprintln!("perf_smoke: FAILED (>{TOLERANCE}x regression against {BASELINE_PATH})");
        std::process::exit(1);
    }
    println!("perf_smoke: all checks within {TOLERANCE}x of baseline");
}

/// Observability overhead gate, two parts:
///
/// * **disabled hot path** — a span guard with tracing off must cost one relaxed
///   atomic load and nothing else. 1M create/drop cycles gate on a generous
///   absolute bound ([`DISABLED_SPAN_NS_BOUND`] ns/op, ~10x the expected cost),
///   a tripwire for anyone adding work before the enabled check.
/// * **enabled A/B** — the cold frontier partition run in interleaved
///   disabled/enabled pairs (interleaving cancels machine drift). Fails when the
///   tracing-disabled runs regress more than 2% plus the measured same-mode
///   noise against the enabled runs' median — i.e. when instrumentation costs
///   anything measurable with tracing off. The enabled-mode overhead is printed
///   for the README's numbers but does not gate (it is allowed to cost a few
///   percent; it is opt-in).
fn tracing_overhead_gate() -> bool {
    const DISABLED_SPAN_NS_BOUND: f64 = 25.0;
    const SPAN_ITERS: u32 = 1_000_000;
    const AB_PAIRS: usize = 5;
    const DISABLED_REGRESSION_GATE: f64 = 0.02;

    let mut ok = true;
    xtrapulp_obs::set_enabled(false);
    let t = Instant::now();
    for i in 0..SPAN_ITERS {
        let _span = xtrapulp_obs::span_with("perf_smoke_disabled", i as u64);
    }
    let ns_per_op = t.elapsed().as_nanos() as f64 / SPAN_ITERS as f64;
    let verdict = if ns_per_op > DISABLED_SPAN_NS_BOUND {
        ok = false;
        "REGRESSED"
    } else {
        "ok"
    };
    println!(
        "perf_smoke: tracing_disabled_span_ns: {ns_per_op:.2} (bound {DISABLED_SPAN_NS_BOUND}) {verdict}"
    );

    let csr = GraphConfig::new(
        GraphKind::WebCrawl {
            num_vertices: 4096,
            avg_degree: 16,
            community_size: 256,
        },
        77,
    )
    .generate()
    .to_csr();
    let params = PartitionParams {
        num_parts: 8,
        seed: 29,
        ..Default::default()
    };
    let _ = try_pulp_partition_with_stats(&csr, &params).unwrap(); // warm-up
    let mut disabled = Vec::with_capacity(AB_PAIRS);
    let mut enabled = Vec::with_capacity(AB_PAIRS);
    for _ in 0..AB_PAIRS {
        xtrapulp_obs::set_enabled(false);
        let t = Instant::now();
        let _ = try_pulp_partition_with_stats(&csr, &params).unwrap();
        disabled.push(t.elapsed().as_secs_f64());

        xtrapulp_obs::set_enabled(true);
        let t = Instant::now();
        let _ = try_pulp_partition_with_stats(&csr, &params).unwrap();
        enabled.push(t.elapsed().as_secs_f64());
        // Throw away the accumulated events so the rings never skew later pairs.
        let _ = xtrapulp_obs::trace::drain();
    }
    xtrapulp_obs::set_enabled(false);
    let median = |xs: &mut Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs[xs.len() / 2]
    };
    // Same-mode spread estimates this machine's run-to-run noise; the gate
    // allows 2% plus that, so a quiet machine gates tight and a noisy CI runner
    // does not flake.
    let noise = (disabled.iter().cloned().fold(f64::MIN, f64::max)
        / disabled.iter().cloned().fold(f64::MAX, f64::min))
        - 1.0;
    let med_disabled = median(&mut disabled);
    let med_enabled = median(&mut enabled);
    let disabled_regression = med_disabled / med_enabled - 1.0;
    let enabled_overhead = med_enabled / med_disabled - 1.0;
    let allowed = DISABLED_REGRESSION_GATE + noise;
    let verdict = if disabled_regression > allowed {
        ok = false;
        "REGRESSED"
    } else {
        "ok"
    };
    println!(
        "perf_smoke: tracing_disabled_regression: {:.2}% vs enabled median (allowed {:.2}% = 2% + {:.2}% noise) {verdict}",
        disabled_regression * 100.0,
        allowed * 100.0,
        noise * 100.0
    );
    println!(
        "perf_smoke: tracing_enabled_overhead: {:.2}% (informational; tracing is opt-in)",
        enabled_overhead * 100.0
    );
    ok
}
