//! Soak smoke: run a serving session for a few hundred epochs and assert the
//! health plane's memory accounting holds up — the byte gauges stay bounded
//! (no unaccounted, monotonically-growing structure) and, past a fixed
//! allocator-noise tolerance, the accounted growth explains at least 80% of
//! the process's RSS growth over the soak window.
//!
//! The measurement window opens *after* a warmup (session spawn, allocator
//! high-water marks, first epochs) so the comparison is steady-state churn
//! against steady-state gauges, not process bring-up against them.
//!
//! Exit 0 when every assertion holds; exit 1 with a machine-readable summary
//! otherwise. CI runs this as the soak-smoke job.

use std::time::Duration;

use xtrapulp::PartitionParams;
use xtrapulp_api::{Method, PartitionJob, ServingSession, UpdateBatch};
use xtrapulp_gen::{GraphConfig, GraphKind};
use xtrapulp_obs::mem;

struct Options {
    epochs: u64,
    warmup: u64,
    nranks: usize,
    scale: u32,
    /// Allocator/page-cache noise allowance before RSS growth must be
    /// explained by the gauges.
    tolerance_bytes: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: soak_serve [--epochs N] [--warmup N] [--nranks R] [--scale S] [--tolerance-mb M]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        epochs: 200,
        warmup: 16,
        nranks: 4,
        scale: 13,
        tolerance_bytes: 24 * 1024 * 1024,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--epochs" => opts.epochs = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--warmup" => opts.warmup = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--nranks" => opts.nranks = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--scale" => opts.scale = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--tolerance-mb" => {
                let mb: u64 = value(&mut i).parse().unwrap_or_else(|_| usage());
                opts.tolerance_bytes = mb * 1024 * 1024;
            }
            _ => usage(),
        }
        i += 1;
    }
    if opts.epochs == 0 || opts.nranks == 0 {
        usage();
    }
    opts
}

fn main() {
    let opts = parse_args();
    std::process::exit(run(&opts));
}

fn run(opts: &Options) -> i32 {
    let n: u64 = 1 << opts.scale;
    let base = GraphConfig::new(
        GraphKind::BarabasiAlbert {
            num_vertices: n,
            edges_per_vertex: 8,
        },
        42,
    )
    .generate();
    let job =
        PartitionJob::new(Method::XtraPulp).with_params(PartitionParams::with_parts(opts.nranks));
    let serving = match ServingSession::spawn(opts.nranks, base.to_csr(), job) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serving session failed to spawn: {e}");
            return 1;
        }
    };
    let store = serving.store();
    let wait = Duration::from_secs(600);

    let mut next_vertex = n;
    let mut ingest_epoch = |target: u64| -> bool {
        let mut batch = UpdateBatch::new();
        batch
            .add_vertices(1)
            .insert_edge(next_vertex, next_vertex % 64)
            .insert_edge(next_vertex, next_vertex % 1024);
        next_vertex += 1;
        if let Err(e) = serving.ingest(batch) {
            eprintln!("ingest failed at epoch {target}: {e}");
            return false;
        }
        if store.wait_for_epoch(target, wait).is_none() {
            eprintln!("epoch {target} never published within {wait:?}");
            return false;
        }
        true
    };

    // Warmup: let the pipeline reach steady state before opening the window.
    for epoch in 1..=opts.warmup {
        if !ingest_epoch(epoch) {
            return 1;
        }
    }
    mem::sample_process();
    let accounted_start = mem::accounted_total();
    let rss_start = mem::rss_bytes().unwrap_or(0);

    // The soak window: churn epochs, sampling the gauges as a scraper would.
    let mut accounted_peak = accounted_start;
    for epoch in opts.warmup + 1..=opts.warmup + opts.epochs {
        if !ingest_epoch(epoch) {
            return 1;
        }
        if epoch % 25 == 0 {
            mem::sample_process();
            accounted_peak = accounted_peak.max(mem::accounted_total());
        }
    }
    mem::sample_process();
    let accounted_end = mem::accounted_total();
    let rss_end = mem::rss_bytes().unwrap_or(rss_start);
    accounted_peak = accounted_peak.max(accounted_end);

    // The scrape itself must expose what we just asserted on.
    let text = xtrapulp_obs::registry::render();
    let scrape_ok = text.contains("mem_bytes{subsystem=\"epoch_store\"}")
        && text.contains("mem_bytes{subsystem=\"ingest_queue\"}")
        && text.contains("process_rss_bytes");

    // Bounded: the gauges must not record runaway growth. The delta log is the
    // only structure that legitimately grows during the window (capped at its
    // retention limit), so steady-state accounting stays within a small
    // multiple of where the window opened.
    let bound = accounted_start.saturating_mul(8).max(64 * 1024 * 1024);
    let bounded = accounted_peak <= bound;

    // Explained: past the allocator-noise tolerance, accounted growth must
    // cover at least 80% of RSS growth — anything else is a structure the
    // health plane is blind to.
    let rss_growth = rss_end.saturating_sub(rss_start);
    let accounted_growth = accounted_end.saturating_sub(accounted_start);
    let unexplained = rss_growth.saturating_sub(accounted_growth);
    let explained =
        unexplained <= opts.tolerance_bytes || accounted_growth as f64 >= 0.8 * rss_growth as f64;

    let verdict = bounded && explained && scrape_ok;
    println!(
        "{{\"soak\":\"{}\",\"epochs\":{},\"final_epoch\":{},\
         \"accounted_start\":{accounted_start},\"accounted_end\":{accounted_end},\
         \"accounted_peak\":{accounted_peak},\"bound\":{bound},\
         \"rss_start\":{rss_start},\"rss_end\":{rss_end},\
         \"rss_growth\":{rss_growth},\"accounted_growth\":{accounted_growth},\
         \"unexplained_bytes\":{unexplained},\"tolerance_bytes\":{},\
         \"bounded\":{bounded},\"explained\":{explained},\"scrape_ok\":{scrape_ok}}}",
        if verdict { "pass" } else { "fail" },
        opts.epochs,
        store.epoch(),
        opts.tolerance_bytes,
    );
    let _ = serving.shutdown();
    if verdict {
        0
    } else {
        1
    }
}
