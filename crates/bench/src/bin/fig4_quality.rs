//! Fig. 4: partition quality (edge cut ratio and scaled max cut ratio) versus the number
//! of parts, for XtraPuLP, PuLP and the METIS-like baseline, on the six representative
//! graphs. Methods resolve through the registry and run on one persistent session.

use xtrapulp::PartitionParams;
use xtrapulp_api::{Method, Session};
use xtrapulp_bench::{emit_json, fmt, print_table, proxy_graph, time_job};

fn main() {
    let graphs = [
        "lj",
        "orkut",
        "friendster",
        "wdc12-pay",
        "rmat_24",
        "nlpkkt240",
    ];
    let part_counts = [2usize, 4, 8, 16, 32, 64, 128, 256];
    let methods = [Method::XtraPulp, Method::Pulp, Method::MetisLike];
    let mut session = Session::new(4).expect("4 ranks is a valid session");
    let mut rows = Vec::new();
    for name in graphs {
        let csr = proxy_graph(name);
        for &p in &part_counts {
            let params = PartitionParams {
                num_parts: p,
                seed: 21,
                ..Default::default()
            };
            for method in methods {
                let (_, report) = time_job(&mut session, method, &csr, &params);
                emit_json("fig4_quality", name, &report);
                rows.push(vec![
                    name.to_string(),
                    p.to_string(),
                    method.to_string(),
                    fmt(report.quality.edge_cut_ratio),
                    fmt(report.quality.scaled_max_cut_ratio),
                    fmt(report.quality.vertex_imbalance),
                ]);
            }
        }
    }
    print_table(
        "Fig. 4 — quality vs number of parts",
        &[
            "graph",
            "parts",
            "method",
            "edge cut ratio",
            "scaled max cut ratio",
            "vertex imbalance",
        ],
        &rows,
    );
}
