//! Fig. 4: partition quality (edge cut ratio and scaled max cut ratio) versus the number
//! of parts, for XtraPuLP, PuLP and the METIS-like baseline, on the six representative
//! graphs.

use xtrapulp::{PartitionParams, Partitioner, PulpPartitioner, XtraPulpPartitioner};
use xtrapulp_bench::{fmt, print_table, proxy_graph};
use xtrapulp_multilevel::MetisLikePartitioner;

fn main() {
    let graphs = ["lj", "orkut", "friendster", "wdc12-pay", "rmat_24", "nlpkkt240"];
    let part_counts = [2usize, 4, 8, 16, 32, 64, 128, 256];
    let xtrapulp = XtraPulpPartitioner::new(4);
    let methods: Vec<(&str, &dyn Partitioner)> = vec![
        ("XtraPuLP", &xtrapulp),
        ("PuLP", &PulpPartitioner),
        ("MetisLike", &MetisLikePartitioner { refine_sweeps: 4 }),
    ];
    let mut rows = Vec::new();
    for name in graphs {
        let csr = proxy_graph(name);
        for &p in &part_counts {
            let params = PartitionParams { num_parts: p, seed: 21, ..Default::default() };
            for (method, partitioner) in &methods {
                let (_, q) = partitioner.partition_with_quality(&csr, &params);
                rows.push(vec![
                    name.to_string(),
                    p.to_string(),
                    method.to_string(),
                    fmt(q.edge_cut_ratio),
                    fmt(q.scaled_max_cut_ratio),
                    fmt(q.vertex_imbalance),
                ]);
            }
        }
    }
    print_table(
        "Fig. 4 — quality vs number of parts",
        &["graph", "parts", "method", "edge cut ratio", "scaled max cut ratio", "vertex imbalance"],
        &rows,
    );
}
