//! Fig. 3: XtraPuLP relative speedup on the six representative graphs when the rank
//! count grows from 1 to 8 (the paper's Cluster-1 uses 1-16 nodes).

use xtrapulp::{PartitionParams, XtraPulpPartitioner};
use xtrapulp_bench::{fmt, print_table, proxy_graph, time_partition};

fn main() {
    let graphs = [
        "lj",
        "orkut",
        "friendster",
        "wdc12-pay",
        "rmat_24",
        "nlpkkt240",
    ];
    let rank_counts = [1usize, 2, 4, 8];
    let params = PartitionParams {
        num_parts: 16,
        seed: 3,
        ..Default::default()
    };
    let mut rows = Vec::new();
    for name in graphs {
        let csr = proxy_graph(name);
        let mut row = vec![name.to_string()];
        let mut base = 0.0;
        for &nranks in &rank_counts {
            let (secs, _) = time_partition(&XtraPulpPartitioner::new(nranks), &csr, &params);
            if nranks == 1 {
                base = secs;
            }
            row.push(fmt(base / secs));
        }
        rows.push(row);
    }
    print_table(
        "Fig. 3 — relative speedup vs a single rank (16 parts)",
        &["graph", "1", "2", "4", "8"],
        &rows,
    );
}
