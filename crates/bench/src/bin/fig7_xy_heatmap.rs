//! Fig. 7: the effect of the multiplier parameters X and Y on edge cut, max per-part
//! cut, vertex balance and edge balance (the paper sweeps X,Y in [0,4] over four graphs
//! and 2-128 parts; we sweep a representative grid).

use xtrapulp::{PartitionParams, Partitioner, XtraPulpPartitioner};
use xtrapulp_bench::{fmt, print_table, proxy_graph};

fn main() {
    let values = [0.0f64, 0.25, 0.5, 1.0, 2.0, 4.0];
    let graphs = ["lj", "uk-2002", "rmat_22", "nlpkkt160"];
    let mut rows = Vec::new();
    for &x in &values {
        for &y in &values {
            let mut cut = 0.0;
            let mut max_cut = 0.0;
            let mut vimb = 0.0;
            let mut eimb = 0.0;
            for name in graphs {
                let csr = proxy_graph(name);
                let params = PartitionParams {
                    num_parts: 16,
                    mult_x: x,
                    mult_y: y,
                    seed: 29,
                    ..Default::default()
                };
                let (_, q) = XtraPulpPartitioner::new(4).partition_with_quality(&csr, &params);
                cut += q.edge_cut_ratio;
                max_cut += q.scaled_max_cut_ratio;
                vimb += q.vertex_imbalance;
                eimb += q.edge_imbalance;
            }
            let k = graphs.len() as f64;
            rows.push(vec![
                fmt(x),
                fmt(y),
                fmt(cut / k),
                fmt(max_cut / k),
                fmt(vimb / k),
                fmt(eimb / k),
            ]);
        }
    }
    print_table(
        "Fig. 7 — X/Y multiplier sweep (averages over lj, uk-2002, rmat_22, nlpkkt160; 16 parts, 4 ranks)",
        &["X", "Y", "edge cut ratio", "scaled max cut", "vertex imbalance", "edge imbalance"],
        &rows,
    );
}
