//! Table II: partitioning time for 16 parts — XtraPuLP (multi-rank) vs PuLP (single rank)
//! vs the METIS-like baseline — across the four graph classes, all resolved through the
//! method registry and run on one persistent session.

use xtrapulp::PartitionParams;
use xtrapulp_api::{Method, Session};
use xtrapulp_bench::{emit_json, fmt, graph_class, print_table, proxy_graph, time_job};

fn main() {
    let graphs = [
        "lj",
        "orkut",
        "friendster",
        "wdc12-pay",
        "indochina",
        "uk-2002",
        "rmat_22",
        "rmat_24",
        "InternalMesh1",
        "nlpkkt160",
        "nlpkkt240",
    ];
    let params = PartitionParams {
        num_parts: 16,
        seed: 13,
        ..Default::default()
    };
    let mut session = Session::new(8).expect("8 ranks is a valid session");
    let mut rows = Vec::new();
    for name in graphs {
        let csr = proxy_graph(name);
        let (tx, report) = time_job(&mut session, Method::XtraPulp, &csr, &params);
        let (tp, _) = time_job(&mut session, Method::Pulp, &csr, &params);
        let (tm, _) = time_job(&mut session, Method::MetisLike, &csr, &params);
        emit_json("table2_cluster1", name, &report);
        rows.push(vec![
            name.to_string(),
            format!("{:?}", graph_class(name)),
            fmt(tx),
            fmt(tp),
            fmt(tm),
            fmt(tp / tx),
            fmt(report.quality.edge_cut_ratio),
        ]);
    }
    print_table(
        "Table II — partitioning time (s) for 16 parts (XtraPuLP on 8 ranks, PuLP and MetisLike serial)",
        &["graph", "class", "XtraPuLP", "PuLP", "MetisLike", "speedup vs PuLP", "XtraPuLP cut ratio"],
        &rows,
    );
}
