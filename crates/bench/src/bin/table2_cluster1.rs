//! Table II: partitioning time for 16 parts — XtraPuLP (multi-rank) vs PuLP (single rank)
//! vs the METIS-like baseline — across the four graph classes.

use xtrapulp::{PartitionParams, PulpPartitioner, XtraPulpPartitioner};
use xtrapulp_bench::{fmt, graph_class, print_table, proxy_graph, time_partition};
use xtrapulp_multilevel::MetisLikePartitioner;

fn main() {
    let graphs = [
        "lj", "orkut", "friendster", "wdc12-pay", "indochina", "uk-2002",
        "rmat_22", "rmat_24", "InternalMesh1", "nlpkkt160", "nlpkkt240",
    ];
    let params = PartitionParams { num_parts: 16, seed: 13, ..Default::default() };
    let xtrapulp = XtraPulpPartitioner::new(8);
    let mut rows = Vec::new();
    for name in graphs {
        let csr = proxy_graph(name);
        let (tx, px) = time_partition(&xtrapulp, &csr, &params);
        let (tp, _) = time_partition(&PulpPartitioner, &csr, &params);
        let (tm, _) = time_partition(&MetisLikePartitioner::default(), &csr, &params);
        let q = xtrapulp::metrics::PartitionQuality::evaluate(&csr, &px, 16);
        rows.push(vec![
            name.to_string(),
            format!("{:?}", graph_class(name)),
            fmt(tx),
            fmt(tp),
            fmt(tm),
            fmt(tp / tx),
            fmt(q.edge_cut_ratio),
        ]);
    }
    print_table(
        "Table II — partitioning time (s) for 16 parts (XtraPuLP on 8 ranks, PuLP and MetisLike serial)",
        &["graph", "class", "XtraPuLP", "PuLP", "MetisLike", "speedup vs PuLP", "XtraPuLP cut ratio"],
        &rows,
    );
}
