//! Dynamic-graph figure: warm-start repartitioning versus from-scratch across update
//! batch sizes, on the distributed partitioner served through a `DynamicSession`.
//!
//! For each churn level the same mutated graph is partitioned twice — warm (seeded from
//! the previous epoch, short refinement schedule, persistent per-rank graphs evolved by
//! delta) and cold (full from-scratch job on a fresh session) — and the table reports
//! the wall-clock speedup together with the quality deltas (edge cut, imbalance) and the
//! migration/sweep accounting. A growth series does the same for a preferential-
//! attachment stream. `--json` additionally emits one `DynamicReport` summary line per
//! warm epoch, including the sweep-throughput accounting (`lp_sweeps`,
//! `vertices_scored` and their cold references) that `BENCH_sweep.json` records.

use std::time::Instant;

use xtrapulp::PartitionParams;
use xtrapulp_api::{DynamicSession, Method, PartitionJob, Session, UpdateBatch};
use xtrapulp_bench::{fmt, json_flag, print_table, scaled};
use xtrapulp_gen::{
    generate_stream, GraphConfig, GraphKind, StreamKind, UpdateStream, UpdateStreamConfig,
};

const NRANKS: usize = 4;

fn emit_dynamic_json(experiment: &str, series: &str, report: &xtrapulp_api::DynamicReport) {
    if json_flag() {
        let mut line = String::from("{\"experiment\":");
        serde::write_json_str(experiment, &mut line);
        line.push_str(",\"series\":");
        serde::write_json_str(series, &mut line);
        line.push_str(",\"report\":");
        line.push_str(&report.to_json_summary());
        line.push('}');
        println!("{line}");
    }
}

fn run_series(
    rows: &mut Vec<Vec<String>>,
    series: &str,
    base: &xtrapulp_gen::EdgeList,
    stream: &UpdateStream,
    params: &PartitionParams,
) {
    let job = PartitionJob::new(Method::XtraPulp).with_params(*params);
    let mut dynamic = DynamicSession::new(
        Session::new(NRANKS).expect("valid rank count"),
        base.to_csr(),
        job.clone(),
    )
    .expect("valid job");
    // Epoch 0: the cold reference partition the warm epochs start from.
    dynamic.repartition().expect("cold run succeeds");
    let mut cold_session = Session::new(NRANKS).expect("valid rank count");

    for (i, _) in stream.batches.iter().enumerate() {
        let batch = UpdateBatch::from_ops(stream.batch_ops(i));
        let summary = dynamic
            .apply_updates(&batch)
            .expect("generated streams are valid");

        let warm_start = Instant::now();
        let warm = dynamic.repartition().expect("warm run succeeds");
        let warm_secs = warm_start.elapsed().as_secs_f64();
        emit_dynamic_json("fig_dynamic", series, &warm);

        // From-scratch on the identical mutated graph.
        let cold_start = Instant::now();
        let cold = cold_session
            .submit(&job, dynamic.graph().csr())
            .expect("cold run succeeds");
        let cold_secs = cold_start.elapsed().as_secs_f64();

        let cut_delta_pct = if cold.quality.edge_cut == 0 {
            0.0
        } else {
            100.0 * (warm.report.quality.edge_cut as f64 - cold.quality.edge_cut as f64)
                / cold.quality.edge_cut as f64
        };
        rows.push(vec![
            series.to_string(),
            format!("{}", warm.epoch),
            format!("{}", batch.len()),
            format!("{}", summary.vertices_added),
            fmt(cold_secs),
            fmt(warm_secs),
            fmt(cold_secs / warm_secs.max(1e-9)),
            format!("{}/{}", warm.lp_sweeps, warm.cold_lp_sweeps),
            format!("{}/{}", warm.vertices_scored, warm.cold_vertices_scored),
            format!(
                "{}/{}/{}",
                warm.stages.refine_sweeps, warm.stages.balance_sweeps, warm.stages.churn_sweeps
            ),
            format!("{}", warm.vertices_migrated),
            fmt(cut_delta_pct),
            fmt(warm.report.quality.vertex_imbalance),
        ]);
    }
}

fn main() {
    let n = scaled(1 << 14);
    let params = PartitionParams {
        num_parts: 16,
        seed: 29,
        ..Default::default()
    };
    let base = GraphConfig::new(
        GraphKind::BarabasiAlbert {
            num_vertices: n,
            edges_per_vertex: 8,
        },
        77,
    )
    .generate();
    let m = base.to_csr().num_edges();

    let mut rows = Vec::new();
    // Churn series: one batch per churn level, smallest first (≤1% is the acceptance
    // regime, 5% shows where warm-start advantage erodes).
    for churn_pct in [0.1f64, 0.5, 1.0, 5.0] {
        let ops = ((m as f64 * churn_pct / 100.0) as usize).max(2);
        let stream = generate_stream(
            &base,
            &UpdateStreamConfig {
                kind: StreamKind::RandomChurn {
                    ops_per_batch: ops,
                    delete_fraction: 0.5,
                },
                num_batches: 1,
                seed: 11,
            },
        );
        run_series(
            &mut rows,
            &format!("churn {churn_pct}%"),
            &base,
            &stream,
            &params,
        );
    }
    // Growth series: successive preferential-attachment batches on one session.
    let growth = generate_stream(
        &base,
        &UpdateStreamConfig {
            kind: StreamKind::PreferentialGrowth {
                vertices_per_batch: (n / 200).max(8),
                edges_per_vertex: 8,
            },
            num_batches: 3,
            seed: 13,
        },
    );
    run_series(&mut rows, "growth", &base, &growth, &params);

    print_table(
        "Dynamic repartitioning — warm start vs from scratch",
        &[
            "series",
            "epoch",
            "batch ops",
            "verts added",
            "cold s",
            "warm s",
            "speedup",
            "sweeps warm/cold",
            "scored warm/cold",
            "ref/bal/churn",
            "migrated",
            "cut delta %",
            "imbalance",
        ],
        &rows,
    );
}
