//! Perf-trajectory harness: append benchmark entries to `BENCH_history.json`
//! and gate CI on regressions against the recorded history.
//!
//! Two modes:
//!
//! * `bench_history append [--label L] [--scale S] [--nranks N] [--repeat K]
//!   [--file PATH]` — runs the canonical partition benchmark (R-MAT, in-process
//!   multi-rank session) and appends one entry with the measured metrics.
//! * `bench_history check [--file PATH] [--tolerance T]` — compares the newest
//!   entry's metrics against the median of all prior entries, per key. A key
//!   regresses when it exceeds `median * tolerance` (default 2.0 — generous,
//!   because CI machines are noisy; the gate catches trajectory-scale
//!   regressions, not percent-level drift). With fewer than two entries the
//!   check passes trivially: the history is being seeded.
//!
//! The history file is a JSON array with exactly one entry object per line,
//! so `append` can extend it textually, diffs stay line-per-run, and `check`
//! can parse it without a JSON parser dependency:
//!
//! ```json
//! [
//! {"t":1754650000,"label":"ci","scale":12,"nranks":4,"metrics":{"partition_seconds":0.12,...}},
//! {"t":1754736400,"label":"ci","scale":12,"nranks":4,"metrics":{"partition_seconds":0.11,...}}
//! ]
//! ```
//!
//! All recorded metrics are lower-is-better (wall seconds, cut edges, wire
//! bytes), so the comparison is one-sided.

use std::path::PathBuf;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use xtrapulp::PartitionParams;
use xtrapulp_api::Session;
use xtrapulp_gen::{GraphConfig, GraphKind};

fn usage() -> ! {
    eprintln!(
        "usage: bench_history append [--label L] [--scale S] [--nranks N] [--repeat K] [--file PATH]\n\
         \x20      bench_history check  [--file PATH] [--tolerance T]"
    );
    std::process::exit(2);
}

struct Options {
    mode: String,
    label: String,
    scale: u32,
    nranks: usize,
    repeat: usize,
    file: PathBuf,
    tolerance: f64,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first().cloned() else {
        usage();
    };
    if mode != "append" && mode != "check" {
        usage();
    }
    let mut opts = Options {
        mode,
        label: "local".to_string(),
        scale: 12,
        nranks: 4,
        repeat: 3,
        file: PathBuf::from("BENCH_history.json"),
        tolerance: 2.0,
    };
    let mut i = 1;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--label" => opts.label = value(&mut i),
            "--scale" => opts.scale = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--nranks" => opts.nranks = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--repeat" => opts.repeat = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--file" => opts.file = PathBuf::from(value(&mut i)),
            "--tolerance" => opts.tolerance = value(&mut i).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 1;
    }
    if opts.repeat == 0 || opts.nranks == 0 {
        usage();
    }
    opts
}

fn main() {
    let opts = parse_args();
    let code = match opts.mode.as_str() {
        "append" => run_append(&opts),
        "check" => run_check(&opts),
        _ => unreachable!(),
    };
    std::process::exit(code);
}

// ----------------------------------------------------------------------------------
// append: measure and record.
// ----------------------------------------------------------------------------------

/// The canonical benchmark: partition a fixed-seed R-MAT graph on an
/// in-process multi-rank session. Best-of-`repeat` wall time, so the recorded
/// trajectory tracks the machine's capability rather than scheduler noise.
fn run_append(opts: &Options) -> i32 {
    let config = GraphConfig::new(
        GraphKind::Rmat {
            scale: opts.scale,
            edge_factor: 16,
        },
        42,
    );
    let csr = config.generate().to_csr();
    let params = PartitionParams {
        num_parts: opts.nranks,
        ..Default::default()
    };
    let mut best_seconds = f64::INFINITY;
    let mut edge_cut = 0u64;
    let mut edge_cut_ratio = 0.0f64;
    let mut wire_bytes = 0u64;
    for _ in 0..opts.repeat {
        let mut session = match Session::new(opts.nranks) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("session setup failed: {e}");
                return 1;
            }
        };
        let started = Instant::now();
        let report = match session.partition(&csr, &params) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("benchmark partition failed: {e}");
                return 1;
            }
        };
        let seconds = started.elapsed().as_secs_f64();
        if seconds < best_seconds {
            best_seconds = seconds;
        }
        edge_cut = report.quality.edge_cut;
        edge_cut_ratio = report.quality.edge_cut_ratio;
        wire_bytes = report.comm.wire_bytes_sent;
    }
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let entry = format!(
        "{{\"t\":{t},\"label\":\"{}\",\"scale\":{},\"nranks\":{},\"metrics\":{{\
         \"partition_seconds\":{best_seconds:.6},\"edge_cut\":{edge_cut},\
         \"edge_cut_ratio\":{edge_cut_ratio:.6},\"wire_bytes_sent\":{wire_bytes}}}}}",
        opts.label, opts.scale, opts.nranks,
    );
    let body = match std::fs::read_to_string(&opts.file) {
        Ok(existing) => {
            let mut entries = parse_entry_lines(&existing);
            entries.push(entry.clone());
            render(&entries)
        }
        Err(_) => render(std::slice::from_ref(&entry)),
    };
    if let Err(e) = std::fs::write(&opts.file, body) {
        eprintln!("failed to write {}: {e}", opts.file.display());
        return 1;
    }
    println!("{entry}");
    0
}

fn render(entries: &[String]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(e);
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// One entry object per line by construction; tolerate trailing commas and
/// the array brackets on their own lines.
fn parse_entry_lines(body: &str) -> Vec<String> {
    body.lines()
        .map(|l| l.trim().trim_end_matches(','))
        .filter(|l| l.starts_with('{'))
        .map(str::to_string)
        .collect()
}

// ----------------------------------------------------------------------------------
// check: newest entry vs the median of its predecessors.
// ----------------------------------------------------------------------------------

/// Pull the flat `"key":value` pairs out of an entry's `"metrics":{...}` object.
fn parse_metrics(entry: &str) -> Vec<(String, f64)> {
    let Some(obj) = entry
        .split("\"metrics\":{")
        .nth(1)
        .and_then(|rest| rest.split('}').next())
    else {
        return Vec::new();
    };
    obj.split(',')
        .filter_map(|pair| {
            let (key, value) = pair.split_once(':')?;
            let key = key.trim().trim_matches('"').to_string();
            let value: f64 = value.trim().parse().ok()?;
            Some((key, value))
        })
        .collect()
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

fn run_check(opts: &Options) -> i32 {
    let body = match std::fs::read_to_string(&opts.file) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("no history at {}: {e}", opts.file.display());
            return 1;
        }
    };
    let entries = parse_entry_lines(&body);
    if entries.len() < 2 {
        println!(
            "{{\"check\":\"pass\",\"entries\":{},\"note\":\"history seeding, nothing to compare\"}}",
            entries.len()
        );
        return 0;
    }
    let newest = parse_metrics(entries.last().expect("non-empty"));
    let priors: Vec<Vec<(String, f64)>> = entries[..entries.len() - 1]
        .iter()
        .map(|e| parse_metrics(e))
        .collect();
    let mut regressions = Vec::new();
    for (key, value) in &newest {
        let history: Vec<f64> = priors
            .iter()
            .filter_map(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| *v))
            .collect();
        if history.is_empty() {
            continue; // new metric: starts its own trajectory
        }
        let baseline = median(history);
        // One-sided, lower-is-better. The epsilon floor keeps near-zero
        // baselines (sub-millisecond timings, zero cut counts) from turning
        // measurement noise into a gate failure.
        let limit = (baseline * opts.tolerance).max(baseline + 1e-3);
        if *value > limit {
            regressions.push(format!(
                "{{\"key\":\"{key}\",\"value\":{value},\"baseline_median\":{baseline},\"limit\":{limit}}}"
            ));
        }
    }
    if regressions.is_empty() {
        println!(
            "{{\"check\":\"pass\",\"entries\":{},\"metrics\":{}}}",
            entries.len(),
            newest.len()
        );
        0
    } else {
        println!(
            "{{\"check\":\"fail\",\"entries\":{},\"regressions\":[{}]}}",
            entries.len(),
            regressions.join(",")
        );
        1
    }
}
