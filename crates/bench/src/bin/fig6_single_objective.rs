//! Fig. 6: the single-constraint single-objective comparison — XtraPuLP (edge-balance
//! stage disabled), PuLP, the METIS-like baseline and the KaHIP-like label-propagation
//! coarsening partitioner, on lj / rmat_22 / uk-2002, 2-256 parts: edge cut and time.

use xtrapulp::{PartitionParams, Partitioner, PulpPartitioner, XtraPulpPartitioner};
use xtrapulp_bench::{fmt, print_table, proxy_graph, time_partition};
use xtrapulp_multilevel::{LpCoarsenKwayPartitioner, MetisLikePartitioner};

fn main() {
    let graphs = ["lj", "rmat_22", "uk-2002"];
    let part_counts = [2usize, 8, 32, 128, 256];
    let xtrapulp = XtraPulpPartitioner::new(4);
    let methods: Vec<(&str, &dyn Partitioner)> = vec![
        ("XtraPuLP", &xtrapulp),
        ("PuLP", &PulpPartitioner),
        ("MetisLike", &MetisLikePartitioner { refine_sweeps: 4 }),
        ("KaHIP-like", &LpCoarsenKwayPartitioner { refine_sweeps: 6 }),
    ];
    let mut rows = Vec::new();
    for name in graphs {
        let csr = proxy_graph(name);
        for &p in &part_counts {
            // Single constraint, single objective: 3% imbalance, no edge-balance stage.
            let params = PartitionParams {
                num_parts: p,
                vertex_imbalance: 0.03,
                edge_balance_stage: false,
                seed: 17,
                ..Default::default()
            };
            for (method, partitioner) in &methods {
                let (secs, parts) = time_partition(*partitioner, &csr, &params);
                let q = xtrapulp::metrics::PartitionQuality::evaluate(&csr, &parts, p);
                rows.push(vec![
                    name.to_string(),
                    p.to_string(),
                    method.to_string(),
                    fmt(q.edge_cut_ratio),
                    fmt(secs),
                ]);
            }
        }
    }
    print_table(
        "Fig. 6 — single-objective comparison (3% imbalance)",
        &["graph", "parts", "method", "edge cut ratio", "time (s)"],
        &rows,
    );
}
