//! Fig. 6: the single-constraint single-objective comparison — XtraPuLP (edge-balance
//! stage disabled), PuLP, the METIS-like baseline and the KaHIP-like label-propagation
//! coarsening partitioner ([`Method::LpCoarsenKway`]), on lj / rmat_22 / uk-2002,
//! 2-256 parts: edge cut and time.

use xtrapulp::PartitionParams;
use xtrapulp_api::{Method, Session};
use xtrapulp_bench::{emit_json, fmt, print_table, proxy_graph, time_job};

fn main() {
    let graphs = ["lj", "rmat_22", "uk-2002"];
    let part_counts = [2usize, 8, 32, 128, 256];
    let methods = Method::all_quality();
    let mut session = Session::new(4).expect("4 ranks is a valid session");
    let mut rows = Vec::new();
    for name in graphs {
        let csr = proxy_graph(name);
        for &p in &part_counts {
            // Single constraint, single objective: 3% imbalance, no edge-balance stage.
            let params = PartitionParams {
                num_parts: p,
                vertex_imbalance: 0.03,
                edge_balance_stage: false,
                seed: 17,
                ..Default::default()
            };
            for method in methods {
                let (secs, report) = time_job(&mut session, method, &csr, &params);
                emit_json("fig6_single_objective", name, &report);
                rows.push(vec![
                    name.to_string(),
                    p.to_string(),
                    method.to_string(),
                    fmt(report.quality.edge_cut_ratio),
                    fmt(secs),
                ]);
            }
        }
    }
    print_table(
        "Fig. 6 — single-objective comparison (3% imbalance)",
        &["graph", "parts", "method", "edge cut ratio", "time (s)"],
        &rows,
    );
}
