//! # xtrapulp-bench
//!
//! Experiment harnesses that regenerate every table and figure of the paper's evaluation
//! (§IV–V), scaled to a single machine. Each `src/bin/*.rs` binary is named after the
//! table or figure it reproduces (`table1_graphs` → Table I, `fig4_quality` → Fig. 4,
//! and so on; `trillion_scale` extrapolates §V-E) and prints the same rows/series the
//! paper reports, so the *shape* of each result — which method wins, by roughly what
//! factor, where the crossovers fall — can be compared directly against the publication.
//!
//! Partitioner comparisons resolve their methods through the
//! [`Method`](xtrapulp_api::Method) registry and run them on a persistent
//! [`Session`](xtrapulp_api::Session), so every binary exercises the same serving facade
//! the API exposes. The session-facade binaries (`fig4_quality`,
//! `fig6_single_objective`, `fig8_analytics`, `table2_cluster1`) also accept `--json`,
//! switching per-job output to [`PartitionReport`](xtrapulp_api::PartitionReport)
//! summary lines (one JSON object per line) for the perf trajectory; the scaling
//! studies (`fig1`–`fig3`, `fig5`, `trillion_scale`) measure raw collective runs and
//! keep their table output.
//!
//! All experiments accept the `XTRAPULP_SCALE` environment variable (a positive float,
//! default 1.0) which multiplies the default graph sizes, so the same binaries can be run
//! quickly for smoke-testing or at larger sizes for more faithful measurements.

use std::time::Instant;

use xtrapulp::{PartitionParams, Partitioner};
use xtrapulp_api::{Method, PartitionJob, PartitionReport, Session};
use xtrapulp_gen::{GraphClass, TableIPreset};
use xtrapulp_graph::Csr;

/// The scale multiplier read from `XTRAPULP_SCALE` (default 1.0, clamped to [0.05, 64]).
pub fn scale_factor() -> f64 {
    std::env::var("XTRAPULP_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.05, 64.0)
}

/// Scale a vertex count by [`scale_factor`], keeping at least 1024 vertices.
pub fn scaled(n: u64) -> u64 {
    ((n as f64 * scale_factor()) as u64).max(1024)
}

/// Generate the proxy graph for a paper graph name, with its vertex count scaled by
/// [`scale_factor`]. Panics on unknown names (the presets cover every name used by the
/// harnesses).
pub fn proxy_graph(name: &str) -> Csr {
    let preset = TableIPreset::by_name(name)
        .unwrap_or_else(|| panic!("no preset proxy for paper graph '{name}'"));
    let mut config = preset.config;
    // Scale the size field of whichever generator the preset uses.
    use xtrapulp_gen::GraphKind::*;
    config.kind = match config.kind {
        Rmat { scale, edge_factor } => {
            let extra = scale_factor().log2().round() as i32;
            Rmat {
                scale: (scale as i32 + extra).clamp(8, 26) as u32,
                edge_factor,
            }
        }
        ErdosRenyi {
            num_vertices,
            avg_degree,
        } => ErdosRenyi {
            num_vertices: scaled(num_vertices),
            avg_degree,
        },
        RandHd {
            num_vertices,
            avg_degree,
        } => RandHd {
            num_vertices: scaled(num_vertices),
            avg_degree,
        },
        BarabasiAlbert {
            num_vertices,
            edges_per_vertex,
        } => BarabasiAlbert {
            num_vertices: scaled(num_vertices),
            edges_per_vertex,
        },
        SmallWorld {
            num_vertices,
            k,
            rewire_probability,
        } => SmallWorld {
            num_vertices: scaled(num_vertices),
            k,
            rewire_probability,
        },
        WebCrawl {
            num_vertices,
            avg_degree,
            community_size,
        } => WebCrawl {
            num_vertices: scaled(num_vertices),
            avg_degree,
            community_size,
        },
        Grid2d {
            width,
            height,
            diagonal,
        } => {
            let f = scale_factor().sqrt();
            Grid2d {
                width: ((width as f64 * f) as u64).max(8),
                height: ((height as f64 * f) as u64).max(8),
                diagonal,
            }
        }
        Grid3d { nx, ny, nz, full } => {
            let f = scale_factor().cbrt();
            Grid3d {
                nx: ((nx as f64 * f) as u64).max(4),
                ny: ((ny as f64 * f) as u64).max(4),
                nz: ((nz as f64 * f) as u64).max(4),
                full,
            }
        }
    };
    config.generate().to_csr()
}

/// The class of a named paper graph (for grouping rows like Table I / Table II).
pub fn graph_class(name: &str) -> GraphClass {
    TableIPreset::by_name(name)
        .map(|p| p.class)
        .unwrap_or(GraphClass::Synthetic)
}

/// Time a partitioner run, returning `(seconds, parts)`.
pub fn time_partition(
    partitioner: &dyn Partitioner,
    csr: &Csr,
    params: &PartitionParams,
) -> (f64, Vec<i32>) {
    let start = Instant::now();
    let parts = partitioner.partition(csr, params);
    (start.elapsed().as_secs_f64(), parts)
}

/// Submit one registry method as a job on a persistent session, returning the wall-clock
/// seconds of the whole submission plus the job's report. Harness-facing companion of
/// [`time_partition`] for the `Session` facade; panics on invalid jobs (harness
/// parameters are trusted).
pub fn time_job(
    session: &mut Session,
    method: Method,
    csr: &Csr,
    params: &PartitionParams,
) -> (f64, PartitionReport) {
    let start = Instant::now();
    let report = session
        .submit(&PartitionJob::new(method).with_params(*params), csr)
        .unwrap_or_else(|e| panic!("{method} failed: {e}"));
    (start.elapsed().as_secs_f64(), report)
}

/// True when the binary was invoked with `--json`: emit machine-readable
/// [`PartitionReport`] summary lines instead of (or alongside) the human tables.
pub fn json_flag() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::args().any(|a| a == "--json"))
}

/// Emit one JSON line for a completed job if `--json` was requested, tagging the report
/// with the experiment and graph it belongs to. Labels are JSON-escaped, so graph names
/// from arbitrary sources cannot corrupt the `--json` stream.
pub fn emit_json(experiment: &str, graph: &str, report: &PartitionReport) {
    if json_flag() {
        let mut line = String::from("{\"experiment\":");
        serde::write_json_str(experiment, &mut line);
        line.push_str(",\"graph\":");
        serde::write_json_str(graph, &mut line);
        line.push_str(",\"report\":");
        line.push_str(&report.to_json_summary());
        line.push('}');
        println!("{line}");
    }
}

/// Print a markdown-style table: a header row followed by data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
    println!();
}

/// Format a float with three significant decimals.
pub fn fmt(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_graphs_exist_for_representative_names() {
        for name in ["lj", "rmat_22", "uk-2002", "nlpkkt160"] {
            let csr = proxy_graph(name);
            assert!(csr.num_vertices() > 0, "{name}");
            assert!(csr.num_edges() > 0, "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "no preset proxy")]
    fn unknown_graph_name_panics() {
        proxy_graph("not-a-real-graph");
    }

    #[test]
    fn scale_factor_defaults_to_one() {
        // The env var is not set in tests.
        assert!((scale_factor() - 1.0).abs() < 1e-9 || scale_factor() > 0.0);
        assert!(scaled(1 << 20) >= 1024);
    }
}
