//! # xtrapulp-bench
//!
//! Experiment harnesses that regenerate every table and figure of the paper's evaluation
//! (§IV–V), scaled to a single machine. Each `src/bin/*.rs` binary corresponds to one
//! table or figure (see DESIGN.md §3 for the full index) and prints the same rows/series
//! the paper reports, so the *shape* of each result — which method wins, by roughly what
//! factor, where the crossovers fall — can be compared directly against the publication.
//!
//! All experiments accept the `XTRAPULP_SCALE` environment variable (a positive float,
//! default 1.0) which multiplies the default graph sizes, so the same binaries can be run
//! quickly for smoke-testing or at larger sizes for more faithful measurements.

use std::time::Instant;

use xtrapulp::{PartitionParams, Partitioner};
use xtrapulp_gen::{GraphClass, TableIPreset};
use xtrapulp_graph::Csr;

/// The scale multiplier read from `XTRAPULP_SCALE` (default 1.0, clamped to [0.05, 64]).
pub fn scale_factor() -> f64 {
    std::env::var("XTRAPULP_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.05, 64.0)
}

/// Scale a vertex count by [`scale_factor`], keeping at least 1024 vertices.
pub fn scaled(n: u64) -> u64 {
    ((n as f64 * scale_factor()) as u64).max(1024)
}

/// Generate the proxy graph for a paper graph name, with its vertex count scaled by
/// [`scale_factor`]. Panics on unknown names (the presets cover every name used by the
/// harnesses).
pub fn proxy_graph(name: &str) -> Csr {
    let preset = TableIPreset::by_name(name)
        .unwrap_or_else(|| panic!("no preset proxy for paper graph '{name}'"));
    let mut config = preset.config;
    // Scale the size field of whichever generator the preset uses.
    use xtrapulp_gen::GraphKind::*;
    config.kind = match config.kind {
        Rmat { scale, edge_factor } => {
            let extra = scale_factor().log2().round() as i32;
            Rmat {
                scale: (scale as i32 + extra).clamp(8, 26) as u32,
                edge_factor,
            }
        }
        ErdosRenyi { num_vertices, avg_degree } => ErdosRenyi {
            num_vertices: scaled(num_vertices),
            avg_degree,
        },
        RandHd { num_vertices, avg_degree } => RandHd {
            num_vertices: scaled(num_vertices),
            avg_degree,
        },
        BarabasiAlbert {
            num_vertices,
            edges_per_vertex,
        } => BarabasiAlbert {
            num_vertices: scaled(num_vertices),
            edges_per_vertex,
        },
        SmallWorld {
            num_vertices,
            k,
            rewire_probability,
        } => SmallWorld {
            num_vertices: scaled(num_vertices),
            k,
            rewire_probability,
        },
        WebCrawl {
            num_vertices,
            avg_degree,
            community_size,
        } => WebCrawl {
            num_vertices: scaled(num_vertices),
            avg_degree,
            community_size,
        },
        Grid2d { width, height, diagonal } => {
            let f = scale_factor().sqrt();
            Grid2d {
                width: ((width as f64 * f) as u64).max(8),
                height: ((height as f64 * f) as u64).max(8),
                diagonal,
            }
        }
        Grid3d { nx, ny, nz, full } => {
            let f = scale_factor().cbrt();
            Grid3d {
                nx: ((nx as f64 * f) as u64).max(4),
                ny: ((ny as f64 * f) as u64).max(4),
                nz: ((nz as f64 * f) as u64).max(4),
                full,
            }
        }
    };
    config.generate().to_csr()
}

/// The class of a named paper graph (for grouping rows like Table I / Table II).
pub fn graph_class(name: &str) -> GraphClass {
    TableIPreset::by_name(name)
        .map(|p| p.class)
        .unwrap_or(GraphClass::Synthetic)
}

/// Time a partitioner run, returning `(seconds, parts)`.
pub fn time_partition(
    partitioner: &dyn Partitioner,
    csr: &Csr,
    params: &PartitionParams,
) -> (f64, Vec<i32>) {
    let start = Instant::now();
    let parts = partitioner.partition(csr, params);
    (start.elapsed().as_secs_f64(), parts)
}

/// Print a markdown-style table: a header row followed by data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", header.join(" | "));
    println!("|{}|", header.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
    println!();
}

/// Format a float with three significant decimals.
pub fn fmt(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_graphs_exist_for_representative_names() {
        for name in ["lj", "rmat_22", "uk-2002", "nlpkkt160"] {
            let csr = proxy_graph(name);
            assert!(csr.num_vertices() > 0, "{name}");
            assert!(csr.num_edges() > 0, "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "no preset proxy")]
    fn unknown_graph_name_panics() {
        proxy_graph("not-a-real-graph");
    }

    #[test]
    fn scale_factor_defaults_to_one() {
        // The env var is not set in tests.
        assert!((scale_factor() - 1.0).abs() < 1e-9 || scale_factor() > 0.0);
        assert!(scaled(1 << 20) >= 1024);
    }
}
