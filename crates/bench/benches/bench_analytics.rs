//! Criterion benchmark backing Fig. 8: PageRank over a distributed graph under a random
//! placement vs an XtraPuLP placement.

use criterion::{criterion_group, criterion_main, Criterion};
use xtrapulp::{baselines, PartitionParams, Partitioner, XtraPulpPartitioner};
use xtrapulp_analytics::pagerank;
use xtrapulp_comm::Runtime;
use xtrapulp_gen::{GraphConfig, GraphKind};
use xtrapulp_graph::{DistGraph, Distribution};

fn bench_analytics(c: &mut Criterion) {
    let el = GraphConfig::new(
        GraphKind::WebCrawl {
            num_vertices: 1 << 13,
            avg_degree: 16,
            community_size: 256,
        },
        9,
    )
    .generate();
    let csr = el.to_csr();
    let n = el.num_vertices;
    let nranks = 4;
    let random = baselines::random_partition(n, nranks, 3);
    let params = PartitionParams {
        num_parts: nranks,
        seed: 3,
        ..Default::default()
    };
    let xtrapulp = XtraPulpPartitioner::new(nranks).partition(&csr, &params);

    let mut group = c.benchmark_group("pagerank_crawl13_4ranks");
    group.sample_size(10);
    for (name, parts) in [
        ("random_placement", &random),
        ("xtrapulp_placement", &xtrapulp),
    ] {
        let dist = Distribution::from_parts(parts);
        group.bench_function(name, |b| {
            b.iter(|| {
                Runtime::run(nranks, |ctx| {
                    let g = DistGraph::from_shared_edges(ctx, dist.clone(), n, &el.edges);
                    pagerank(ctx, &g, 10, 0.85)
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analytics);
criterion_main!(benches);
