//! Criterion micro-benchmarks of the substrate kernels: CSR construction, distributed
//! graph construction, BFS and the XtraPuLP initialisation.

use criterion::{criterion_group, criterion_main, Criterion};
use xtrapulp::{init::init_partition, PartitionParams};
use xtrapulp_comm::Runtime;
use xtrapulp_gen::{GraphConfig, GraphKind};
use xtrapulp_graph::{bfs::dist_bfs, csr_from_edges, DistGraph, Distribution};

fn bench_kernels(c: &mut Criterion) {
    let el = GraphConfig::new(
        GraphKind::Rmat {
            scale: 13,
            edge_factor: 8,
        },
        3,
    )
    .generate();
    let n = el.num_vertices;

    let mut group = c.benchmark_group("kernels_rmat13");
    group.sample_size(10);
    group.bench_function("csr_build", |b| b.iter(|| csr_from_edges(n, &el.edges)));
    group.bench_function("dist_graph_build_4ranks", |b| {
        b.iter(|| {
            Runtime::run(4, |ctx| {
                DistGraph::from_shared_edges(ctx, Distribution::Hashed, n, &el.edges).n_ghost()
            })
        })
    });
    group.bench_function("dist_bfs_4ranks", |b| {
        b.iter(|| {
            Runtime::run(4, |ctx| {
                let g = DistGraph::from_shared_edges(ctx, Distribution::Hashed, n, &el.edges);
                dist_bfs(ctx, &g, 0).reached
            })
        })
    });
    group.bench_function("xtrapulp_init_4ranks", |b| {
        b.iter(|| {
            Runtime::run(4, |ctx| {
                let g = DistGraph::from_shared_edges(ctx, Distribution::Hashed, n, &el.edges);
                init_partition(ctx, &g, &PartitionParams::with_parts(16)).len()
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
