//! Criterion benchmark backing Table III: 1-D vs 2-D SpMV under random vs XtraPuLP
//! distributions.

use criterion::{criterion_group, criterion_main, Criterion};
use xtrapulp::{baselines, PartitionParams, Partitioner, XtraPulpPartitioner};
use xtrapulp_comm::Runtime;
use xtrapulp_gen::{GraphConfig, GraphKind};
use xtrapulp_spmv::{spmv_1d_with_partition, spmv_2d, Matrix2d};

fn bench_spmv(c: &mut Criterion) {
    let el = GraphConfig::new(
        GraphKind::Rmat {
            scale: 12,
            edge_factor: 16,
        },
        13,
    )
    .generate();
    let csr = el.to_csr();
    let n = el.num_vertices;
    let edges: Vec<(u64, u64)> = csr.edges().collect();
    let nranks = 4;
    let random = baselines::random_partition(n, nranks, 3);
    let params = PartitionParams {
        num_parts: nranks,
        seed: 3,
        ..Default::default()
    };
    let xtrapulp = XtraPulpPartitioner::new(nranks).partition(&csr, &params);

    let mut group = c.benchmark_group("spmv_rmat12_4ranks_10iters");
    group.sample_size(10);
    for (name, parts) in [("rand", &random), ("xtrapulp", &xtrapulp)] {
        group.bench_function(format!("1d_{name}"), |b| {
            b.iter(|| {
                Runtime::run(nranks, |ctx| {
                    spmv_1d_with_partition(ctx, n, &edges, parts, 10)
                })
            })
        });
        group.bench_function(format!("2d_{name}"), |b| {
            b.iter(|| {
                Runtime::run(nranks, |ctx| {
                    let m = Matrix2d::build(ctx, n, &edges, parts);
                    spmv_2d(ctx, &m, 10)
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
