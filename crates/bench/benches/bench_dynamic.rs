//! Measures what warm-start repartitioning buys on a mutating graph: the same
//! social-network proxy is churned by batches of increasing size, and the warm-started
//! repartition (seeded from the pre-churn partition, short refinement schedule) is
//! compared against a from-scratch run on the identical mutated graph. The paired
//! `cold_after_*` / `warm_after_*` entries are the headline: at small churn the warm
//! path skips initialisation and most label-propagation sweeps. `apply_1pct_batch`
//! prices the incremental CSR rebuild itself.

use criterion::{criterion_group, criterion_main, Criterion};
use xtrapulp::{try_pulp_partition, try_pulp_partition_from, PartitionParams};
use xtrapulp_bench::scaled;
use xtrapulp_dynamic::{seed_from_previous, DynamicGraph, UpdateBatch};
use xtrapulp_gen::{generate_stream, GraphConfig, GraphKind, StreamKind, UpdateStreamConfig};

fn bench_dynamic(c: &mut Criterion) {
    let base = GraphConfig::new(
        GraphKind::BarabasiAlbert {
            num_vertices: scaled(1 << 14),
            edges_per_vertex: 8,
        },
        42,
    )
    .generate();
    let csr = base.to_csr();
    let params = PartitionParams {
        num_parts: 8,
        seed: 3,
        ..Default::default()
    };
    let previous = try_pulp_partition(&csr, &params).expect("valid params");
    let m = csr.num_edges();

    let mut group = c.benchmark_group("dynamic_repartition_ba14_8parts");
    group.sample_size(10);

    group.bench_function("cold_from_scratch", |b| {
        b.iter(|| try_pulp_partition(&csr, &params).unwrap())
    });

    for churn_pct in [0.1f64, 1.0, 5.0] {
        let ops = ((m as f64 * churn_pct / 100.0) as usize).max(2);
        let stream = generate_stream(
            &base,
            &UpdateStreamConfig {
                kind: StreamKind::RandomChurn {
                    ops_per_batch: ops,
                    delete_fraction: 0.5,
                },
                num_batches: 1,
                seed: 7,
            },
        );
        let mut graph = DynamicGraph::new(csr.clone());
        let batch = UpdateBatch::from_ops(stream.batch_ops(0));
        let delta = graph.validate(&batch).expect("generated streams are valid");
        graph.apply_validated(&delta);
        let seed = seed_from_previous(&previous, &delta);
        let mutated = graph.csr().clone();

        group.bench_function(format!("warm_after_{churn_pct}pct_churn"), |b| {
            b.iter(|| try_pulp_partition_from(&mutated, &params, &seed).unwrap())
        });
        group.bench_function(format!("cold_after_{churn_pct}pct_churn"), |b| {
            b.iter(|| try_pulp_partition(&mutated, &params).unwrap())
        });
    }

    // The price of the incremental rebuild itself (validate + apply one 1% batch).
    let ops = ((m as f64 * 0.01) as usize).max(2);
    let stream = generate_stream(
        &base,
        &UpdateStreamConfig {
            kind: StreamKind::RandomChurn {
                ops_per_batch: ops,
                delete_fraction: 0.5,
            },
            num_batches: 1,
            seed: 19,
        },
    );
    let batch = UpdateBatch::from_ops(stream.batch_ops(0));
    group.bench_function("apply_1pct_batch", |b| {
        b.iter(|| {
            let mut graph = DynamicGraph::new(csr.clone());
            graph.apply(&batch).unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_dynamic);
criterion_main!(benches);
