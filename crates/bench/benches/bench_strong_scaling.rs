//! Criterion benchmark backing Figs. 1-3: XtraPuLP wall time at increasing rank counts on
//! a fixed graph (strong scaling shape).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xtrapulp::{PartitionParams, Partitioner, XtraPulpPartitioner};
use xtrapulp_gen::{GraphConfig, GraphKind};

fn bench_strong_scaling(c: &mut Criterion) {
    let csr = GraphConfig::new(
        GraphKind::WebCrawl {
            num_vertices: 1 << 14,
            avg_degree: 16,
            community_size: 256,
        },
        5,
    )
    .generate()
    .to_csr();
    let params = PartitionParams {
        num_parts: 32,
        seed: 3,
        ..Default::default()
    };
    let mut group = c.benchmark_group("strong_scaling_crawl14_32parts");
    group.sample_size(10);
    for nranks in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(nranks),
            &nranks,
            |b, &nranks| b.iter(|| XtraPulpPartitioner::new(nranks).partition(&csr, &params)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_strong_scaling);
criterion_main!(benches);
