//! Measures what the frontier-driven sweep engine buys over the legacy full-sweep
//! schedule (`PartitionParams::sweep_mode`), on the serial PuLP engine where the sweep
//! loop is the entire cost:
//!
//! * `cold_full_*` vs `cold_frontier_*` — the same cold partition under both modes, on
//!   a community-structured webcrawl proxy (frontiers collapse; the headline case) and
//!   a hub-skewed Barabási–Albert proxy (the adversarial case: frontiers stay large).
//! * `warm_blind` vs `warm_touched` — a warm start without delta information
//!   (conservative whole-graph frontier seed) against one whose frontier is scoped to
//!   the delta-touched neighbourhood, which is where the `O(active work)` property
//!   shows: the touched run scores a few thousand vertices instead of the graph.
//!
//! The `perf_smoke` binary checks the same quantities against a recorded baseline in
//! CI; `fig_dynamic --json` and `fig1_strong_scaling --json` report them for the
//! distributed engine.

use criterion::{criterion_group, criterion_main, Criterion};
use xtrapulp::{
    try_pulp_partition_from_with_stats, try_pulp_partition_with_stats, PartitionParams, SweepMode,
};
use xtrapulp_bench::scaled;
use xtrapulp_gen::{GraphConfig, GraphKind};

fn bench_sweep(c: &mut Criterion) {
    let graphs = vec![
        (
            "webcrawl14",
            GraphConfig::new(
                GraphKind::WebCrawl {
                    num_vertices: scaled(1 << 14),
                    avg_degree: 16,
                    community_size: 512,
                },
                77,
            )
            .generate()
            .to_csr(),
        ),
        (
            "ba14",
            GraphConfig::new(
                GraphKind::BarabasiAlbert {
                    num_vertices: scaled(1 << 14),
                    edges_per_vertex: 8,
                },
                77,
            )
            .generate()
            .to_csr(),
        ),
    ];

    let mut group = c.benchmark_group("sweep_engine_16parts");
    group.sample_size(10);
    for (name, csr) in &graphs {
        for (label, mode) in [("full", SweepMode::Full), ("frontier", SweepMode::Frontier)] {
            let params = PartitionParams {
                num_parts: 16,
                seed: 29,
                sweep_mode: mode,
                ..Default::default()
            };
            group.bench_function(format!("cold_{label}_{name}"), |b| {
                b.iter(|| try_pulp_partition_with_stats(csr, &params).unwrap())
            });
        }
    }

    // Warm starts on the webcrawl proxy: blind (no delta info) vs touched-scoped.
    let (name, csr) = &graphs[0];
    let params = PartitionParams {
        num_parts: 16,
        seed: 29,
        ..Default::default()
    };
    let (seed_parts, _) = try_pulp_partition_with_stats(csr, &params).expect("valid params");
    let touched: Vec<u64> = (0..32u64).collect();
    group.bench_function(format!("warm_blind_{name}"), |b| {
        b.iter(|| try_pulp_partition_from_with_stats(csr, &params, &seed_parts, None).unwrap())
    });
    group.bench_function(format!("warm_touched_{name}"), |b| {
        b.iter(|| {
            try_pulp_partition_from_with_stats(csr, &params, &seed_parts, Some(&touched)).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
