//! Measures what the `Session` facade's runtime reuse buys: partitioning the same
//! scale-12 R-MAT graph repeatedly through (a) the legacy one-shot path, which spawns
//! and tears down a fresh rank runtime per call, versus (b) a persistent `Session`
//! reusing its rank threads, and (c) the pure runtime overhead with a trivial job, which
//! isolates spawn/teardown cost from the partitioning work itself.

use criterion::{criterion_group, criterion_main, Criterion};
use xtrapulp::{PartitionParams, Partitioner, XtraPulpPartitioner};
use xtrapulp_api::Session;
use xtrapulp_comm::Runtime;
use xtrapulp_gen::{GraphConfig, GraphKind};

fn bench_api_overhead(c: &mut Criterion) {
    let csr = GraphConfig::new(
        GraphKind::Rmat {
            scale: 12,
            edge_factor: 16,
        },
        7,
    )
    .generate()
    .to_csr();
    let params = PartitionParams {
        num_parts: 16,
        seed: 3,
        ..Default::default()
    };
    let nranks = 4;

    let mut group = c.benchmark_group("api_overhead_rmat12_16parts");
    group.sample_size(10);

    // Legacy path: every call pays Runtime::new + thread teardown.
    group.bench_function("one_shot_runtime_per_call", |b| {
        b.iter(|| XtraPulpPartitioner::new(nranks).partition(&csr, &params))
    });

    // Facade path: the session's rank threads are spawned once, outside the loop.
    let mut session = Session::new(nranks).expect("valid rank count");
    group.bench_function("reused_session", |b| {
        b.iter(|| {
            session
                .partition(&csr, &params)
                .expect("valid params")
                .parts
        })
    });

    // The overhead in isolation: a no-op collective job per call vs on a reused runtime.
    group.bench_function("spawn_teardown_noop_job", |b| {
        b.iter(|| Runtime::run(nranks, |ctx| ctx.rank()))
    });
    let mut runtime = Runtime::new(nranks);
    group.bench_function("reused_runtime_noop_job", |b| {
        b.iter(|| runtime.execute(|ctx| ctx.rank()))
    });

    group.finish();
}

criterion_group!(benches, bench_api_overhead);
criterion_main!(benches);
