//! Criterion benchmark backing Table II / Fig. 6: partitioning one small-world proxy
//! graph into 16 parts with each partitioner.

use criterion::{criterion_group, criterion_main, Criterion};
use xtrapulp::{PartitionParams, Partitioner, PulpPartitioner, XtraPulpPartitioner};
use xtrapulp_gen::{GraphConfig, GraphKind};
use xtrapulp_multilevel::{LpCoarsenKwayPartitioner, MetisLikePartitioner};

fn bench_partitioners(c: &mut Criterion) {
    let csr = GraphConfig::new(
        GraphKind::Rmat {
            scale: 13,
            edge_factor: 16,
        },
        7,
    )
    .generate()
    .to_csr();
    let params = PartitionParams {
        num_parts: 16,
        seed: 3,
        ..Default::default()
    };
    let mut group = c.benchmark_group("partitioners_rmat13_16parts");
    group.sample_size(10);
    group.bench_function("xtrapulp_4ranks", |b| {
        b.iter(|| XtraPulpPartitioner::new(4).partition(&csr, &params))
    });
    group.bench_function("pulp", |b| {
        b.iter(|| PulpPartitioner.partition(&csr, &params))
    });
    group.bench_function("metis_like", |b| {
        b.iter(|| MetisLikePartitioner::default().partition(&csr, &params))
    });
    group.bench_function("lp_coarsen_kway", |b| {
        b.iter(|| LpCoarsenKwayPartitioner::default().partition(&csr, &params))
    });
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
