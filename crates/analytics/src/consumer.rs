//! The incremental analytics consumer: a read-side subscriber of the serving
//! pipeline's epoch stream.
//!
//! [`AnalyticsConsumer`] owns its own rank runtime, a topology replica (a [`Csr`] plus
//! per-rank [`DistGraph`]s) and the warm state of three analytics — PageRank,
//! connected components and coreness. Instead of redistributing the graph and
//! recomputing from scratch every epoch, it ingests each epoch's
//! [`GraphDelta`](xtrapulp_graph::GraphDelta) stream (and the published partition it
//! rode in on) and repairs its state with the kernels in [`crate::incremental`],
//! falling back to a cold recomputation only when the [`WarmPolicy`] says the epoch's
//! churn is too large for the repair to pay off — the same warm/cold self-stabilising
//! shape `xtrapulp_api::DynamicSession` uses for the partition itself.
//!
//! [`AnalyticsSubscriber`] binds a consumer to an
//! [`EpochStore`](xtrapulp_serve::EpochStore): each [`poll`](AnalyticsSubscriber::poll)
//! blocks for the next published epoch ([`wait_for_epoch`]), fetches the delta chain
//! from the store's bounded history ([`deltas_since`]) and feeds the consumer — the
//! read-side analogue of RFP-style remote fetching, where consumers pull exactly the
//! state that changed instead of the producer redistributing everything.
//!
//! [`wait_for_epoch`]: xtrapulp_serve::EpochStore::wait_for_epoch
//! [`deltas_since`]: xtrapulp_serve::EpochStore::deltas_since

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use xtrapulp_comm::Runtime;
use xtrapulp_graph::{Csr, DistGraph, Distribution, GlobalId, GraphDelta, LocalId};
use xtrapulp_serve::EpochStore;

use crate::incremental::{
    kcore_tighten, pagerank_resume, wcc_propagate, wcc_repair, PagerankWork, WccWork,
};

/// When the consumer repairs warm state and when it recomputes from scratch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmPolicy {
    /// Fall back to a cold recomputation when an epoch touches more than this
    /// fraction of the graph's vertices (insert/delete endpoints plus additions).
    pub max_churn_fraction: f64,
    /// Rebuild the per-rank graphs around the *published* partition (and recompute
    /// cold) once more than this fraction of vertices has migrated away from the
    /// placement the replica was built with — the consumer's answer to an
    /// accumulating [`MigrationDiff`](xtrapulp_serve::MigrationDiff).
    pub redistribute_moved_fraction: f64,
    /// PageRank damping factor.
    pub damping: f64,
    /// PageRank convergence tolerance (global L1 residual).
    pub tolerance: f64,
    /// PageRank iteration cap per epoch.
    pub max_iterations: usize,
}

impl Default for WarmPolicy {
    fn default() -> Self {
        WarmPolicy {
            max_churn_fraction: 0.05,
            redistribute_moved_fraction: 0.25,
            damping: 0.85,
            tolerance: 1e-9,
            max_iterations: 400,
        }
    }
}

/// What one ingested epoch cost the consumer — the incremental-vs-cold evidence the
/// bench and the acceptance tests assert on.
#[derive(Debug, Clone, Serialize)]
pub struct EpochReport {
    /// The graph epoch this report describes.
    pub epoch: u64,
    /// Whether the warm (repair) path ran, as opposed to a cold recomputation.
    pub warm: bool,
    /// Whether the per-rank graphs were rebuilt around the published partition.
    pub redistributed: bool,
    /// Fraction of vertices the epoch's deltas touched.
    pub churn_fraction: f64,
    /// Fraction of vertices whose published part differs from the replica's placement.
    pub moved_fraction: f64,
    /// PageRank supersteps this epoch.
    pub pagerank_iterations: u64,
    /// Active vertices PageRank scored (summed over iterations and ranks).
    pub pagerank_vertices_scored: u64,
    /// Whether PageRank reached its residual tolerance.
    pub pagerank_converged: bool,
    /// Min-label propagation sweeps this epoch.
    pub wcc_sweeps: u64,
    /// Components a deletion forced a BFS connectivity check for.
    pub wcc_components_checked: u64,
    /// Labels reset because a deletion split their component.
    pub wcc_reset_vertices: u64,
    /// h-index tightening rounds this epoch.
    pub kcore_rounds: u64,
    /// Wall-clock seconds to ingest the epoch (apply deltas + update every analytic).
    pub seconds: f64,
    /// Bytes exchanged between ranks while ingesting the epoch.
    pub comm_bytes: u64,
}

impl EpochReport {
    /// One JSON object per epoch, for machine-readable bench output.
    /// Infallible by construction: every field is a plain number or bool and the
    /// writer appends to an in-memory `String`.
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }

    fn no_op(epoch: u64, moved_fraction: f64, seconds: f64) -> EpochReport {
        EpochReport {
            epoch,
            warm: true,
            redistributed: false,
            churn_fraction: 0.0,
            moved_fraction,
            pagerank_iterations: 0,
            pagerank_vertices_scored: 0,
            pagerank_converged: true,
            wcc_sweeps: 0,
            wcc_components_checked: 0,
            wcc_reset_vertices: 0,
            kcore_rounds: 0,
            seconds,
            comm_bytes: 0,
        }
    }
}

/// What the most recent from-scratch recomputation cost — the warm-vs-cold reference
/// the bench and acceptance tests compare [`EpochReport`] work counters against.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ColdWork {
    /// PageRank supersteps of the cold run.
    pub pagerank_iterations: u64,
    /// Vertices the cold PageRank scored (every vertex, every iteration).
    pub pagerank_vertices_scored: u64,
    /// Min-label propagation sweeps of the cold run.
    pub wcc_sweeps: u64,
    /// h-index tightening rounds of the cold run (seeded from degrees).
    pub kcore_rounds: u64,
}

/// One rank's replica and warm state; lives on the consumer, handed into the rank
/// closure by reference each epoch.
struct RankState {
    graph: DistGraph,
    pagerank: Vec<f64>,
    labels: Vec<u64>,
    core: Vec<u64>,
}

/// The delta-aware analytics consumer. See the module docs for the design.
pub struct AnalyticsConsumer {
    runtime: Runtime,
    nranks: usize,
    states: Vec<RankState>,
    /// Full-topology replica, evolved by the same deltas as the per-rank graphs; the
    /// redistribution path rebuilds the rank graphs from it.
    csr: Csr,
    /// The distribution the rank graphs were built with (grown alongside the graph).
    dist: Distribution,
    policy: WarmPolicy,
    epoch: u64,
    /// Work of the most recent cold recomputation (epoch 0, a churn fallback or a
    /// redistribution) — the reference warm epochs are measured against.
    cold: ColdWork,
}

/// Map a published part id to the rank that will own its vertices in the replica
/// (parts may outnumber the consumer's ranks).
fn part_to_rank(part: i32, nranks: usize) -> i32 {
    part.max(0) % nranks as i32
}

impl AnalyticsConsumer {
    /// Build a consumer with its own `nranks`-rank runtime, replicating `csr`
    /// distributed by `parts` (the published partition), and compute the initial
    /// (cold) analytics state.
    pub fn new(nranks: usize, csr: Csr, parts: &[i32], policy: WarmPolicy) -> AnalyticsConsumer {
        assert!(nranks > 0, "an analytics consumer needs at least one rank");
        let placement: Vec<i32> = parts.iter().map(|&p| part_to_rank(p, nranks)).collect();
        let dist = Distribution::from_parts(&placement);
        let mut runtime = Runtime::new(nranks);
        let per_rank = {
            let csr = &csr;
            let dist = &dist;
            runtime.execute(|ctx| {
                let graph = DistGraph::from_csr(ctx, dist.clone(), csr);
                cold_state(ctx, graph, &policy)
            })
        };
        let mut states = Vec::with_capacity(nranks);
        let mut cold = ColdWork::default();
        for (state, pr, sweeps, rounds) in per_rank {
            if states.is_empty() {
                cold = ColdWork {
                    pagerank_iterations: pr.iterations,
                    pagerank_vertices_scored: pr.vertices_scored,
                    wcc_sweeps: sweeps,
                    kcore_rounds: rounds,
                };
            }
            states.push(state);
        }
        AnalyticsConsumer {
            runtime,
            nranks,
            states,
            csr,
            dist,
            policy,
            epoch: 0,
            cold,
        }
    }

    /// The work of the most recent from-scratch recomputation — the reference warm
    /// epochs are measured against.
    pub fn cold_reference(&self) -> ColdWork {
        self.cold
    }

    /// The epoch the consumer's state corresponds to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Re-anchor the consumer to `epoch` without touching its state — for binding a
    /// freshly built consumer to a store whose initial published epoch is not 0.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The consumer's live topology replica.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// The warm/cold policy in force.
    pub fn policy(&self) -> &WarmPolicy {
        &self.policy
    }

    /// Ingest one published epoch: `deltas` are the graph mutations since the epoch
    /// the consumer currently holds (in application order), `parts` the published
    /// partition of the new epoch. Repairs the analytics state warm when the policy
    /// allows, recomputes cold otherwise, and reports the work either way.
    pub fn ingest_epoch(
        &mut self,
        epoch: u64,
        deltas: &[GraphDelta],
        parts: &[i32],
    ) -> EpochReport {
        let _span = xtrapulp_obs::span_with("analytics_epoch", epoch);
        // lint: nondeterministic-ok — wall-clock feeds EpochReport timing
        // telemetry only; kernel results never depend on it.
        let start = Instant::now();
        let new_n = deltas
            .last()
            .map(|d| d.new_n())
            .unwrap_or(self.csr.num_vertices() as u64);

        // Grow the replica's distribution over the new tail first (the same hashing
        // `DistGraph::apply_delta` uses), so ownership queries below cover new ids.
        self.dist = self.dist.grown(new_n, self.nranks);

        // Accumulated migration between the replica's placement and the published
        // partition (the consumer-side view of the epoch stream's MigrationDiff).
        let moved = (0..new_n.min(parts.len() as u64))
            .filter(|&v| {
                self.dist.owner(v, new_n, self.nranks) as i32
                    != part_to_rank(parts[v as usize], self.nranks)
            })
            .count();
        let moved_fraction = moved as f64 / new_n.max(1) as f64;

        if deltas.is_empty() && moved_fraction <= self.policy.redistribute_moved_fraction {
            // Empty-delta fast path: the topology is unchanged, so every analytic is
            // still exact — a below-threshold placement drift costs nothing either.
            self.epoch = epoch;
            return EpochReport::no_op(epoch, moved_fraction, start.elapsed().as_secs_f64());
        }

        let mut touched: Vec<GlobalId> = deltas
            .iter()
            .flat_map(|d| d.touched_including_added())
            .collect();
        touched.sort_unstable();
        touched.dedup();
        let churn_fraction = touched.len() as f64 / new_n.max(1) as f64;

        for delta in deltas {
            self.csr = self.csr.apply_delta(delta);
        }

        let redistribute = moved_fraction > self.policy.redistribute_moved_fraction;
        let warm = !redistribute && churn_fraction <= self.policy.max_churn_fraction;

        let policy = self.policy;
        let (new_states, mut report) = if redistribute {
            // The published partition drifted too far from the replica's placement:
            // rebuild the rank graphs around it (restoring analytics locality) and
            // recompute cold — warm state does not survive an ownership reshuffle.
            let placement: Vec<i32> = parts
                .iter()
                .map(|&p| part_to_rank(p, self.nranks))
                .collect();
            self.dist = Distribution::from_parts(&placement);
            let csr = &self.csr;
            let dist = &self.dist;
            let per_rank = self.runtime.execute(|ctx| {
                let bytes_before = ctx.stats().bytes_sent();
                let graph = DistGraph::from_csr(ctx, dist.clone(), csr);
                let (state, pr, sweeps, rounds) = cold_state(ctx, graph, &policy);
                let bytes = ctx.stats().bytes_sent_since(bytes_before);
                (state, pr, sweeps, rounds, bytes)
            });
            collect_cold(epoch, per_rank, churn_fraction, moved_fraction)
        } else {
            let states = &self.states;
            let touched = &touched;
            let deleted: Vec<(GlobalId, GlobalId)> = {
                let mut d: Vec<_> = deltas.iter().flat_map(|d| d.deleted_edges()).collect();
                d.sort_unstable();
                d.dedup();
                d
            };
            let inserted_bound: u64 = deltas.iter().map(|d| d.num_insert_edges()).sum();
            let per_rank = self.runtime.execute(|ctx| {
                let bytes_before = ctx.stats().bytes_sent();
                let old = &states[ctx.rank()];
                // This branch is only reached with a non-empty delta chain (the empty
                // case is the fast path or a redistribution), so the first apply
                // replaces what would otherwise be a full-replica clone.
                let graph = match deltas.split_first() {
                    Some((first, rest)) => {
                        let mut graph = old.graph.apply_delta(ctx, first);
                        for delta in rest {
                            graph = graph.apply_delta(ctx, delta);
                        }
                        graph
                    }
                    None => old.graph.clone(),
                };
                let mut state = remap_state(old, graph, inserted_bound);
                let outcome = if warm {
                    let pr = pagerank_resume(
                        ctx,
                        &state.graph,
                        &mut state.pagerank,
                        Some(touched),
                        policy.damping,
                        policy.tolerance,
                        policy.max_iterations,
                    );
                    let wcc = wcc_repair(ctx, &state.graph, &mut state.labels, &deleted);
                    let rounds = kcore_tighten(ctx, &state.graph, &mut state.core, usize::MAX);
                    (pr, wcc, rounds)
                } else {
                    let (cold, pr, sweeps, rounds) = cold_state(ctx, state.graph, &policy);
                    state = cold;
                    (
                        pr,
                        WccWork {
                            sweeps,
                            ..WccWork::default()
                        },
                        rounds,
                    )
                };
                let bytes = ctx.stats().bytes_sent_since(bytes_before);
                (state, outcome, bytes)
            });
            let mut states = Vec::with_capacity(per_rank.len());
            let mut pr = PagerankWork::default();
            let mut wcc = WccWork::default();
            let mut rounds = 0u64;
            let mut bytes = 0u64;
            for (state, (pr_r, wcc_r, rounds_r), bytes_r) in per_rank {
                states.push(state);
                // The work counters are globally reduced inside the kernels, so every
                // rank reports identical values; keep rank 0's.
                if states.len() == 1 {
                    pr = pr_r;
                    wcc = wcc_r;
                    rounds = rounds_r;
                }
                bytes += bytes_r;
            }
            let report = EpochReport {
                epoch,
                warm,
                redistributed: false,
                churn_fraction,
                moved_fraction,
                pagerank_iterations: pr.iterations,
                pagerank_vertices_scored: pr.vertices_scored,
                pagerank_converged: pr.converged,
                wcc_sweeps: wcc.sweeps,
                wcc_components_checked: wcc.components_checked,
                wcc_reset_vertices: wcc.reset_vertices,
                kcore_rounds: rounds,
                seconds: 0.0,
                comm_bytes: bytes,
            };
            (states, report)
        };

        self.states = new_states;
        self.epoch = epoch;
        if !report.warm {
            self.cold = ColdWork {
                pagerank_iterations: report.pagerank_iterations,
                pagerank_vertices_scored: report.pagerank_vertices_scored,
                wcc_sweeps: report.wcc_sweeps,
                kcore_rounds: report.kcore_rounds,
            };
        }
        report.seconds = start.elapsed().as_secs_f64();
        xtrapulp_obs::registry::histogram("analytics_epoch_nanos").record_duration(start.elapsed());
        report
    }

    /// The PageRank of every vertex, gathered to a global vector (identical on every
    /// call until the next ingested epoch).
    pub fn pagerank_global(&mut self) -> Vec<f64> {
        let n = self.csr.num_vertices();
        let states = &self.states;
        let per_rank = self.runtime.execute(|ctx| {
            let st = &states[ctx.rank()];
            (0..st.graph.n_owned())
                .map(|v| (st.graph.global_id(v as LocalId), st.pagerank[v]))
                .collect::<Vec<_>>()
        });
        scatter(per_rank, n, 0.0)
    }

    /// The component label (smallest global id in the component) of every vertex.
    pub fn wcc_global(&mut self) -> Vec<u64> {
        let n = self.csr.num_vertices();
        let states = &self.states;
        let per_rank = self.runtime.execute(|ctx| {
            let st = &states[ctx.rank()];
            (0..st.graph.n_owned())
                .map(|v| (st.graph.global_id(v as LocalId), st.labels[v]))
                .collect::<Vec<_>>()
        });
        scatter(per_rank, n, 0)
    }

    /// The exact coreness of every vertex.
    pub fn coreness_global(&mut self) -> Vec<u64> {
        let n = self.csr.num_vertices();
        let states = &self.states;
        let per_rank = self.runtime.execute(|ctx| {
            let st = &states[ctx.rank()];
            (0..st.graph.n_owned())
                .map(|v| (st.graph.global_id(v as LocalId), st.core[v]))
                .collect::<Vec<_>>()
        });
        scatter(per_rank, n, 0)
    }
}

fn scatter<T: Copy>(per_rank: Vec<Vec<(GlobalId, T)>>, n: usize, default: T) -> Vec<T> {
    let mut out = vec![default; n];
    for pairs in per_rank {
        for (g, v) in pairs {
            out[g as usize] = v;
        }
    }
    out
}

/// Cold recomputation of every analytic on `graph`; also the epoch-0 initialiser.
fn cold_state(
    ctx: &xtrapulp_comm::RankCtx,
    graph: DistGraph,
    policy: &WarmPolicy,
) -> (RankState, PagerankWork, u64, u64) {
    let n_owned = graph.n_owned();
    let uniform = 1.0 / graph.global_n().max(1) as f64;
    let mut pagerank = vec![uniform; n_owned];
    let pr = pagerank_resume(
        ctx,
        &graph,
        &mut pagerank,
        None,
        policy.damping,
        policy.tolerance,
        policy.max_iterations,
    );
    let mut labels: Vec<u64> = (0..n_owned)
        .map(|v| graph.global_id(v as LocalId))
        .collect();
    let sweeps = wcc_propagate(ctx, &graph, &mut labels);
    let mut core: Vec<u64> = (0..n_owned)
        .map(|v| graph.degree_owned(v as LocalId))
        .collect();
    let rounds = kcore_tighten(ctx, &graph, &mut core, usize::MAX);
    (
        RankState {
            graph,
            pagerank,
            labels,
            core,
        },
        pr,
        sweeps,
        rounds,
    )
}

/// Carry one rank's warm state over to the delta-evolved `graph`: PageRank values are
/// rescaled by the vertex-count ratio (the teleport term's exact response to growth),
/// labels and coreness bounds are copied, and new vertices get their cold seeds
/// (uniform rank, own-id label, degree bound). `inserted_bound` widens the coreness
/// bound: a batch of `k` edge insertions raises any coreness by at most `k`.
fn remap_state(old: &RankState, graph: DistGraph, inserted_bound: u64) -> RankState {
    let n_owned = graph.n_owned();
    let scale = old.graph.global_n().max(1) as f64 / graph.global_n().max(1) as f64;
    let uniform = 1.0 / graph.global_n().max(1) as f64;
    let mut pagerank = vec![uniform; n_owned];
    let mut labels = vec![0u64; n_owned];
    let mut core = vec![0u64; n_owned];
    for v in 0..n_owned {
        let g = graph.global_id(v as LocalId);
        let degree = graph.degree_owned(v as LocalId);
        match old.graph.local_id(g).filter(|&l| old.graph.is_owned(l)) {
            Some(l) => {
                let l = l as usize;
                pagerank[v] = old.pagerank[l] * scale;
                labels[v] = old.labels[l];
                core[v] = (old.core[l] + inserted_bound).min(degree);
            }
            None => {
                labels[v] = g;
                core[v] = degree;
            }
        }
    }
    RankState {
        graph,
        pagerank,
        labels,
        core,
    }
}

/// Assemble the cold/redistributed epoch report from per-rank results.
#[allow(clippy::type_complexity)]
fn collect_cold(
    epoch: u64,
    per_rank: Vec<(RankState, PagerankWork, u64, u64, u64)>,
    churn_fraction: f64,
    moved_fraction: f64,
) -> (Vec<RankState>, EpochReport) {
    let mut states = Vec::with_capacity(per_rank.len());
    let mut pr = PagerankWork::default();
    let mut sweeps = 0u64;
    let mut rounds = 0u64;
    let mut bytes = 0u64;
    for (state, pr_r, sweeps_r, rounds_r, bytes_r) in per_rank {
        states.push(state);
        if states.len() == 1 {
            pr = pr_r;
            sweeps = sweeps_r;
            rounds = rounds_r;
        }
        bytes += bytes_r;
    }
    let report = EpochReport {
        epoch,
        warm: false,
        redistributed: true,
        churn_fraction,
        moved_fraction,
        pagerank_iterations: pr.iterations,
        pagerank_vertices_scored: pr.vertices_scored,
        pagerank_converged: pr.converged,
        wcc_sweeps: sweeps,
        wcc_components_checked: 0,
        wcc_reset_vertices: 0,
        kcore_rounds: rounds,
        seconds: 0.0,
        comm_bytes: bytes,
    };
    (states, report)
}

/// Why a subscriber could not ingest the next epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscriberError {
    /// The consumer lagged beyond the store's bounded delta history; the chain back
    /// to its held epoch has been evicted and only a full rebuild can recover.
    Lagged {
        /// The epoch the consumer holds.
        held: u64,
        /// The store's current epoch.
        current: u64,
    },
}

impl std::fmt::Display for SubscriberError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubscriberError::Lagged { held, current } => write!(
                f,
                "analytics consumer lagged beyond the store's delta history \
                 (holds epoch {held}, store is at {current}); rebuild required"
            ),
        }
    }
}

impl std::error::Error for SubscriberError {}

/// An [`AnalyticsConsumer`] bound to an [`EpochStore`]: poll to block for the next
/// published epoch and ingest it.
pub struct AnalyticsSubscriber {
    store: Arc<EpochStore>,
    consumer: AnalyticsConsumer,
    held: u64,
}

impl AnalyticsSubscriber {
    /// Bind `consumer` (whose state must correspond to an epoch the store has
    /// published — normally the epoch-0 graph the pipeline was spawned with) to the
    /// store.
    pub fn new(store: Arc<EpochStore>, consumer: AnalyticsConsumer) -> AnalyticsSubscriber {
        let held = consumer.epoch();
        AnalyticsSubscriber {
            store,
            consumer,
            held,
        }
    }

    /// Block up to `timeout` for an epoch newer than the held one, ingest every delta
    /// between them, and return the epoch's report — or `Ok(None)` if nothing newer
    /// was published within the timeout.
    pub fn poll(&mut self, timeout: Duration) -> Result<Option<EpochReport>, SubscriberError> {
        let Some(snapshot) = self.store.wait_for_epoch(self.held + 1, timeout) else {
            return Ok(None);
        };
        // Pin the chain to the snapshot actually held: epochs published after the
        // wait returned are ingested by the next poll, against *their* partitions.
        let deltas = self.store.deltas_between(self.held, snapshot.epoch).ok_or(
            SubscriberError::Lagged {
                held: self.held,
                current: snapshot.epoch,
            },
        )?;
        let report = self
            .consumer
            .ingest_epoch(snapshot.epoch, &deltas, &snapshot.parts);
        self.held = snapshot.epoch;
        Ok(Some(report))
    }

    /// The epoch the subscriber has ingested up to.
    pub fn held_epoch(&self) -> u64 {
        self.held
    }

    /// The wrapped consumer (e.g. to gather global analytics vectors).
    pub fn consumer_mut(&mut self) -> &mut AnalyticsConsumer {
        &mut self.consumer
    }

    /// Unbind, returning the consumer.
    pub fn into_consumer(self) -> AnalyticsConsumer {
        self.consumer
    }
}
