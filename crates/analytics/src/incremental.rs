//! Warm (delta-aware) variants of the analytics kernels.
//!
//! The suite in [`crate::suite`] recomputes every analytic from scratch, which is the
//! right baseline for the paper's Fig. 8 comparison but wasteful in a serving setting
//! where the graph mutates by small deltas: after a ≤1% churn epoch, the previous
//! PageRank vector is already within a hair of the new fixed point, the previous
//! component labels are correct everywhere no deletion split a component, and the
//! previous coreness values are still valid upper bounds. The kernels here exploit
//! exactly that:
//!
//! * [`pagerank_resume`] — resume power iteration from the previous rank vector and
//!   score only an *active region* seeded from the delta-touched vertices, expanding
//!   it along edges wherever a scored vertex's outgoing contribution still changes
//!   by more than a threshold derived from the convergence tolerance. A cold run is
//!   the same loop with every vertex active.
//! * [`wcc_repair`] — repair the previous component labels: insertions are handled by
//!   the seeded min-label propagation itself (labels merge downhill), deletions by a
//!   connectivity re-check (one distributed BFS per affected component, from an
//!   endpoint of a deleted edge) that resets exactly the components a deletion
//!   actually split.
//! * [`kcore_tighten`] — run the h-index peeling of
//!   [`kcore_approx`](crate::algorithms::kcore_approx) seeded from any pointwise
//!   *upper bound* of the true coreness (the previous epoch's values, bumped by the
//!   number of inserted edges and capped by the new degree). The iteration
//!   `x ← min(x, H(x))` converges to the exact coreness from any such bound, so warm
//!   and cold runs agree exactly — warm ones just start much closer.
//!
//! All kernels are collectives: every rank of the runtime must call them with the same
//! arguments (seed sets and deleted-edge lists are replicated, as they come from the
//! replicated [`GraphDelta`](xtrapulp_graph::GraphDelta) stream).

use std::collections::{BTreeMap, BTreeSet};

use xtrapulp_comm::RankCtx;
use xtrapulp_graph::bfs::{dist_bfs, UNREACHED};
use xtrapulp_graph::{DistGraph, GlobalId, LocalId};

/// Work accounting of one [`pagerank_resume`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PagerankWork {
    /// Power-iteration supersteps executed.
    pub iterations: u64,
    /// Active vertices scored, summed over iterations and ranks — the real unit of
    /// PageRank work (a cold run scores `global_n` per iteration).
    pub vertices_scored: u64,
    /// Whether the global L1 residual fell below the tolerance (as opposed to the
    /// iteration cap stopping the run).
    pub converged: bool,
}

/// Resume distributed PageRank from `ranks` (the owned values of this rank, one per
/// owned vertex), scoring only the active region.
///
/// `seeds = None` runs cold: every vertex active every iteration, stopping when the
/// global L1 residual drops below `tol`. `seeds = Some(touched)` (global ids,
/// replicated) activates the touched vertices and their one-hop neighbourhoods; a
/// scored vertex re-activates its neighbours (remote ones via an all-to-all) only
/// while its *outgoing contribution* still changes materially, so the active region
/// grows exactly as far as the delta's influence actually reaches and collapses as
/// the perturbation damps out. Warm runs both score fewer vertices per iteration and
/// converge in fewer iterations (they start near the fixed point); the savings grow
/// with graph size, since the influence ball of a small delta stops covering the
/// whole graph.
pub fn pagerank_resume(
    ctx: &RankCtx,
    graph: &DistGraph,
    ranks: &mut [f64],
    seeds: Option<&[GlobalId]>,
    damping: f64,
    tol: f64,
    max_iters: usize,
) -> PagerankWork {
    let n_owned = graph.n_owned();
    assert_eq!(ranks.len(), n_owned, "one rank value per owned vertex");
    let n = graph.global_n().max(1) as f64;
    // Per-*edge* activation threshold: a scored vertex re-activates its neighbours
    // only when the change of its outgoing contribution (`damping * delta / degree`)
    // exceeds it — raw rank deltas dilute through high-degree vertices, so hubs stop
    // flooding the active region the way a raw-delta rule makes them. Suppressed
    // notifications are what bounds the error (each frozen vertex misses at most
    // `degree * eps` of input), so the threshold scales with the arc count; the
    // `sqrt` softening reflects that real suppressed sums sit far below the
    // worst-case bound — the parity tests pin the actual accuracy.
    let activate_eps = tol / (graph.global_m().max(1) as f64).sqrt();
    let nranks = ctx.nranks();

    let mut active = vec![false; n_owned];
    match seeds {
        None => active.iter_mut().for_each(|a| *a = true),
        Some(seeds) => {
            // Mark owned seeds and their local neighbours; seed neighbours owned by
            // other ranks are pushed to their owners (their input changed too).
            let mut remote: Vec<Vec<GlobalId>> = vec![Vec::new(); nranks];
            for &g in seeds {
                let Some(l) = graph.local_id(g).filter(|&l| graph.is_owned(l)) else {
                    continue;
                };
                active[l as usize] = true;
                for &u in graph.neighbors(l) {
                    let u_idx = u as usize;
                    if u_idx < n_owned {
                        active[u_idx] = true;
                    } else {
                        remote[graph.owner_of_local(u)].push(graph.global_id(u));
                    }
                }
            }
            for gids in ctx.alltoallv(remote) {
                for g in gids {
                    if let Some(l) = graph.local_id(g).filter(|&l| graph.is_owned(l)) {
                        active[l as usize] = true;
                    }
                }
            }
        }
    }

    let mut work = PagerankWork::default();
    for _ in 0..max_iters {
        // Contributions of every owned vertex (the ghost refresh ships boundary values
        // whether or not their owners were scored this round, keeping reads coherent).
        let contrib: Vec<f64> = (0..n_owned)
            .map(|v| {
                let d = graph.degree_owned(v as LocalId);
                if d == 0 {
                    0.0
                } else {
                    ranks[v] / d as f64
                }
            })
            .collect();
        let ghost_contrib = graph.ghost_values_f64(ctx, &contrib);

        let mut next_active = vec![false; n_owned];
        let mut remote: Vec<Vec<GlobalId>> = vec![Vec::new(); nranks];
        let mut residual = 0.0f64;
        let mut scored = 0u64;
        for v in 0..n_owned {
            if !active[v] {
                continue;
            }
            scored += 1;
            let mut sum = 0.0;
            for &u in graph.neighbors(v as LocalId) {
                let u = u as usize;
                sum += if u < n_owned {
                    contrib[u]
                } else {
                    ghost_contrib[u - n_owned]
                };
            }
            let next_v = (1.0 - damping) / n + damping * sum;
            let delta = (next_v - ranks[v]).abs();
            ranks[v] = next_v;
            residual += delta;
            // A vertex goes (and stays) active only when a neighbour announces a
            // material input change: with unchanged inputs its next update would be a
            // no-op, so there is no self-reactivation.
            let degree = graph.degree_owned(v as LocalId).max(1) as f64;
            if damping * delta / degree > activate_eps {
                for &u in graph.neighbors(v as LocalId) {
                    let u_idx = u as usize;
                    if u_idx < n_owned {
                        next_active[u_idx] = true;
                    } else {
                        remote[graph.owner_of_local(u)].push(graph.global_id(u));
                    }
                }
            }
        }
        for gids in ctx.alltoallv(remote) {
            for g in gids {
                if let Some(l) = graph.local_id(g).filter(|&l| graph.is_owned(l)) {
                    next_active[l as usize] = true;
                }
            }
        }
        active = next_active;
        let reduced = ctx.allreduce_sum_f64(&[residual, scored as f64]);
        work.iterations += 1;
        work.vertices_scored += reduced[1] as u64;
        if reduced[0] < tol {
            work.converged = true;
            break;
        }
    }
    work
}

/// Work accounting of one [`wcc_repair`] (or cold [`wcc_propagate`]) run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WccWork {
    /// Min-label propagation sweeps executed.
    pub sweeps: u64,
    /// Components whose deleted edges forced a distributed BFS connectivity check.
    pub components_checked: u64,
    /// Vertices whose label was reset because a deletion actually split their
    /// component (summed over ranks).
    pub reset_vertices: u64,
}

/// Min-label propagation seeded from `labels` (owned values), run to a fixed point.
/// With `labels` initialised to each vertex's own global id this is exactly the cold
/// [`wcc`](crate::algorithms::wcc); with the previous epoch's labels it converges in a
/// couple of sweeps after a small delta. Returns the sweep count.
pub fn wcc_propagate(ctx: &RankCtx, graph: &DistGraph, labels: &mut [u64]) -> u64 {
    let n_owned = graph.n_owned();
    assert_eq!(labels.len(), n_owned, "one label per owned vertex");
    let mut sweeps = 0u64;
    loop {
        let ghost_labels = graph.ghost_values_u64(ctx, labels);
        let mut changed = 0u64;
        for v in 0..n_owned {
            let mut best = labels[v];
            for &u in graph.neighbors(v as LocalId) {
                let u = u as usize;
                let lu = if u < n_owned {
                    labels[u]
                } else {
                    ghost_labels[u - n_owned]
                };
                if lu < best {
                    best = lu;
                }
            }
            if best < labels[v] {
                labels[v] = best;
                changed += 1;
            }
        }
        sweeps += 1;
        if ctx.allreduce_scalar_sum_u64(changed) == 0 {
            break;
        }
    }
    sweeps
}

/// Repair the previous epoch's component labels after a delta, then propagate to a
/// fixed point.
///
/// `deleted_edges` are the undirected `(min, max)` edges the epoch deleted (replicated
/// on every rank). Insertions need no preparation — seeded propagation merges labels
/// on its own. For deletions, each previously-existing deleted edge has endpoints in
/// the same old component (its old label); for every such *affected* component one
/// distributed BFS from a deleted-edge endpoint checks whether every deleted-edge
/// endpoint of that component is still reachable. If yes, the component is provably
/// intact (any region a deletion disconnects must border a deleted edge) and its
/// labels stand; if not, the component's labels are reset to the vertices' own ids and
/// recomputed by the propagation phase. Deleted edges whose endpoints carried
/// *different* old labels were inserted within the same epoch (never part of the
/// previously-labelled graph) and cannot split an old component, so they are skipped.
pub fn wcc_repair(
    ctx: &RankCtx,
    graph: &DistGraph,
    labels: &mut [u64],
    deleted_edges: &[(GlobalId, GlobalId)],
) -> WccWork {
    let n_owned = graph.n_owned();
    assert_eq!(labels.len(), n_owned, "one label per owned vertex");
    let mut work = WccWork::default();

    if !deleted_edges.is_empty() {
        // Old labels of every deleted-edge endpoint, replicated via allgather (the
        // endpoint set is tiny compared to the graph).
        let mut endpoints: Vec<GlobalId> =
            deleted_edges.iter().flat_map(|&(u, v)| [u, v]).collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        let local_pairs: Vec<(GlobalId, u64)> = endpoints
            .iter()
            .filter_map(|&g| {
                let l = graph.local_id(g).filter(|&l| graph.is_owned(l))?;
                Some((g, labels[l as usize]))
            })
            .collect();
        let label_of: BTreeMap<GlobalId, u64> = ctx.allgatherv(local_pairs).into_iter().collect();

        // Group endpoints by affected old component; BTree order keeps every rank's
        // iteration (and therefore the BFS collective schedule) identical.
        let mut affected: BTreeMap<u64, BTreeSet<GlobalId>> = BTreeMap::new();
        for &(u, v) in deleted_edges {
            match (label_of.get(&u), label_of.get(&v)) {
                (Some(&lu), Some(&lv)) if lu == lv => {
                    let set = affected.entry(lu).or_default();
                    set.insert(u);
                    set.insert(v);
                }
                _ => {} // same-epoch inserted edge: cannot split an old component
            }
        }

        for (component, endpoints) in affected {
            work.components_checked += 1;
            let root = *endpoints.first().expect("affected sets are non-empty");
            let bfs = dist_bfs(ctx, graph, root);
            let unreached_here: u64 = endpoints
                .iter()
                .filter_map(|&g| graph.local_id(g).filter(|&l| graph.is_owned(l)))
                .filter(|&l| bfs.levels[l as usize] == UNREACHED)
                .count() as u64;
            let split = ctx.allreduce_scalar_sum_u64(unreached_here) > 0;
            let mut reset_here = 0u64;
            if split {
                for (v, label) in labels.iter_mut().enumerate() {
                    if *label == component {
                        *label = graph.global_id(v as LocalId);
                        reset_here += 1;
                    }
                }
            }
            work.reset_vertices += ctx.allreduce_scalar_sum_u64(reset_here);
        }
    }

    work.sweeps = wcc_propagate(ctx, graph, labels);
    work
}

/// Tighten `core` — any pointwise *upper bound* of the true coreness of the owned
/// vertices — down to the exact coreness with the monotone h-index iteration
/// `x ← min(x, H(x))`, returning the number of rounds to the fixed point. Cold runs
/// seed with the degrees; warm runs seed with the previous epoch's coreness bumped by
/// the epoch's inserted-edge count (an edge batch of `k` insertions raises any
/// coreness by at most `k`) and capped by the new degree.
pub fn kcore_tighten(ctx: &RankCtx, graph: &DistGraph, core: &mut [u64], max_rounds: usize) -> u64 {
    let n_owned = graph.n_owned();
    assert_eq!(core.len(), n_owned, "one coreness bound per owned vertex");
    let mut rounds = 0u64;
    for _ in 0..max_rounds {
        let ghost_core = graph.ghost_values_u64(ctx, core);
        let mut changed = 0u64;
        let mut neigh: Vec<u64> = Vec::new();
        for v in 0..n_owned {
            neigh.clear();
            neigh.extend(graph.neighbors(v as LocalId).iter().map(|&u| {
                let u = u as usize;
                if u < n_owned {
                    core[u]
                } else {
                    ghost_core[u - n_owned]
                }
            }));
            neigh.sort_unstable_by(|a, b| b.cmp(a));
            let mut h = 0u64;
            for (i, &c) in neigh.iter().enumerate() {
                if c >= (i as u64 + 1) {
                    h = i as u64 + 1;
                } else {
                    break;
                }
            }
            if h < core[v] {
                core[v] = h;
                changed += 1;
            }
        }
        rounds += 1;
        if ctx.allreduce_scalar_sum_u64(changed) == 0 {
            break;
        }
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{pagerank, wcc};
    use xtrapulp_comm::Runtime;
    use xtrapulp_graph::{Distribution, GraphDelta};

    /// Two triangles joined by a bridge, plus an isolated pair.
    fn test_edges() -> (u64, Vec<(u64, u64)>) {
        (
            8,
            vec![
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
                (2, 3),
                (6, 7),
            ],
        )
    }

    fn gather<T: Copy + Default>(out: Vec<Vec<(u64, T)>>, n: usize) -> Vec<T> {
        let mut global = vec![T::default(); n];
        for pairs in out {
            for (g, v) in pairs {
                global[g as usize] = v;
            }
        }
        global
    }

    #[test]
    fn cold_pagerank_resume_matches_fixed_iteration_pagerank() {
        let (n, edges) = test_edges();
        for nranks in [1usize, 3] {
            let out = Runtime::run(nranks, |ctx| {
                let g = DistGraph::from_shared_edges(ctx, Distribution::Block, n, &edges);
                let mut ranks = vec![1.0 / n as f64; g.n_owned()];
                let work = pagerank_resume(ctx, &g, &mut ranks, None, 0.85, 1e-12, 500);
                assert!(work.converged);
                let reference = pagerank(ctx, &g, 120, 0.85);
                for (a, b) in ranks.iter().zip(reference.iter()) {
                    assert!((a - b).abs() < 1e-9, "{a} vs {b}");
                }
                work.iterations
            });
            assert!(out.iter().all(|&it| it > 0));
        }
    }

    #[test]
    fn warm_pagerank_tracks_an_edge_insertion_cheaply() {
        let (n, edges) = test_edges();
        let mut new_edges = edges.clone();
        new_edges.push((5, 6)); // connect the isolated pair to a triangle
        let delta = GraphDelta::new(n, 0, &[(5, 6)], &[]);
        let out = Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, n, &edges);
            let mut ranks = vec![1.0 / n as f64; g.n_owned()];
            pagerank_resume(ctx, &g, &mut ranks, None, 0.85, 1e-12, 500);

            let g2 = g.apply_delta(ctx, &delta);
            let warm = pagerank_resume(
                ctx,
                &g2,
                &mut ranks,
                Some(&delta.touched_including_added()),
                0.85,
                1e-12,
                500,
            );
            // Reference: cold solve on the mutated graph.
            let mut cold_ranks = vec![1.0 / n as f64; g2.n_owned()];
            let cold = pagerank_resume(ctx, &g2, &mut cold_ranks, None, 0.85, 1e-12, 500);
            for (a, b) in ranks.iter().zip(cold_ranks.iter()) {
                assert!((a - b).abs() < 1e-7, "warm {a} vs cold {b}");
            }
            (warm.vertices_scored, cold.vertices_scored)
        });
        for (warm_scored, cold_scored) in out {
            assert!(
                warm_scored < cold_scored,
                "warm resume should score fewer vertices: {warm_scored} vs {cold_scored}"
            );
        }
    }

    #[test]
    fn wcc_repair_handles_merges_and_splits_exactly() {
        let (n, edges) = test_edges();
        let out = Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, n, &edges);
            let mut labels: Vec<u64> = (0..g.n_owned())
                .map(|v| g.global_id(v as LocalId))
                .collect();
            wcc_propagate(ctx, &g, &mut labels);

            // Delete the bridge 2-3 (splits {0..5}) and insert 5-6 (merges {3,4,5}
            // with {6,7}); both in one delta.
            let delta = GraphDelta::new(n, 0, &[(5, 6)], &[(2, 3)]);
            let g2 = g.apply_delta(ctx, &delta);
            let work = wcc_repair(
                ctx,
                &g2,
                &mut labels,
                &delta.deleted_edges().collect::<Vec<_>>(),
            );
            assert!(work.components_checked >= 1);
            assert!(work.reset_vertices > 0, "the bridge deletion splits");

            let mut fresh = wcc(ctx, &g2);
            let repaired: Vec<(u64, u64)> = (0..g2.n_owned())
                .map(|v| (g2.global_id(v as LocalId), labels[v]))
                .collect();
            let fresh_pairs: Vec<(u64, u64)> = (0..g2.n_owned())
                .map(|v| (g2.global_id(v as LocalId), fresh.remove(0)))
                .collect();
            assert_eq!(
                repaired, fresh_pairs,
                "repair must match a cold WCC exactly"
            );
            repaired
        });
        let labels = gather(out, n as usize);
        assert_eq!(&labels[..3], &[0, 0, 0]);
        assert_eq!(&labels[3..], &[3, 3, 3, 3, 3]);
    }

    #[test]
    fn intact_components_are_not_reset() {
        // Delete one edge of a triangle: the component stays connected, so the BFS
        // check must leave every label alone.
        let (n, edges) = test_edges();
        let out = Runtime::run(3, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Cyclic, n, &edges);
            let mut labels: Vec<u64> = (0..g.n_owned())
                .map(|v| g.global_id(v as LocalId))
                .collect();
            wcc_propagate(ctx, &g, &mut labels);
            let delta = GraphDelta::new(n, 0, &[], &[(0, 1)]);
            let g2 = g.apply_delta(ctx, &delta);
            let work = wcc_repair(
                ctx,
                &g2,
                &mut labels,
                &delta.deleted_edges().collect::<Vec<_>>(),
            );
            (work.components_checked, work.reset_vertices)
        });
        for (checked, reset) in out {
            assert_eq!(checked, 1);
            assert_eq!(reset, 0);
        }
    }

    #[test]
    fn kcore_tighten_from_bounds_matches_cold_peeling() {
        let (n, edges) = test_edges();
        let out = Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, n, &edges);
            let mut cold: Vec<u64> = (0..g.n_owned())
                .map(|v| g.degree_owned(v as LocalId))
                .collect();
            let cold_rounds = kcore_tighten(ctx, &g, &mut cold, 100);

            // A loose-but-valid upper bound (degree + 3) must land on the same values.
            let mut loose: Vec<u64> = (0..g.n_owned())
                .map(|v| g.degree_owned(v as LocalId) + 3)
                .collect();
            kcore_tighten(ctx, &g, &mut loose, 100);
            assert_eq!(cold, loose);

            // A warm seed (the answer itself) converges in one verification round.
            let mut warm = cold.clone();
            let warm_rounds = kcore_tighten(ctx, &g, &mut warm, 100);
            assert_eq!(warm, cold);
            assert!(warm_rounds <= cold_rounds);
            (0..g.n_owned())
                .map(|v| (g.global_id(v as LocalId), cold[v]))
                .collect::<Vec<_>>()
        });
        let core = gather(out, n as usize);
        assert_eq!(core, vec![2, 2, 2, 2, 2, 2, 1, 1]);
    }
}
