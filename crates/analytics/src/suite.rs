//! The Fig. 8 end-to-end analytics harness: run the six analytics on a graph distributed
//! according to a chosen partitioning strategy and record per-analytic wall-clock time
//! and communication volume.

use xtrapulp_comm::{RankCtx, Runtime, Timer};
use xtrapulp_graph::{DistGraph, Distribution, GlobalId};

use crate::algorithms::{
    harmonic_centrality, kcore_approx, label_propagation, largest_component, pagerank, wcc,
};

/// Timing (and traffic) of one analytic under one partitioning strategy.
#[derive(Debug, Clone)]
pub struct AnalyticResult {
    /// Analytic name (HC, KC, LP, PR, SCC, WCC).
    pub name: &'static str,
    /// Wall-clock seconds (maximum over ranks).
    pub seconds: f64,
    /// Total bytes exchanged across all ranks while the analytic ran.
    pub comm_bytes: u64,
}

/// Results of running the whole suite under one strategy.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Strategy name (EdgeBlock, Random, VertBlock, XtraPuLP, ...).
    pub strategy: String,
    /// Seconds spent computing the partition itself (zero for the naive strategies).
    pub partition_seconds: f64,
    /// Per-analytic results, in a fixed order.
    pub analytics: Vec<AnalyticResult>,
}

impl SuiteResult {
    /// End-to-end time: partitioning plus every analytic.
    pub fn total_seconds(&self) -> f64 {
        self.partition_seconds + self.analytics.iter().map(|a| a.seconds).sum::<f64>()
    }
}

/// Run the six analytics of Fig. 8 on the given distributed graph. `hc_sources` bounds
/// the number of harmonic-centrality BFS sources (the paper uses 100 on WDC12; scale to
/// the graph at hand).
pub fn run_suite(ctx: &RankCtx, graph: &DistGraph, hc_sources: usize) -> Vec<AnalyticResult> {
    let mut results = Vec::new();
    let mut record = |ctx: &RankCtx, name: &'static str, seconds: f64, bytes_before: u64| {
        let local = [seconds];
        let max_secs = ctx.allreduce_max_f64(&local)[0];
        let total_bytes = ctx.allreduce_scalar_sum_u64(ctx.stats().bytes_sent_since(bytes_before));
        results.push(AnalyticResult {
            name,
            seconds: max_secs,
            comm_bytes: total_bytes,
        });
    };

    // HC: harmonic centrality of a sample of sources (paper: 100 vertices).
    let sources = hc_source_sample(graph.global_n(), hc_sources);
    let before = ctx.stats().bytes_sent();
    let t = Timer::start();
    let _ = harmonic_centrality(ctx, graph, &sources);
    record(ctx, "HC", t.elapsed_secs(), before);

    // KC: approximate k-core decomposition.
    let before = ctx.stats().bytes_sent();
    let t = Timer::start();
    let _ = kcore_approx(ctx, graph, 30);
    record(ctx, "KC", t.elapsed_secs(), before);

    // LP: label-propagation community detection.
    let before = ctx.stats().bytes_sent();
    let t = Timer::start();
    let _ = label_propagation(ctx, graph, 10);
    record(ctx, "LP", t.elapsed_secs(), before);

    // PR: PageRank.
    let before = ctx.stats().bytes_sent();
    let t = Timer::start();
    let _ = pagerank(ctx, graph, 20, 0.85);
    record(ctx, "PR", t.elapsed_secs(), before);

    // SCC: largest (strongly = weakly, undirected) connected component extraction.
    let before = ctx.stats().bytes_sent();
    let t = Timer::start();
    let _ = largest_component(ctx, graph);
    record(ctx, "SCC", t.elapsed_secs(), before);

    // WCC: weakly connected components.
    let before = ctx.stats().bytes_sent();
    let t = Timer::start();
    let _ = wcc(ctx, graph);
    record(ctx, "WCC", t.elapsed_secs(), before);

    results
}

/// The distinct harmonic-centrality BFS sources: up to `want` *unique* vertices,
/// deterministically strided through `0..global_n`.
///
/// The previous sampler mapped `i` to `(i * 977) % global_n` directly, which repeats
/// sources whenever `want >= global_n` or `gcd(977, global_n) > 1` (e.g. any graph whose
/// vertex count is a multiple of 977 collapses the whole sample to a few residues) —
/// skewing the HC timing with redundant BFS runs from the same vertex. The stride walk
/// below visits every residue of the coprime cycle first and tops up from the remaining
/// ids, so the sample is always `min(want, global_n)` distinct vertices.
fn hc_source_sample(global_n: u64, want: usize) -> Vec<GlobalId> {
    let n = global_n.max(1);
    let want = (want as u64).min(n) as usize;
    // Memory stays O(want), not O(global_n) — the sample is ~100 sources on
    // billion-vertex graphs. 977 is prime, so the stride walk's first
    // `n / gcd(977, n)` values are all distinct; beyond that it only repeats.
    let cycle = if n.is_multiple_of(977) { n / 977 } else { n };
    let mut seen = std::collections::HashSet::with_capacity(want);
    let mut sources = Vec::with_capacity(want);
    for i in 0..cycle {
        if sources.len() >= want {
            break;
        }
        let v = (i * 977) % n;
        if seen.insert(v) {
            sources.push(v);
        }
    }
    // gcd(977, n) > 1 leaves whole residue classes unvisited; fill from the front.
    for v in 0..n {
        if sources.len() >= want {
            break;
        }
        if seen.insert(v) {
            sources.push(v);
        }
    }
    sources
}

/// Build the graph with ownership given by `parts` (one rank per part) and run the suite.
/// `parts` must map every global vertex to a rank in `0..nranks`.
pub fn run_suite_with_partition(
    nranks: usize,
    global_n: u64,
    edges: &[(GlobalId, GlobalId)],
    parts: &[i32],
    strategy: &str,
    partition_seconds: f64,
    hc_sources: usize,
) -> SuiteResult {
    let dist = Distribution::from_parts(parts);
    let per_rank = Runtime::run(nranks, |ctx| {
        let graph = DistGraph::from_shared_edges(ctx, dist.clone(), global_n, edges);
        run_suite(ctx, &graph, hc_sources)
    });
    // All ranks report identical (allreduced) numbers; take rank 0's.
    SuiteResult {
        strategy: strategy.to_string(),
        partition_seconds,
        analytics: per_rank.into_iter().next().unwrap(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrapulp::PartitionParams;
    use xtrapulp_api::{Method, PartitionJob, Session};
    use xtrapulp_gen::{GraphConfig, GraphKind};

    #[test]
    fn suite_runs_under_all_fig8_strategies() {
        let el = GraphConfig::new(
            GraphKind::WebCrawl {
                num_vertices: 1 << 10,
                avg_degree: 8,
                community_size: 64,
            },
            3,
        )
        .generate();
        let csr = el.to_csr();
        let nranks = 4;
        let n = el.num_vertices;

        // The Fig. 8 placement strategies, resolved through the registry and
        // partitioned on one session.
        let mut session = Session::new(nranks).expect("valid rank count");
        let params = PartitionParams {
            num_parts: nranks,
            seed: 5,
            ..Default::default()
        };
        let mut totals = Vec::new();
        for method in [
            Method::EdgeBlock,
            Method::Random,
            Method::VertexBlock,
            Method::XtraPulp,
        ] {
            let report = session
                .submit(&PartitionJob::new(method).with_params(params), &csr)
                .expect("valid job");
            let result = run_suite_with_partition(
                nranks,
                n,
                &el.edges,
                &report.parts,
                method.name(),
                0.0,
                4,
            );
            assert_eq!(result.analytics.len(), 6);
            assert!(result.analytics.iter().all(|a| a.seconds >= 0.0));
            totals.push((method, result));
        }
        // The XtraPuLP distribution should move fewer bytes than the random one for the
        // communication-bound analytics (PR + LP + WCC combined).
        let comm = |r: &SuiteResult| -> u64 {
            r.analytics
                .iter()
                .filter(|a| ["PR", "LP", "WCC"].contains(&a.name))
                .map(|a| a.comm_bytes)
                .sum()
        };
        let random_comm = comm(&totals[1].1);
        let xtrapulp_comm = comm(&totals[3].1);
        assert!(
            xtrapulp_comm < random_comm,
            "XtraPuLP distribution should cut communication: {xtrapulp_comm} vs {random_comm}"
        );
    }

    #[test]
    fn hc_sources_are_unique_even_under_pathological_vertex_counts() {
        // gcd(977, 977) = 977: the old sampler returned `hc_sources` copies of vertex 0.
        let s = hc_source_sample(977, 10);
        let unique: std::collections::BTreeSet<_> = s.iter().copied().collect();
        assert_eq!(s.len(), 10);
        assert_eq!(unique.len(), 10);

        // gcd(977, 1954) = 977: only two residues are reachable by the stride walk;
        // the top-up must still produce distinct sources.
        let s = hc_source_sample(1954, 8);
        assert_eq!(
            s.iter()
                .copied()
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            8
        );

        // More sources requested than vertices exist: clamp, don't repeat.
        let s = hc_source_sample(5, 100);
        assert_eq!(s.len(), 5);
        assert_eq!(
            s.iter()
                .copied()
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            5
        );
        for &v in &s {
            assert!(v < 5);
        }
    }

    #[test]
    fn comm_accounting_saturates_instead_of_wrapping() {
        // Counters reset between the `before` capture and the read: the delta must
        // clamp to zero, not panic (debug) or wrap to ~u64::MAX (release). The suite
        // records per-analytic traffic through this shared helper.
        let stats = xtrapulp_comm::CommStats::new();
        assert_eq!(stats.bytes_sent(), 0);
        assert_eq!(stats.bytes_sent_since(200), 0);
    }

    #[test]
    fn suite_result_totals_include_partitioning_time() {
        let r = SuiteResult {
            strategy: "X".into(),
            partition_seconds: 1.5,
            analytics: vec![AnalyticResult {
                name: "PR",
                seconds: 2.0,
                comm_bytes: 10,
            }],
        };
        assert!((r.total_seconds() - 3.5).abs() < 1e-12);
    }
}
