//! # xtrapulp-analytics
//!
//! Distributed graph analytics used to evaluate partitions end-to-end, reproducing the
//! Fig. 8 study of the paper: Harmonic Centrality (HC), approximate K-Core decomposition
//! (KC), Label-Propagation community detection (LP), PageRank (PR), largest
//! strongly-connected-component extraction (SCC, equal to the weakly connected one since
//! all edges are treated as undirected) and Weakly Connected Components (WCC).
//!
//! Each analytic runs over a [`xtrapulp_graph::DistGraph`] whose vertex ownership can be
//! any [`xtrapulp_graph::Distribution`] — in particular, an
//! [`Explicit`](xtrapulp_graph::Distribution::Explicit) distribution built from a
//! partition computed by XtraPuLP or one of the baselines, which is how the Fig. 8
//! comparison of EdgeBlock / Random / VertexBlock / XtraPuLP placements is reproduced.
//!
//! On top of the from-scratch suite, the [`incremental`] module provides delta-aware
//! (warm) variants of PageRank, connected components and coreness, and [`consumer`]
//! packages them as an [`AnalyticsConsumer`]/[`AnalyticsSubscriber`] pair that
//! subscribes to a serving pipeline's [`EpochStore`](xtrapulp_serve::EpochStore) and
//! repairs its state from each epoch's [`GraphDelta`](xtrapulp_graph::GraphDelta)
//! stream instead of redistributing and recomputing.

pub mod algorithms;
pub mod consumer;
pub mod incremental;
pub mod suite;

pub use algorithms::{
    harmonic_centrality, kcore_approx, label_propagation, largest_component, pagerank, wcc,
};
pub use consumer::{
    AnalyticsConsumer, AnalyticsSubscriber, ColdWork, EpochReport, SubscriberError, WarmPolicy,
};
pub use incremental::{
    kcore_tighten, pagerank_resume, wcc_propagate, wcc_repair, PagerankWork, WccWork,
};
pub use suite::{run_suite, run_suite_with_partition, AnalyticResult, SuiteResult};
