//! The six distributed graph analytics used in the paper's end-to-end study (Fig. 8).
//!
//! All of them follow the same bulk-synchronous pattern as the partitioner itself: each
//! rank updates its owned vertices, then refreshes ghost values from their owners before
//! the next superstep. Their communication volume is therefore proportional to the number
//! of cut edges of the distribution the graph was built with — which is exactly why the
//! partitioning strategy matters for their end-to-end time.

use xtrapulp_comm::RankCtx;
use xtrapulp_graph::bfs::dist_bfs;
use xtrapulp_graph::{DistGraph, GlobalId, LocalId};

/// Distributed PageRank (`PR` in Fig. 8) with uniform teleport; returns the PageRank of
/// every owned vertex.
pub fn pagerank(ctx: &RankCtx, graph: &DistGraph, iterations: usize, damping: f64) -> Vec<f64> {
    let n_owned = graph.n_owned();
    let n = graph.global_n() as f64;
    let mut rank_owned = vec![1.0 / n; n_owned];
    for _ in 0..iterations {
        // Contribution of each owned vertex: rank / degree.
        let contrib: Vec<f64> = (0..n_owned)
            .map(|v| {
                let d = graph.degree_owned(v as LocalId);
                if d == 0 {
                    0.0
                } else {
                    rank_owned[v] / d as f64
                }
            })
            .collect();
        let ghost_contrib = graph.ghost_values_f64(ctx, &contrib);
        let mut next = vec![(1.0 - damping) / n; n_owned];
        for (v, next_v) in next.iter_mut().enumerate() {
            let mut sum = 0.0;
            for &u in graph.neighbors(v as LocalId) {
                let u = u as usize;
                sum += if u < n_owned {
                    contrib[u]
                } else {
                    ghost_contrib[u - n_owned]
                };
            }
            *next_v += damping * sum;
        }
        rank_owned = next;
    }
    rank_owned
}

/// Distributed weakly connected components (`WCC`): iterative min-label propagation.
/// Returns the component id (smallest global vertex id in the component) of every owned
/// vertex.
pub fn wcc(ctx: &RankCtx, graph: &DistGraph) -> Vec<u64> {
    let n_owned = graph.n_owned();
    let mut label: Vec<u64> = (0..n_owned)
        .map(|v| graph.global_id(v as LocalId))
        .collect();
    loop {
        let ghost_labels = graph.ghost_values_u64(ctx, &label);
        let mut changed = 0u64;
        for v in 0..n_owned {
            let mut best = label[v];
            for &u in graph.neighbors(v as LocalId) {
                let u = u as usize;
                let lu = if u < n_owned {
                    label[u]
                } else {
                    ghost_labels[u - n_owned]
                };
                if lu < best {
                    best = lu;
                }
            }
            if best < label[v] {
                label[v] = best;
                changed += 1;
            }
        }
        if ctx.allreduce_scalar_sum_u64(changed) == 0 {
            break;
        }
    }
    label
}

/// "Strongly" connected component extraction (`SCC`): the paper treats all edges as
/// undirected, so the largest strongly connected component coincides with the largest
/// weakly connected one; this routine extracts it (returns whether each owned vertex
/// belongs to the largest component, plus its global size).
pub fn largest_component(ctx: &RankCtx, graph: &DistGraph) -> (Vec<bool>, u64) {
    let labels = wcc(ctx, graph);
    // Count label frequencies globally. Labels are global vertex ids; count locally into a
    // map, then reduce the top candidate by (count, label).
    let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for &l in &labels {
        *counts.entry(l).or_insert(0) += 1;
    }
    // Find the globally most frequent label: allgather the local top candidates and their
    // counts, then locally combine (candidate sets are tiny).
    let local_pairs: Vec<(u64, u64)> = counts.iter().map(|(&l, &c)| (l, c)).collect();
    let all_pairs = ctx.allgatherv(local_pairs);
    let mut combined: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for (l, c) in all_pairs {
        *combined.entry(l).or_insert(0) += c;
    }
    let (&best_label, &best_size) = combined
        .iter()
        .max_by_key(|(&l, &c)| (c, std::cmp::Reverse(l)))
        .unwrap_or((&0, &0));
    let membership = labels.iter().map(|&l| l == best_label).collect();
    (membership, best_size)
}

/// Distributed approximate k-core decomposition (`KC`): iterative peeling where each
/// round removes every vertex whose residual degree is below the current core value.
/// Returns an approximate coreness per owned vertex.
pub fn kcore_approx(ctx: &RankCtx, graph: &DistGraph, max_rounds: usize) -> Vec<u64> {
    let n_owned = graph.n_owned();
    let mut coreness: Vec<u64> = (0..n_owned)
        .map(|v| graph.degree_owned(v as LocalId))
        .collect();
    for _ in 0..max_rounds {
        let ghost_core = graph.ghost_values_u64(ctx, &coreness);
        let mut changed = 0u64;
        for v in 0..n_owned {
            // h-index style update: the largest h such that at least h neighbours have
            // coreness >= h. Converges to the true coreness.
            let mut neigh: Vec<u64> = graph
                .neighbors(v as LocalId)
                .iter()
                .map(|&u| {
                    let u = u as usize;
                    if u < n_owned {
                        coreness[u]
                    } else {
                        ghost_core[u - n_owned]
                    }
                })
                .collect();
            neigh.sort_unstable_by(|a, b| b.cmp(a));
            let mut h = 0u64;
            for (i, &c) in neigh.iter().enumerate() {
                if c >= (i as u64 + 1) {
                    h = i as u64 + 1;
                } else {
                    break;
                }
            }
            if h < coreness[v] {
                coreness[v] = h;
                changed += 1;
            }
        }
        if ctx.allreduce_scalar_sum_u64(changed) == 0 {
            break;
        }
    }
    coreness
}

/// Distributed label-propagation community detection (`LP`): each vertex adopts the most
/// frequent label among its neighbours for a fixed number of sweeps.
pub fn label_propagation(ctx: &RankCtx, graph: &DistGraph, sweeps: usize) -> Vec<u64> {
    let n_owned = graph.n_owned();
    let mut label: Vec<u64> = (0..n_owned)
        .map(|v| graph.global_id(v as LocalId))
        .collect();
    let mut counts: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for _ in 0..sweeps {
        let ghost_labels = graph.ghost_values_u64(ctx, &label);
        let mut changed = 0u64;
        for v in 0..n_owned {
            counts.clear();
            for &u in graph.neighbors(v as LocalId) {
                let u = u as usize;
                let lu = if u < n_owned {
                    label[u]
                } else {
                    ghost_labels[u - n_owned]
                };
                *counts.entry(lu).or_insert(0) += 1;
            }
            if let Some((&best, _)) = counts.iter().max_by_key(|(_, &c)| c) {
                if best != label[v] {
                    label[v] = best;
                    changed += 1;
                }
            }
        }
        if ctx.allreduce_scalar_sum_u64(changed) == 0 {
            break;
        }
    }
    label
}

/// Distributed harmonic centrality (`HC`) of `sources.len()` sampled vertices: for each
/// source, a BFS provides distances and the harmonic sum `Σ 1/d` is accumulated.
/// Returns one centrality value per source, identical on every rank.
pub fn harmonic_centrality(ctx: &RankCtx, graph: &DistGraph, sources: &[GlobalId]) -> Vec<f64> {
    let mut out = Vec::with_capacity(sources.len());
    for &s in sources {
        let bfs = dist_bfs(ctx, graph, s);
        let local_sum: f64 = bfs
            .levels
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1.0 / l as f64)
            .sum();
        let total = ctx.allreduce_sum_f64(&[local_sum])[0];
        out.push(total);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrapulp_comm::Runtime;
    use xtrapulp_graph::{csr_from_edges, Distribution};

    /// Two triangles joined by a bridge, plus an isolated pair.
    fn test_edges() -> (u64, Vec<(u64, u64)>) {
        (
            8,
            vec![
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
                (2, 3),
                (6, 7),
            ],
        )
    }

    fn gather_owned_u64(out: Vec<Vec<(u64, u64)>>, n: usize) -> Vec<u64> {
        let mut global = vec![0u64; n];
        for pairs in out {
            for (g, v) in pairs {
                global[g as usize] = v;
            }
        }
        global
    }

    #[test]
    fn pagerank_sums_to_one_and_matches_serial_structure() {
        let (n, edges) = test_edges();
        let out = Runtime::run(3, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Cyclic, n, &edges);
            let pr = pagerank(ctx, &g, 30, 0.85);
            let local_sum: f64 = pr.iter().sum();
            ctx.allreduce_sum_f64(&[local_sum])[0]
        });
        for total in out {
            // Dangling (isolated) vertices leak a little mass; the total stays below 1 and
            // above the teleport floor.
            assert!(total > 0.5 && total <= 1.0 + 1e-9, "total {total}");
        }
    }

    #[test]
    fn pagerank_is_consistent_across_rank_counts() {
        let (n, edges) = test_edges();
        let reference = Runtime::run(1, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, n, &edges);
            pagerank(ctx, &g, 20, 0.85)
        })
        .pop()
        .unwrap();
        let out = Runtime::run(4, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, n, &edges);
            let pr = pagerank(ctx, &g, 20, 0.85);
            (0..g.n_owned())
                .map(|v| (g.global_id(v as LocalId), pr[v]))
                .collect::<Vec<_>>()
        });
        let mut combined = vec![0.0; n as usize];
        for pairs in out {
            for (g, v) in pairs {
                combined[g as usize] = v;
            }
        }
        for (a, b) in reference.iter().zip(combined.iter()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn wcc_finds_three_components() {
        let (n, edges) = test_edges();
        let out = Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, n, &edges);
            let labels = wcc(ctx, &g);
            (0..g.n_owned())
                .map(|v| (g.global_id(v as LocalId), labels[v]))
                .collect::<Vec<_>>()
        });
        let labels = gather_owned_u64(out, n as usize);
        // Component of the two joined triangles is labelled 0; the isolated pair 6.
        assert_eq!(&labels[..6], &[0, 0, 0, 0, 0, 0]);
        assert_eq!(&labels[6..], &[6, 6]);
    }

    #[test]
    fn largest_component_is_the_joined_triangles() {
        let (n, edges) = test_edges();
        let out = Runtime::run(3, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Hashed, n, &edges);
            largest_component(ctx, &g).1
        });
        assert!(out.iter().all(|&s| s == 6));
    }

    #[test]
    fn kcore_of_triangles_is_two() {
        let (n, edges) = test_edges();
        let out = Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, n, &edges);
            let core = kcore_approx(ctx, &g, 20);
            (0..g.n_owned())
                .map(|v| (g.global_id(v as LocalId), core[v]))
                .collect::<Vec<_>>()
        });
        let core = gather_owned_u64(out, n as usize);
        // Triangle vertices have coreness 2; the isolated edge has coreness 1.
        assert_eq!(core[0], 2);
        assert_eq!(core[4], 2);
        assert_eq!(core[6], 1);
        assert_eq!(core[7], 1);
    }

    #[test]
    fn label_propagation_groups_triangles() {
        let (n, edges) = test_edges();
        let out = Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, n, &edges);
            let labels = label_propagation(ctx, &g, 10);
            (0..g.n_owned())
                .map(|v| (g.global_id(v as LocalId), labels[v]))
                .collect::<Vec<_>>()
        });
        let labels = gather_owned_u64(out, n as usize);
        // Vertices within one triangle should share a label.
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[6], labels[7]);
    }

    #[test]
    fn harmonic_centrality_matches_hand_computation() {
        // Path 0-1-2: HC(1) = 1/1 + 1/1 = 2, HC(0) = 1/1 + 1/2 = 1.5.
        let edges = vec![(0u64, 1u64), (1, 2)];
        let csr = csr_from_edges(3, &edges);
        assert_eq!(csr.num_edges(), 2);
        let out = Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 3, &edges);
            harmonic_centrality(ctx, &g, &[0, 1])
        });
        for hc in out {
            assert!((hc[0] - 1.5).abs() < 1e-12);
            assert!((hc[1] - 2.0).abs() < 1e-12);
        }
    }
}
