//! # xtrapulp-multilevel
//!
//! Multilevel partitioning baselines for the XtraPuLP reproduction.
//!
//! The paper benchmarks XtraPuLP against two traditional multilevel partitioners:
//! **ParMETIS** (Table II, Fig. 4, Table III) and the label-propagation-coarsening
//! partitioner of **Meyerhenke, Sanders and Schulz** (Fig. 6, "KaHIP"). Neither can be
//! linked from Rust without the original C/C++ code bases, so this crate implements the
//! same algorithmic families from scratch:
//!
//! * [`MetisLikePartitioner`] — heavy-edge matching coarsening, greedy graph-growing
//!   initial partitioning, and weight-constrained greedy boundary (FM-style) refinement
//!   at every level.
//! * [`LpCoarsenKwayPartitioner`] — size-constrained label-propagation clustering as the
//!   coarsening step, matching the design point of the Meyerhenke et al. partitioner.
//!
//! Both implement the [`xtrapulp::Partitioner`] trait so experiment harnesses can swap
//! partitioners freely. They reproduce the qualitative behaviour the paper relies on:
//! excellent quality on regular meshes, competitive-but-slower behaviour on small-world
//! graphs, and much higher memory footprints than the single-level label-propagation
//! approach (every coarsening level keeps a full copy of the graph).

pub mod coarsen;
pub mod drivers;
pub mod initial;
pub mod refine;
pub mod weighted;

pub use drivers::{LpCoarsenKwayPartitioner, MetisLikePartitioner};
pub use weighted::WeightedGraph;
