//! Weighted graphs for the multilevel baselines.
//!
//! Coarsening merges vertices, so every level below the input carries vertex weights
//! (how many original vertices a coarse vertex represents) and edge weights (how many
//! original edges a coarse edge represents). The multilevel partitioners (the METIS-like
//! and KaHIP-like baselines) work exclusively on this representation; the input [`Csr`]
//! is converted to a unit-weighted instance at level 0.

use xtrapulp_graph::Csr;

/// A vertex- and edge-weighted undirected graph in CSR form.
#[derive(Debug, Clone)]
pub struct WeightedGraph {
    /// CSR offsets (length `n + 1`).
    pub offsets: Vec<u64>,
    /// Neighbour ids.
    pub adjacency: Vec<u64>,
    /// Weight of each adjacency entry (same length as `adjacency`).
    pub edge_weights: Vec<u64>,
    /// Weight of each vertex (length `n`).
    pub vertex_weights: Vec<u64>,
}

impl WeightedGraph {
    /// Convert an unweighted [`Csr`] into a unit-weighted instance.
    pub fn from_csr(csr: &Csr) -> Self {
        WeightedGraph {
            offsets: csr.offsets().to_vec(),
            adjacency: csr.adjacency().to_vec(),
            edge_weights: vec![1; csr.adjacency().len()],
            vertex_weights: vec![1; csr.num_vertices()],
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_weights.len()
    }

    /// Total vertex weight (equals the number of original vertices at every level).
    pub fn total_vertex_weight(&self) -> u64 {
        self.vertex_weights.iter().sum()
    }

    /// Neighbours of `v` with their edge weights.
    pub fn neighbors(&self, v: u64) -> impl Iterator<Item = (u64, u64)> + '_ {
        let start = self.offsets[v as usize] as usize;
        let end = self.offsets[v as usize + 1] as usize;
        self.adjacency[start..end]
            .iter()
            .copied()
            .zip(self.edge_weights[start..end].iter().copied())
    }

    /// Weighted degree of `v` (sum of incident edge weights).
    pub fn weighted_degree(&self, v: u64) -> u64 {
        let start = self.offsets[v as usize] as usize;
        let end = self.offsets[v as usize + 1] as usize;
        self.edge_weights[start..end].iter().sum()
    }

    /// Number of adjacency entries (2x the undirected edge count).
    pub fn num_arcs(&self) -> usize {
        self.adjacency.len()
    }

    /// Build a weighted graph from an arc list with weights, merging parallel arcs.
    /// `arcs` holds `(u, v, w)` entries; both directions must be present.
    pub fn from_weighted_arcs(
        num_vertices: usize,
        mut arcs: Vec<(u64, u64, u64)>,
        vertex_weights: Vec<u64>,
    ) -> Self {
        assert_eq!(vertex_weights.len(), num_vertices);
        arcs.sort_unstable_by_key(|&(u, v, _)| (u, v));
        // Merge parallel arcs by summing weights.
        let mut merged: Vec<(u64, u64, u64)> = Vec::with_capacity(arcs.len());
        for (u, v, w) in arcs {
            if let Some(last) = merged.last_mut() {
                if last.0 == u && last.1 == v {
                    last.2 += w;
                    continue;
                }
            }
            merged.push((u, v, w));
        }
        let mut offsets = vec![0u64; num_vertices + 1];
        for &(u, _, _) in &merged {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            offsets[i + 1] += offsets[i];
        }
        let adjacency: Vec<u64> = merged.iter().map(|&(_, v, _)| v).collect();
        let edge_weights: Vec<u64> = merged.iter().map(|&(_, _, w)| w).collect();
        WeightedGraph {
            offsets,
            adjacency,
            edge_weights,
            vertex_weights,
        }
    }

    /// Weighted edge cut of a partition (each cut edge counted once, by weight).
    pub fn weighted_cut(&self, parts: &[i32]) -> u64 {
        let mut cut = 0u64;
        for v in 0..self.num_vertices() as u64 {
            for (u, w) in self.neighbors(v) {
                if parts[v as usize] != parts[u as usize] && v < u {
                    cut += w;
                }
            }
        }
        cut
    }

    /// Vertex weight per part.
    pub fn part_weights(&self, parts: &[i32], num_parts: usize) -> Vec<u64> {
        let mut weights = vec![0u64; num_parts];
        for v in 0..self.num_vertices() {
            weights[parts[v] as usize] += self.vertex_weights[v];
        }
        weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrapulp_graph::csr_from_edges;

    #[test]
    fn from_csr_has_unit_weights() {
        let csr = csr_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let g = WeightedGraph::from_csr(&csr);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.total_vertex_weight(), 4);
        assert_eq!(g.weighted_degree(1), 2);
        assert_eq!(g.num_arcs(), 6);
    }

    #[test]
    fn weighted_arc_merging() {
        let arcs = vec![(0, 1, 2), (1, 0, 2), (0, 1, 3), (1, 0, 3)];
        let g = WeightedGraph::from_weighted_arcs(2, arcs, vec![5, 7]);
        assert_eq!(g.weighted_degree(0), 5);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![(1, 5)]);
        assert_eq!(g.total_vertex_weight(), 12);
    }

    #[test]
    fn cut_and_part_weights() {
        let csr = csr_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let g = WeightedGraph::from_csr(&csr);
        let parts = vec![0, 0, 1, 1];
        assert_eq!(g.weighted_cut(&parts), 1);
        assert_eq!(g.part_weights(&parts, 2), vec![2, 2]);
    }
}
