//! Boundary refinement for the multilevel baselines: a greedy, weight-constrained
//! Fiduccia–Mattheyses-style pass applied after every uncoarsening step.
//!
//! Both passes run on the shared sweep engine from the core crate
//! ([`xtrapulp::sweep`]): refinement sweeps are frontier-driven (after the first sweep
//! of a level, only vertices whose neighbourhood changed are rescored) with
//! deterministic two-phase chunk application — results are bit-identical for every
//! thread count — and all per-part weight/gain buffers are borrowed from the
//! [`SweepWorkspace`] the driver threads through the V-cycle instead of being allocated
//! per invocation.

use xtrapulp::sweep::{ScoreScratch, SweepStage, SweepWorkspace, NO_MOVE, SWEEP_CHUNK};

use crate::weighted::WeightedGraph;

/// Enqueue-neighbours closure over a weighted graph for the sweep engine's frontier.
fn wg_neighbors(graph: &WeightedGraph) -> impl Fn(u32, &mut dyn FnMut(u32)) + '_ {
    move |v, mark| {
        for (u, _) in graph.neighbors(v as u64) {
            mark(u as u32);
        }
    }
}

/// One greedy boundary-refinement sweep: move a vertex to the neighbouring part with
/// the largest positive weighted cut gain, provided the destination stays below
/// `max_part_weight`.
struct MlRefine<'a> {
    graph: &'a WeightedGraph,
    part_weights: &'a mut [i64],
    max_part_weight: u64,
}

impl SweepStage for MlRefine<'_> {
    fn propose(&self, v: u32, parts: &[i32], scratch: &mut ScoreScratch) -> i32 {
        let x = parts[v as usize] as usize;
        scratch.clear();
        for (u, w) in self.graph.neighbors(v as u64) {
            scratch.add(parts[u as usize] as usize, w as f64);
        }
        let own = scratch.get(x);
        let vw = self.graph.vertex_weights[v as usize] as i64;
        let mut best = x;
        let mut best_gain = own;
        for &i in scratch.touched() {
            if i == x || self.part_weights[i] + vw > self.max_part_weight as i64 {
                continue;
            }
            if scratch.get(i) > best_gain {
                best_gain = scratch.get(i);
                best = i;
            }
        }
        if best != x {
            best as i32
        } else {
            NO_MOVE
        }
    }

    fn apply(&mut self, v: u32, target: usize, parts: &[i32]) -> bool {
        let x = parts[v as usize] as usize;
        let vw = self.graph.vertex_weights[v as usize] as i64;
        if self.part_weights[target] + vw > self.max_part_weight as i64 {
            return false;
        }
        // The move must still strictly improve the weighted gain under the live labels
        // (earlier applications in this chunk may have changed the neighbourhood).
        let mut own = 0i64;
        let mut tgt = 0i64;
        for (u, w) in self.graph.neighbors(v as u64) {
            let pu = parts[u as usize] as usize;
            if pu == x {
                own += w as i64;
            } else if pu == target {
                tgt += w as i64;
            }
        }
        if tgt <= own {
            return false;
        }
        self.part_weights[x] -= vw;
        self.part_weights[target] += vw;
        true
    }
}

/// Run up to `sweeps` passes of greedy boundary refinement on the shared sweep engine.
/// A vertex moves to the neighbouring part with the largest positive cut gain, provided
/// the destination part stays below `max_part_weight`. The first sweep covers every
/// vertex (projection from the coarser level changed everything); later sweeps are
/// frontier-driven and the pass stops at a move-free sweep.
pub fn greedy_refine(
    graph: &WeightedGraph,
    parts: &mut [i32],
    num_parts: usize,
    max_part_weight: u64,
    sweeps: usize,
    ws: &mut SweepWorkspace,
) {
    let n = graph.num_vertices();
    if n == 0 || num_parts <= 1 {
        return;
    }
    ws.begin_run(n, num_parts);
    ws.engine.frontier.seed_all(n);
    let SweepWorkspace {
        engine, counters, ..
    } = ws;
    counters.size_v.clear();
    counters.size_v.extend(
        graph
            .part_weights(parts, num_parts)
            .iter()
            .map(|&w| w as i64),
    );
    for _ in 0..sweeps.max(1) {
        let use_frontier = engine.frontier.active_len() > 0;
        if !use_frontier {
            break;
        }
        let mut stage = MlRefine {
            graph,
            part_weights: &mut counters.size_v,
            max_part_weight,
        };
        let moves = engine.sweep(
            n,
            parts,
            true,
            SWEEP_CHUNK,
            &mut stage,
            wg_neighbors(graph),
            |_, _| {},
        );
        if moves == 0 {
            break;
        }
    }
}

/// Force every part under `max_part_weight` by evicting vertices from overweight parts.
///
/// [`greedy_refine`] only makes cut-improving moves, so it preserves whatever imbalance
/// the initial partition (or a projection from a coarser level) handed it — greedy
/// growing's last part, for example, absorbs every leftover vertex. Real multilevel
/// partitioners therefore alternate refinement with an explicit balancing pass; this is
/// that pass. Boundary vertices of overweight parts move to the feasible neighbouring
/// part losing the least cut weight (falling back to the globally lightest part for
/// interior vertices), until no part exceeds the bound or a sweep makes no progress.
/// Scratch and weight buffers are borrowed from the workspace.
pub fn rebalance(
    graph: &WeightedGraph,
    parts: &mut [i32],
    num_parts: usize,
    max_part_weight: u64,
    ws: &mut SweepWorkspace,
) {
    let n = graph.num_vertices();
    if n == 0 || num_parts <= 1 {
        return;
    }
    ws.begin_run(n, num_parts);
    let SweepWorkspace {
        engine, counters, ..
    } = ws;
    counters.size_v.clear();
    counters.size_v.extend(
        graph
            .part_weights(parts, num_parts)
            .iter()
            .map(|&w| w as i64),
    );
    let part_weights = &mut counters.size_v;
    let gain = engine.scratch();
    loop {
        if part_weights.iter().all(|&w| w <= max_part_weight as i64) {
            return;
        }
        let mut moved = 0usize;
        for v in 0..n as u64 {
            let x = parts[v as usize] as usize;
            if part_weights[x] <= max_part_weight as i64 {
                continue;
            }
            let vw = graph.vertex_weights[v as usize] as i64;
            gain.clear();
            for (u, w) in graph.neighbors(v) {
                gain.add(parts[u as usize] as usize, w as f64);
            }
            // Best feasible destination among neighbouring parts: the one keeping the
            // most adjacent edge weight (i.e. losing the least cut).
            let mut best: Option<usize> = None;
            let mut best_gain = 0.0f64;
            for &i in gain.touched() {
                if i == x || part_weights[i] + vw > max_part_weight as i64 {
                    continue;
                }
                if best.is_none() || gain.get(i) > best_gain {
                    best = Some(i);
                    best_gain = gain.get(i);
                }
            }
            // Interior vertex (or all neighbour parts full): lightest feasible part.
            let best = best.or_else(|| {
                (0..num_parts)
                    .filter(|&i| i != x && part_weights[i] + vw <= max_part_weight as i64)
                    .min_by_key(|&i| part_weights[i])
            });
            if let Some(dst) = best {
                part_weights[x] -= vw;
                part_weights[dst] += vw;
                parts[v as usize] = dst as i32;
                moved += 1;
            }
        }
        if moved == 0 {
            // No feasible move exists (e.g. one vertex heavier than the bound);
            // leave the partition as balanced as it can get.
            return;
        }
    }
}

/// Project a coarse-level partition back onto the fine level: every fine vertex takes the
/// part of the coarse vertex it was contracted into.
pub fn project(fine_to_coarse: &[u64], coarse_parts: &[i32]) -> Vec<i32> {
    fine_to_coarse
        .iter()
        .map(|&c| coarse_parts[c as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrapulp_graph::csr_from_edges;

    fn ws() -> SweepWorkspace {
        SweepWorkspace::new(1)
    }

    #[test]
    fn refinement_reduces_the_cut_of_a_bad_partition() {
        // A path 0..20 with an alternating (worst-case) partition.
        let edges: Vec<_> = (0..19u64).map(|i| (i, i + 1)).collect();
        let g = WeightedGraph::from_csr(&csr_from_edges(20, &edges));
        let mut parts: Vec<i32> = (0..20).map(|v| v % 2).collect();
        let before = g.weighted_cut(&parts);
        greedy_refine(&g, &mut parts, 2, 12, 10, &mut ws());
        let after = g.weighted_cut(&parts);
        assert!(after < before, "{before} -> {after}");
        // Balance constraint respected.
        let weights = g.part_weights(&parts, 2);
        assert!(weights.iter().all(|&w| w <= 12), "{weights:?}");
    }

    #[test]
    fn refinement_is_a_no_op_on_an_optimal_partition() {
        let edges: Vec<_> = (0..9u64).map(|i| (i, i + 1)).collect();
        let g = WeightedGraph::from_csr(&csr_from_edges(10, &edges));
        let mut parts = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        greedy_refine(&g, &mut parts, 2, 6, 5, &mut ws());
        assert_eq!(g.weighted_cut(&parts), 1);
    }

    #[test]
    fn refinement_is_identical_across_thread_counts() {
        // A 24x24 grid with a noisy initial partition: enough moves to exercise the
        // two-phase chunk protocol.
        let mut edges = Vec::new();
        for y in 0..24u64 {
            for x in 0..24u64 {
                let id = y * 24 + x;
                if x + 1 < 24 {
                    edges.push((id, id + 1));
                }
                if y + 1 < 24 {
                    edges.push((id, id + 24));
                }
            }
        }
        let g = WeightedGraph::from_csr(&csr_from_edges(576, &edges));
        let initial: Vec<i32> = (0..576).map(|v| (v * 7 + v / 24) % 4).collect();
        let run = |threads: usize| {
            let mut parts = initial.clone();
            let mut ws = SweepWorkspace::new(threads);
            greedy_refine(&g, &mut parts, 4, 160, 8, &mut ws);
            parts
        };
        let one = run(1);
        assert_eq!(one, run(2), "1 vs 2 threads");
        assert_eq!(one, run(8), "1 vs 8 threads");
    }

    #[test]
    fn projection_maps_coarse_parts_to_fine_vertices() {
        let fine_to_coarse = vec![0, 0, 1, 1, 2];
        let coarse_parts = vec![5, 6, 7];
        assert_eq!(project(&fine_to_coarse, &coarse_parts), vec![5, 5, 6, 6, 7]);
    }

    #[test]
    fn refinement_handles_single_part_gracefully() {
        let edges: Vec<_> = (0..5u64).map(|i| (i, i + 1)).collect();
        let g = WeightedGraph::from_csr(&csr_from_edges(6, &edges));
        let mut parts = vec![0; 6];
        greedy_refine(&g, &mut parts, 1, 100, 3, &mut ws());
        assert!(parts.iter().all(|&p| p == 0));
    }

    #[test]
    fn rebalance_drains_overweight_parts() {
        let edges: Vec<_> = (0..15u64).map(|i| (i, i + 1)).collect();
        let g = WeightedGraph::from_csr(&csr_from_edges(16, &edges));
        let mut parts = vec![0i32; 16]; // everything in part 0
        rebalance(&g, &mut parts, 2, 9, &mut ws());
        let weights = g.part_weights(&parts, 2);
        assert!(weights.iter().all(|&w| w <= 9), "{weights:?}");
    }
}
