//! Boundary refinement for the multilevel baselines: a greedy, weight-constrained
//! Fiduccia–Mattheyses-style pass applied after every uncoarsening step.

use crate::weighted::WeightedGraph;

/// Run `sweeps` passes of greedy boundary refinement. A vertex moves to the neighbouring
/// part with the largest positive cut gain, provided the destination part stays below
/// `max_part_weight`.
pub fn greedy_refine(
    graph: &WeightedGraph,
    parts: &mut [i32],
    num_parts: usize,
    max_part_weight: u64,
    sweeps: usize,
) {
    let n = graph.num_vertices();
    if n == 0 || num_parts <= 1 {
        return;
    }
    let mut part_weights = graph.part_weights(parts, num_parts);
    let mut gain = vec![0u64; num_parts];
    let mut touched: Vec<usize> = Vec::new();
    for _ in 0..sweeps.max(1) {
        let mut moved = 0usize;
        for v in 0..n as u64 {
            let x = parts[v as usize] as usize;
            for &t in &touched {
                gain[t] = 0;
            }
            touched.clear();
            for (u, w) in graph.neighbors(v) {
                let pu = parts[u as usize] as usize;
                if gain[pu] == 0 {
                    touched.push(pu);
                }
                gain[pu] += w;
            }
            let own = gain[x];
            let vw = graph.vertex_weights[v as usize];
            let mut best = x;
            let mut best_gain = own;
            for &i in &touched {
                if i == x {
                    continue;
                }
                if part_weights[i] + vw > max_part_weight {
                    continue;
                }
                if gain[i] > best_gain {
                    best_gain = gain[i];
                    best = i;
                }
            }
            if best != x {
                part_weights[x] -= vw;
                part_weights[best] += vw;
                parts[v as usize] = best as i32;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

/// Force every part under `max_part_weight` by evicting vertices from overweight parts.
///
/// [`greedy_refine`] only makes cut-improving moves, so it preserves whatever imbalance
/// the initial partition (or a projection from a coarser level) handed it — greedy
/// growing's last part, for example, absorbs every leftover vertex. Real multilevel
/// partitioners therefore alternate refinement with an explicit balancing pass; this is
/// that pass. Boundary vertices of overweight parts move to the feasible neighbouring
/// part losing the least cut weight (falling back to the globally lightest part for
/// interior vertices), until no part exceeds the bound or a sweep makes no progress.
pub fn rebalance(graph: &WeightedGraph, parts: &mut [i32], num_parts: usize, max_part_weight: u64) {
    let n = graph.num_vertices();
    if n == 0 || num_parts <= 1 {
        return;
    }
    let mut part_weights = graph.part_weights(parts, num_parts);
    let mut gain = vec![0u64; num_parts];
    let mut touched: Vec<usize> = Vec::new();
    loop {
        if part_weights.iter().all(|&w| w <= max_part_weight) {
            return;
        }
        let mut moved = 0usize;
        for v in 0..n as u64 {
            let x = parts[v as usize] as usize;
            if part_weights[x] <= max_part_weight {
                continue;
            }
            let vw = graph.vertex_weights[v as usize];
            for &t in &touched {
                gain[t] = 0;
            }
            touched.clear();
            for (u, w) in graph.neighbors(v) {
                let pu = parts[u as usize] as usize;
                if gain[pu] == 0 {
                    touched.push(pu);
                }
                gain[pu] += w;
            }
            // Best feasible destination among neighbouring parts: the one keeping the
            // most adjacent edge weight (i.e. losing the least cut).
            let mut best: Option<usize> = None;
            let mut best_gain = 0u64;
            for &i in &touched {
                if i == x || part_weights[i] + vw > max_part_weight {
                    continue;
                }
                if best.is_none() || gain[i] > best_gain {
                    best = Some(i);
                    best_gain = gain[i];
                }
            }
            // Interior vertex (or all neighbour parts full): lightest feasible part.
            let best = best.or_else(|| {
                (0..num_parts)
                    .filter(|&i| i != x && part_weights[i] + vw <= max_part_weight)
                    .min_by_key(|&i| part_weights[i])
            });
            if let Some(dst) = best {
                part_weights[x] -= vw;
                part_weights[dst] += vw;
                parts[v as usize] = dst as i32;
                moved += 1;
            }
        }
        if moved == 0 {
            // No feasible move exists (e.g. one vertex heavier than the bound);
            // leave the partition as balanced as it can get.
            return;
        }
    }
}

/// Project a coarse-level partition back onto the fine level: every fine vertex takes the
/// part of the coarse vertex it was contracted into.
pub fn project(fine_to_coarse: &[u64], coarse_parts: &[i32]) -> Vec<i32> {
    fine_to_coarse
        .iter()
        .map(|&c| coarse_parts[c as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrapulp_graph::csr_from_edges;

    #[test]
    fn refinement_reduces_the_cut_of_a_bad_partition() {
        // A path 0..20 with an alternating (worst-case) partition.
        let edges: Vec<_> = (0..19u64).map(|i| (i, i + 1)).collect();
        let g = WeightedGraph::from_csr(&csr_from_edges(20, &edges));
        let mut parts: Vec<i32> = (0..20).map(|v| v % 2).collect();
        let before = g.weighted_cut(&parts);
        greedy_refine(&g, &mut parts, 2, 12, 10);
        let after = g.weighted_cut(&parts);
        assert!(after < before, "{before} -> {after}");
        // Balance constraint respected.
        let weights = g.part_weights(&parts, 2);
        assert!(weights.iter().all(|&w| w <= 12), "{weights:?}");
    }

    #[test]
    fn refinement_is_a_no_op_on_an_optimal_partition() {
        let edges: Vec<_> = (0..9u64).map(|i| (i, i + 1)).collect();
        let g = WeightedGraph::from_csr(&csr_from_edges(10, &edges));
        let mut parts = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        greedy_refine(&g, &mut parts, 2, 6, 5);
        assert_eq!(g.weighted_cut(&parts), 1);
    }

    #[test]
    fn projection_maps_coarse_parts_to_fine_vertices() {
        let fine_to_coarse = vec![0, 0, 1, 1, 2];
        let coarse_parts = vec![5, 6, 7];
        assert_eq!(project(&fine_to_coarse, &coarse_parts), vec![5, 5, 6, 6, 7]);
    }

    #[test]
    fn refinement_handles_single_part_gracefully() {
        let edges: Vec<_> = (0..5u64).map(|i| (i, i + 1)).collect();
        let g = WeightedGraph::from_csr(&csr_from_edges(6, &edges));
        let mut parts = vec![0; 6];
        greedy_refine(&g, &mut parts, 1, 100, 3);
        assert!(parts.iter().all(|&p| p == 0));
    }
}
