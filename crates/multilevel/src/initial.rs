//! Initial partitioning of the coarsest graph.
//!
//! Once coarsening has shrunk the graph to a few hundred (weighted) vertices, a direct
//! k-way partition is computed with greedy graph growing: parts are grown one at a time
//! from a pseudo-peripheral seed, always absorbing the boundary vertex with the largest
//! connection to the growing part, until the part reaches its share of the total vertex
//! weight.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::weighted::WeightedGraph;

/// Greedy graph-growing k-way initial partition.
pub fn greedy_growing(graph: &WeightedGraph, num_parts: usize, seed: u64) -> Vec<i32> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    if num_parts <= 1 {
        return vec![0; n];
    }
    let total_weight = graph.total_vertex_weight();
    let target = (total_weight as f64 / num_parts as f64).ceil();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut parts = vec![-1i32; n];
    let mut assigned_weight = 0u64;

    for part in 0..num_parts as i32 {
        // The final part absorbs every remaining vertex.
        if part as usize == num_parts - 1 {
            for slot in parts.iter_mut() {
                if *slot == -1 {
                    *slot = part;
                }
            }
            break;
        }
        // Seed with an unassigned vertex (random probe, falling back to a scan).
        let mut seed_vertex = None;
        for _ in 0..32 {
            let v = rng.gen_range(0..n);
            if parts[v] == -1 {
                seed_vertex = Some(v as u64);
                break;
            }
        }
        let seed_vertex =
            match seed_vertex.or_else(|| (0..n as u64).find(|&v| parts[v as usize] == -1)) {
                Some(v) => v,
                None => break,
            };

        let mut part_weight = 0u64;
        // connection[v] = total edge weight from v into the growing part.
        let mut connection = vec![0u64; n];
        let mut in_frontier = vec![false; n];
        let mut frontier: Vec<u64> = vec![seed_vertex];
        in_frontier[seed_vertex as usize] = true;

        while (part_weight as f64) < target && !frontier.is_empty() {
            // Pick the frontier vertex with maximum connection to the part (the seed has
            // connection 0 and is picked first).
            let (idx, &v) = frontier
                .iter()
                .enumerate()
                .max_by_key(|(_, &v)| connection[v as usize])
                .unwrap();
            frontier.swap_remove(idx);
            if parts[v as usize] != -1 {
                continue;
            }
            parts[v as usize] = part;
            part_weight += graph.vertex_weights[v as usize];
            assigned_weight += graph.vertex_weights[v as usize];
            for (u, w) in graph.neighbors(v) {
                if parts[u as usize] == -1 {
                    connection[u as usize] += w;
                    if !in_frontier[u as usize] {
                        in_frontier[u as usize] = true;
                        frontier.push(u);
                    }
                }
            }
        }
    }
    // Safety net: any still-unassigned vertex joins the lightest part.
    let mut weights = graph.part_weights(
        &parts.iter().map(|&p| p.max(0)).collect::<Vec<_>>(),
        num_parts,
    );
    for (v, slot) in parts.iter_mut().enumerate() {
        if *slot == -1 {
            let lightest = (0..num_parts).min_by_key(|&i| weights[i]).unwrap();
            *slot = lightest as i32;
            weights[lightest] += graph.vertex_weights[v];
        }
    }
    let _ = assigned_weight;
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrapulp_graph::csr_from_edges;

    fn grid(w: u64, h: u64) -> WeightedGraph {
        let mut e = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let id = y * w + x;
                if x + 1 < w {
                    e.push((id, id + 1));
                }
                if y + 1 < h {
                    e.push((id, id + w));
                }
            }
        }
        WeightedGraph::from_csr(&csr_from_edges(w * h, &e))
    }

    #[test]
    fn growing_produces_valid_balanced_parts() {
        let g = grid(12, 12);
        let parts = greedy_growing(&g, 4, 3);
        assert_eq!(parts.len(), 144);
        assert!(parts.iter().all(|&p| (0..4).contains(&p)));
        let weights = g.part_weights(&parts, 4);
        let max = *weights.iter().max().unwrap() as f64;
        assert!(max / 36.0 < 1.5, "weights {weights:?}");
    }

    #[test]
    fn growing_respects_connectivity_for_two_parts() {
        let g = grid(10, 10);
        let parts = greedy_growing(&g, 2, 1);
        let cut = g.weighted_cut(&parts);
        // A greedy bisection of a 10x10 grid should cut far fewer edges than random
        // (random expectation is half of 180 edges).
        assert!(cut < 60, "cut {cut}");
    }

    #[test]
    fn single_part_and_empty_graph() {
        let g = grid(3, 3);
        assert!(greedy_growing(&g, 1, 0).iter().all(|&p| p == 0));
        let empty = WeightedGraph::from_csr(&csr_from_edges(0, &[]));
        assert!(greedy_growing(&empty, 4, 0).is_empty());
    }

    #[test]
    fn weighted_vertices_are_balanced_by_weight() {
        // Two heavy vertices and many light ones.
        let csr = csr_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let mut g = WeightedGraph::from_csr(&csr);
        g.vertex_weights = vec![10, 1, 1, 1, 1, 10];
        let parts = greedy_growing(&g, 2, 5);
        let weights = g.part_weights(&parts, 2);
        assert!(weights.iter().all(|&w| w <= 16), "{weights:?}");
    }
}
