//! The multilevel partitioner drivers.
//!
//! * [`MetisLikePartitioner`] — heavy-edge-matching coarsening + greedy-growing initial
//!   partition + boundary refinement at every level. This is the same algorithmic family
//!   as ParMETIS, which the paper uses as its traditional-partitioner baseline
//!   (Table II, Figs. 4 and 6); like ParMETIS it excels on meshes and struggles (or runs
//!   out of memory) on highly skewed graphs.
//! * [`LpCoarsenKwayPartitioner`] — size-constrained label-propagation clustering as the
//!   coarsening step, as in the Meyerhenke-Sanders-Schulz partitioner the paper compares
//!   against in Fig. 6 (single constraint, single objective).

use xtrapulp::{
    greedy_seed_unassigned, validate_warm_start, PartitionError, PartitionParams, Partitioner,
    SweepWorkspace, WarmStartPartitioner,
};
use xtrapulp_graph::Csr;

use crate::coarsen::{contract, heavy_edge_matching, label_prop_clustering, Coarsening};
use crate::initial::greedy_growing;
use crate::refine::{greedy_refine, project, rebalance};
use crate::weighted::WeightedGraph;

/// Which coarsening scheme a multilevel run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoarseningScheme {
    HeavyEdgeMatching,
    LabelPropClustering,
}

/// Shared multilevel machinery.
fn multilevel_partition(
    csr: &Csr,
    params: &PartitionParams,
    scheme: CoarseningScheme,
    refine_sweeps: usize,
) -> Vec<i32> {
    let n = csr.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    if params.num_parts <= 1 {
        return vec![0; n];
    }

    let coarsest_target = (params.num_parts * 30).max(200);
    let mut levels: Vec<(WeightedGraph, Option<Coarsening>)> = Vec::new();
    let mut current = WeightedGraph::from_csr(csr);
    let total_weight = current.total_vertex_weight();
    let max_part_weight = ((1.0 + params.vertex_imbalance) * total_weight as f64
        / params.num_parts as f64)
        .ceil() as u64;

    // Coarsening loop: stop when the graph is small enough or shrinkage stalls.
    let mut level_seed = params.seed;
    while current.num_vertices() > coarsest_target {
        let coarsening = match scheme {
            CoarseningScheme::HeavyEdgeMatching => heavy_edge_matching(&current, level_seed),
            CoarseningScheme::LabelPropClustering => {
                // Cluster size is capped well below the part size so the initial
                // partition retains freedom.
                let cap = (max_part_weight / 8).max(2);
                label_prop_clustering(&current, cap, 3, level_seed)
            }
        };
        // Guard against stalls (e.g. star graphs where matching can only pair the hub
        // with one leaf per level): stop coarsening and partition the current level.
        if coarsening.num_coarse as f64 > current.num_vertices() as f64 * 0.95 {
            break;
        }
        let coarse = contract(&current, &coarsening);
        levels.push((current, Some(coarsening)));
        current = coarse;
        level_seed = level_seed.wrapping_add(1);
    }
    levels.push((current, None));

    // Initial partition of the coarsest level. One sweep workspace serves the whole
    // V-cycle (and both passes per level), so no level allocates its own frontier,
    // weight or gain buffers.
    let mut ws = SweepWorkspace::new(params.sweep_threads);
    let (coarsest, _) = levels.last().unwrap();
    let mut parts = greedy_growing(coarsest, params.num_parts, params.seed ^ 0xC0A53);
    rebalance(
        coarsest,
        &mut parts,
        params.num_parts,
        max_part_weight,
        &mut ws,
    );
    greedy_refine(
        coarsest,
        &mut parts,
        params.num_parts,
        max_part_weight,
        refine_sweeps,
        &mut ws,
    );

    // Uncoarsen: project the partition up one level at a time, restore balance (the
    // coarse level's vertex granularity can overshoot the bound), and refine.
    for idx in (0..levels.len() - 1).rev() {
        let (fine_graph, coarsening) = &levels[idx];
        let coarsening = coarsening
            .as_ref()
            .expect("every non-coarsest level stores its coarsening");
        parts = project(&coarsening.fine_to_coarse, &parts);
        rebalance(
            fine_graph,
            &mut parts,
            params.num_parts,
            max_part_weight,
            &mut ws,
        );
        greedy_refine(
            fine_graph,
            &mut parts,
            params.num_parts,
            max_part_weight,
            refine_sweeps,
            &mut ws,
        );
    }
    parts
}

/// Warm-start path shared by both multilevel drivers: no V-cycle at all. The previous
/// part vector already encodes the multilevel structure, so repartitioning after a small
/// mutation only needs the finest-level machinery — greedy assignment of unassigned
/// (new) vertices, a rebalance pass and boundary refinement.
fn multilevel_partition_from(
    csr: &Csr,
    params: &PartitionParams,
    initial: &[i32],
    refine_sweeps: usize,
) -> Vec<i32> {
    let n = csr.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    if params.num_parts <= 1 {
        return vec![0; n];
    }
    let mut parts = initial.to_vec();
    greedy_seed_unassigned(csr, &mut parts, params.num_parts);
    let graph = WeightedGraph::from_csr(csr);
    let max_part_weight = ((1.0 + params.vertex_imbalance) * graph.total_vertex_weight() as f64
        / params.num_parts as f64)
        .ceil() as u64;
    let mut ws = SweepWorkspace::new(params.sweep_threads);
    rebalance(
        &graph,
        &mut parts,
        params.num_parts,
        max_part_weight,
        &mut ws,
    );
    greedy_refine(
        &graph,
        &mut parts,
        params.num_parts,
        max_part_weight,
        refine_sweeps,
        &mut ws,
    );
    parts
}

/// METIS-family multilevel k-way partitioner (the ParMETIS stand-in).
#[derive(Debug, Clone, Copy)]
pub struct MetisLikePartitioner {
    /// Refinement sweeps per level (default 4).
    pub refine_sweeps: usize,
}

impl Default for MetisLikePartitioner {
    fn default() -> Self {
        MetisLikePartitioner { refine_sweeps: 4 }
    }
}

impl Partitioner for MetisLikePartitioner {
    fn name(&self) -> &'static str {
        "MetisLike"
    }

    fn try_partition(
        &self,
        csr: &Csr,
        params: &PartitionParams,
    ) -> Result<Vec<i32>, PartitionError> {
        params.validate()?;
        Ok(multilevel_partition(
            csr,
            params,
            CoarseningScheme::HeavyEdgeMatching,
            self.refine_sweeps,
        ))
    }
}

impl WarmStartPartitioner for MetisLikePartitioner {
    fn try_partition_from(
        &self,
        csr: &Csr,
        params: &PartitionParams,
        initial: &[i32],
    ) -> Result<Vec<i32>, PartitionError> {
        params.validate()?;
        validate_warm_start(csr.num_vertices(), params.num_parts, initial)?;
        Ok(multilevel_partition_from(
            csr,
            params,
            initial,
            self.refine_sweeps,
        ))
    }
}

/// KaHIP-style multilevel partitioner with size-constrained label-propagation coarsening
/// (the Meyerhenke et al. stand-in for the Fig. 6 single-objective comparison).
#[derive(Debug, Clone, Copy)]
pub struct LpCoarsenKwayPartitioner {
    /// Refinement sweeps per level (default 6; the original invests more work in
    /// refinement than METIS does, trading time for quality).
    pub refine_sweeps: usize,
}

impl Default for LpCoarsenKwayPartitioner {
    fn default() -> Self {
        LpCoarsenKwayPartitioner { refine_sweeps: 6 }
    }
}

impl Partitioner for LpCoarsenKwayPartitioner {
    fn name(&self) -> &'static str {
        "LpCoarsenKway"
    }

    fn try_partition(
        &self,
        csr: &Csr,
        params: &PartitionParams,
    ) -> Result<Vec<i32>, PartitionError> {
        params.validate()?;
        Ok(multilevel_partition(
            csr,
            params,
            CoarseningScheme::LabelPropClustering,
            self.refine_sweeps,
        ))
    }
}

impl WarmStartPartitioner for LpCoarsenKwayPartitioner {
    fn try_partition_from(
        &self,
        csr: &Csr,
        params: &PartitionParams,
        initial: &[i32],
    ) -> Result<Vec<i32>, PartitionError> {
        params.validate()?;
        validate_warm_start(csr.num_vertices(), params.num_parts, initial)?;
        Ok(multilevel_partition_from(
            csr,
            params,
            initial,
            self.refine_sweeps,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrapulp::metrics::is_valid_partition;
    use xtrapulp::RandomPartitioner;
    use xtrapulp_graph::csr_from_edges;

    fn grid_csr(w: u64, h: u64) -> Csr {
        let mut e = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let id = y * w + x;
                if x + 1 < w {
                    e.push((id, id + 1));
                }
                if y + 1 < h {
                    e.push((id, id + w));
                }
            }
        }
        csr_from_edges(w * h, &e)
    }

    #[test]
    fn metis_like_partitions_a_grid_well() {
        let csr = grid_csr(32, 32);
        let params = PartitionParams {
            num_parts: 8,
            seed: 3,
            ..Default::default()
        };
        let (parts, q) = MetisLikePartitioner::default().partition_with_quality(&csr, &params);
        assert!(is_valid_partition(&parts, 8));
        assert!(
            q.vertex_imbalance <= 1.15,
            "imbalance {}",
            q.vertex_imbalance
        );
        // A 32x32 grid cut 8 ways: a good partitioner cuts a small fraction of the 1984
        // edges; random would cut ~87%.
        assert!(q.edge_cut_ratio < 0.25, "cut ratio {}", q.edge_cut_ratio);
    }

    #[test]
    fn lp_coarsen_partitions_a_grid_well() {
        let csr = grid_csr(32, 32);
        let params = PartitionParams {
            num_parts: 4,
            seed: 9,
            ..Default::default()
        };
        let (parts, q) = LpCoarsenKwayPartitioner::default().partition_with_quality(&csr, &params);
        assert!(is_valid_partition(&parts, 4));
        assert!(
            q.vertex_imbalance <= 1.25,
            "imbalance {}",
            q.vertex_imbalance
        );
        assert!(q.edge_cut_ratio < 0.2, "cut ratio {}", q.edge_cut_ratio);
    }

    #[test]
    fn multilevel_beats_random_on_small_world_graphs() {
        // Even on a small-world graph (where cuts are intrinsically high), multilevel
        // methods should beat random assignment.
        let el = xtrapulp_gen::GraphConfig::new(
            xtrapulp_gen::GraphKind::SmallWorld {
                num_vertices: 2000,
                k: 4,
                rewire_probability: 0.1,
            },
            7,
        )
        .generate();
        let csr = el.to_csr();
        let params = PartitionParams {
            num_parts: 8,
            seed: 1,
            ..Default::default()
        };
        let (_, q_ml) = MetisLikePartitioner::default().partition_with_quality(&csr, &params);
        let (_, q_rand) = RandomPartitioner.partition_with_quality(&csr, &params);
        assert!(q_ml.edge_cut < q_rand.edge_cut);
        assert!(q_ml.vertex_imbalance < 1.2);
    }

    #[test]
    fn handles_tiny_graphs_and_single_part() {
        let csr = grid_csr(3, 3);
        let params = PartitionParams::with_parts(2);
        let parts = MetisLikePartitioner::default().partition(&csr, &params);
        assert!(is_valid_partition(&parts, 2));
        let parts =
            MetisLikePartitioner::default().partition(&csr, &PartitionParams::with_parts(1));
        assert!(parts.iter().all(|&p| p == 0));
        let empty = csr_from_edges(0, &[]);
        assert!(MetisLikePartitioner::default()
            .partition(&empty, &params)
            .is_empty());
    }

    #[test]
    fn warm_start_refines_without_a_v_cycle() {
        let csr = grid_csr(24, 24);
        let params = PartitionParams {
            num_parts: 4,
            seed: 6,
            ..Default::default()
        };
        for driver in [
            &MetisLikePartitioner::default() as &dyn WarmStartPartitioner,
            &LpCoarsenKwayPartitioner::default(),
        ] {
            let (cold, cold_q) = driver.try_partition_with_quality(&csr, &params).unwrap();
            // Unassign a small patch (simulating new vertices) and warm-start.
            let mut initial = cold.clone();
            for part in initial.iter_mut().take(12) {
                *part = xtrapulp_graph::UNASSIGNED;
            }
            let warm = driver.try_partition_from(&csr, &params, &initial).unwrap();
            assert!(is_valid_partition(&warm, 4), "{}", driver.name());
            let warm_q = xtrapulp::metrics::PartitionQuality::evaluate(&csr, &warm, 4);
            assert!(
                warm_q.edge_cut as f64 <= cold_q.edge_cut as f64 * 1.10,
                "{}: warm cut {} vs cold {}",
                driver.name(),
                warm_q.edge_cut,
                cold_q.edge_cut
            );
            assert!(warm_q.vertex_imbalance <= 1.15, "{}", driver.name());
            // Bad warm vectors are typed errors.
            assert!(driver.try_partition_from(&csr, &params, &[0; 3]).is_err());
        }
    }

    #[test]
    fn multilevel_results_are_deterministic() {
        let csr = grid_csr(16, 16);
        let params = PartitionParams {
            num_parts: 4,
            seed: 42,
            ..Default::default()
        };
        let a = MetisLikePartitioner::default().partition(&csr, &params);
        let b = MetisLikePartitioner::default().partition(&csr, &params);
        assert_eq!(a, b);
        let c = LpCoarsenKwayPartitioner::default().partition(&csr, &params);
        let d = LpCoarsenKwayPartitioner::default().partition(&csr, &params);
        assert_eq!(c, d);
    }

    #[test]
    fn star_graph_does_not_stall_coarsening() {
        // A star cannot be matched effectively; the stall guard must terminate coarsening.
        let edges: Vec<_> = (1..500u64).map(|i| (0, i)).collect();
        let csr = csr_from_edges(500, &edges);
        let params = PartitionParams {
            num_parts: 4,
            seed: 2,
            ..Default::default()
        };
        let parts = MetisLikePartitioner::default().partition(&csr, &params);
        assert!(is_valid_partition(&parts, 4));
    }
}
