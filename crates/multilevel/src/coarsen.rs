//! Graph coarsening: heavy-edge matching (METIS-style) and size-constrained label
//! propagation clustering (KaHIP / Meyerhenke-style).
//!
//! Both produce a mapping from fine vertices to coarse vertices; [`contract`] then builds
//! the coarse weighted graph by summing vertex weights within clusters and edge weights
//! between clusters.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::weighted::WeightedGraph;

/// Result of one coarsening step.
#[derive(Debug, Clone)]
pub struct Coarsening {
    /// For each fine vertex, the id of the coarse vertex it maps to.
    pub fine_to_coarse: Vec<u64>,
    /// Number of coarse vertices.
    pub num_coarse: usize,
}

/// Heavy-edge matching: visit vertices in random order and match each unmatched vertex
/// with its unmatched neighbour of maximum edge weight. Matched pairs become one coarse
/// vertex; unmatched vertices survive unchanged.
pub fn heavy_edge_matching(graph: &WeightedGraph, seed: u64) -> Coarsening {
    let n = graph.num_vertices();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut order: Vec<u64> = (0..n as u64).collect();
    order.shuffle(&mut rng);
    let unmatched = u64::MAX;
    let mut matched_with = vec![unmatched; n];
    for &v in &order {
        if matched_with[v as usize] != unmatched {
            continue;
        }
        let mut best: Option<(u64, u64)> = None;
        for (u, w) in graph.neighbors(v) {
            if u != v && matched_with[u as usize] == unmatched && best.is_none_or(|(_, bw)| w > bw)
            {
                best = Some((u, w));
            }
        }
        match best {
            Some((u, _)) => {
                matched_with[v as usize] = u;
                matched_with[u as usize] = v;
            }
            None => matched_with[v as usize] = v,
        }
    }
    // Assign coarse ids: each pair (or singleton) gets one id, numbered by the smaller
    // endpoint for determinism.
    let mut fine_to_coarse = vec![u64::MAX; n];
    let mut next = 0u64;
    for v in 0..n as u64 {
        if fine_to_coarse[v as usize] != u64::MAX {
            continue;
        }
        let m = matched_with[v as usize];
        fine_to_coarse[v as usize] = next;
        if m != v && m != unmatched {
            fine_to_coarse[m as usize] = next;
        }
        next += 1;
    }
    Coarsening {
        fine_to_coarse,
        num_coarse: next as usize,
    }
}

/// Size-constrained label propagation clustering (the coarsening scheme of Meyerhenke,
/// Sanders and Schulz for complex networks): every vertex starts in its own cluster; for
/// a few sweeps each vertex joins the neighbouring cluster with the largest incident edge
/// weight, as long as the cluster's total vertex weight stays below `max_cluster_weight`.
pub fn label_prop_clustering(
    graph: &WeightedGraph,
    max_cluster_weight: u64,
    sweeps: usize,
    seed: u64,
) -> Coarsening {
    let n = graph.num_vertices();
    let mut cluster: Vec<u64> = (0..n as u64).collect();
    let mut cluster_weight: Vec<u64> = graph.vertex_weights.clone();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut order: Vec<u64> = (0..n as u64).collect();
    // BTreeMap keeps the candidate iteration order deterministic, so gain ties are
    // always broken the same way.
    let mut gain: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for _ in 0..sweeps.max(1) {
        order.shuffle(&mut rng);
        let mut moved = 0usize;
        for &v in &order {
            gain.clear();
            for (u, w) in graph.neighbors(v) {
                if u == v {
                    continue;
                }
                *gain.entry(cluster[u as usize]).or_insert(0) += w;
            }
            let current = cluster[v as usize];
            let vw = graph.vertex_weights[v as usize];
            let mut best = current;
            let mut best_gain = gain.get(&current).copied().unwrap_or(0);
            for (&c, &g) in gain.iter() {
                if c == current {
                    continue;
                }
                if cluster_weight[c as usize] + vw > max_cluster_weight {
                    continue;
                }
                if g > best_gain {
                    best_gain = g;
                    best = c;
                }
            }
            if best != current {
                cluster_weight[current as usize] -= vw;
                cluster_weight[best as usize] += vw;
                cluster[v as usize] = best;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
    // Renumber clusters densely.
    let mut remap: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut fine_to_coarse = vec![0u64; n];
    let mut next = 0u64;
    for v in 0..n {
        let c = cluster[v];
        let id = *remap.entry(c).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        fine_to_coarse[v] = id;
    }
    Coarsening {
        fine_to_coarse,
        num_coarse: next as usize,
    }
}

/// Contract a graph according to a coarsening: cluster vertex weights are summed, and
/// parallel edges between clusters are merged by summing their weights. Intra-cluster
/// edges disappear.
pub fn contract(graph: &WeightedGraph, coarsening: &Coarsening) -> WeightedGraph {
    let nc = coarsening.num_coarse;
    let mut vertex_weights = vec![0u64; nc];
    for v in 0..graph.num_vertices() {
        vertex_weights[coarsening.fine_to_coarse[v] as usize] += graph.vertex_weights[v];
    }
    let mut arcs: Vec<(u64, u64, u64)> = Vec::with_capacity(graph.num_arcs());
    for v in 0..graph.num_vertices() as u64 {
        let cv = coarsening.fine_to_coarse[v as usize];
        for (u, w) in graph.neighbors(v) {
            let cu = coarsening.fine_to_coarse[u as usize];
            if cv != cu {
                arcs.push((cv, cu, w));
            }
        }
    }
    WeightedGraph::from_weighted_arcs(nc, arcs, vertex_weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrapulp_graph::csr_from_edges;

    fn path_graph(n: u64) -> WeightedGraph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        WeightedGraph::from_csr(&csr_from_edges(n, &edges))
    }

    #[test]
    fn matching_roughly_halves_the_graph() {
        let g = path_graph(100);
        let c = heavy_edge_matching(&g, 1);
        assert!(c.num_coarse >= 50 && c.num_coarse < 80, "{}", c.num_coarse);
        // Every fine vertex maps to a valid coarse vertex.
        assert!(c
            .fine_to_coarse
            .iter()
            .all(|&c_| (c_ as usize) < c.num_coarse));
    }

    #[test]
    fn matching_preserves_total_vertex_weight() {
        let g = path_graph(37);
        let c = heavy_edge_matching(&g, 3);
        let coarse = contract(&g, &c);
        assert_eq!(coarse.total_vertex_weight(), 37);
    }

    #[test]
    fn matching_prefers_heavy_edges() {
        // Triangle with one very heavy edge: the heavy edge must be contracted.
        let arcs = vec![
            (0, 1, 100),
            (1, 0, 100),
            (1, 2, 1),
            (2, 1, 1),
            (0, 2, 1),
            (2, 0, 1),
        ];
        let g = WeightedGraph::from_weighted_arcs(3, arcs, vec![1, 1, 1]);
        let c = heavy_edge_matching(&g, 7);
        assert_eq!(c.fine_to_coarse[0], c.fine_to_coarse[1]);
        assert_ne!(c.fine_to_coarse[0], c.fine_to_coarse[2]);
    }

    #[test]
    fn label_prop_clustering_respects_size_limit() {
        let g = path_graph(64);
        let c = label_prop_clustering(&g, 8, 4, 5);
        let coarse = contract(&g, &c);
        assert!(coarse.vertex_weights.iter().all(|&w| w <= 8));
        assert_eq!(coarse.total_vertex_weight(), 64);
        assert!(c.num_coarse < 64, "clustering should shrink the graph");
    }

    #[test]
    fn contract_merges_parallel_edges() {
        // Square 0-1-2-3-0; contract {0,1} and {2,3} -> one coarse edge of weight 2.
        let csr = csr_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let g = WeightedGraph::from_csr(&csr);
        let coarsening = Coarsening {
            fine_to_coarse: vec![0, 0, 1, 1],
            num_coarse: 2,
        };
        let coarse = contract(&g, &coarsening);
        assert_eq!(coarse.num_vertices(), 2);
        assert_eq!(coarse.neighbors(0).collect::<Vec<_>>(), vec![(1, 2)]);
        assert_eq!(coarse.vertex_weights, vec![2, 2]);
    }

    #[test]
    fn coarsening_is_deterministic() {
        let g = path_graph(50);
        let a = heavy_edge_matching(&g, 9).fine_to_coarse;
        let b = heavy_edge_matching(&g, 9).fine_to_coarse;
        assert_eq!(a, b);
        let c = label_prop_clustering(&g, 10, 3, 9).fine_to_coarse;
        let d = label_prop_clustering(&g, 10, 3, 9).fine_to_coarse;
        assert_eq!(c, d);
    }
}
