//! The cross-crate partitioner registry.
//!
//! Every partitioning method in the workspace — the distributed XtraPuLP kernel, the
//! shared-memory PuLP baseline, the three naive baselines from `xtrapulp`, and the two
//! multilevel baselines from `xtrapulp-multilevel` — is enumerable here and resolvable
//! by name. Experiment harnesses and serving code iterate [`Method::all`] or call
//! [`Method::from_name`] instead of hand-maintaining partitioner lists.

use serde::{Deserialize, Serialize};
use xtrapulp::{
    EdgeBlockPartitioner, PartitionError, Partitioner, PulpPartitioner, RandomPartitioner,
    VertexBlockPartitioner, WarmStartPartitioner, XtraPulpPartitioner,
};
use xtrapulp_multilevel::{LpCoarsenKwayPartitioner, MetisLikePartitioner};

/// One of the seven partitioning methods the workspace implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// The paper's distributed multi-constraint multi-objective partitioner
    /// (Algorithm 1), run over a rank runtime.
    XtraPulp,
    /// The shared-memory PuLP-MM baseline.
    Pulp,
    /// Uniform random assignment.
    Random,
    /// Contiguous vertex blocks.
    VertexBlock,
    /// Contiguous blocks balanced by edge count.
    EdgeBlock,
    /// Heavy-edge-matching multilevel baseline (the ParMETIS stand-in).
    MetisLike,
    /// Label-propagation-coarsening multilevel baseline (the KaHIP stand-in).
    LpCoarsenKway,
}

impl Method {
    /// Every method, in the order the paper's tables list them.
    pub fn all() -> [Method; 7] {
        [
            Method::XtraPulp,
            Method::Pulp,
            Method::Random,
            Method::VertexBlock,
            Method::EdgeBlock,
            Method::MetisLike,
            Method::LpCoarsenKway,
        ]
    }

    /// The methods that compute a partition (everything but the naive assignments);
    /// convenient for quality-comparison harnesses.
    pub fn all_quality() -> [Method; 4] {
        [
            Method::XtraPulp,
            Method::Pulp,
            Method::MetisLike,
            Method::LpCoarsenKway,
        ]
    }

    /// Canonical display name, identical to the wrapped partitioner's
    /// [`Partitioner::name`].
    pub fn name(self) -> &'static str {
        match self {
            Method::XtraPulp => "XtraPuLP",
            Method::Pulp => "PuLP",
            Method::Random => "Random",
            Method::VertexBlock => "VertexBlock",
            Method::EdgeBlock => "EdgeBlock",
            Method::MetisLike => "MetisLike",
            Method::LpCoarsenKway => "LpCoarsenKway",
        }
    }

    /// Resolve a method by name, case-insensitively, accepting the canonical names plus
    /// the aliases the paper's figures use (`VertBlock`, `KaHIP`-style names, `METIS`).
    /// The error message of a failed lookup lists every valid canonical name.
    pub fn from_name(name: &str) -> Result<Method, PartitionError> {
        match name.to_ascii_lowercase().as_str() {
            "xtrapulp" => Ok(Method::XtraPulp),
            "pulp" => Ok(Method::Pulp),
            "random" => Ok(Method::Random),
            "vertexblock" | "vertblock" => Ok(Method::VertexBlock),
            "edgeblock" => Ok(Method::EdgeBlock),
            "metislike" | "metis" | "parmetis" => Ok(Method::MetisLike),
            "lpcoarsenkway" | "kahip" | "kahip-like" => Ok(Method::LpCoarsenKway),
            _ => Err(PartitionError::UnknownMethod {
                name: name.to_string(),
                expected: Method::all()
                    .iter()
                    .map(|m| m.name())
                    .collect::<Vec<_>>()
                    .join(", "),
            }),
        }
    }

    /// True for methods that run collectively over a rank runtime (and therefore use a
    /// `Session`'s persistent ranks rather than running inline).
    pub fn is_distributed(self) -> bool {
        matches!(self, Method::XtraPulp)
    }

    /// True for methods that can be warm-started from a previous part vector (see
    /// [`WarmStartPartitioner`]); the naive assignments cannot, and repartition from
    /// scratch every time. Derived from [`Method::build_warm`] so the two can never
    /// drift apart.
    pub fn supports_warm_start(self) -> bool {
        self.build_warm(1).is_some()
    }

    /// Construct the warm-start-capable partitioner implementing this method, or `None`
    /// for methods without warm-start support.
    pub fn build_warm(self, nranks: usize) -> Option<Box<dyn WarmStartPartitioner>> {
        match self {
            Method::XtraPulp => Some(Box::new(XtraPulpPartitioner::new(nranks))),
            Method::Pulp => Some(Box::new(PulpPartitioner)),
            Method::MetisLike => Some(Box::new(MetisLikePartitioner::default())),
            Method::LpCoarsenKway => Some(Box::new(LpCoarsenKwayPartitioner::default())),
            Method::Random | Method::VertexBlock | Method::EdgeBlock => None,
        }
    }

    /// Construct the partitioner implementing this method. `nranks` is used by
    /// distributed methods and ignored by the serial ones.
    pub fn build(self, nranks: usize) -> Box<dyn Partitioner> {
        match self {
            Method::XtraPulp => Box::new(XtraPulpPartitioner::new(nranks)),
            Method::Pulp => Box::new(PulpPartitioner),
            Method::Random => Box::new(RandomPartitioner),
            Method::VertexBlock => Box::new(VertexBlockPartitioner),
            Method::EdgeBlock => Box::new(EdgeBlockPartitioner),
            Method::MetisLike => Box::new(MetisLikePartitioner::default()),
            Method::LpCoarsenKway => Box::new(LpCoarsenKwayPartitioner::default()),
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Method {
    type Err = PartitionError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Method::from_name(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_name_round_trips_every_method() {
        for method in Method::all() {
            assert_eq!(Method::from_name(method.name()), Ok(method));
            // Case-insensitive.
            assert_eq!(
                Method::from_name(&method.name().to_ascii_uppercase()),
                Ok(method)
            );
        }
    }

    #[test]
    fn unknown_names_are_typed_errors_listing_the_valid_names() {
        let err = Method::from_name("metric-like").unwrap_err();
        assert!(matches!(
            &err,
            PartitionError::UnknownMethod { name, .. } if name == "metric-like"
        ));
        let msg = err.to_string();
        for method in Method::all() {
            assert!(
                msg.contains(method.name()),
                "error message must list '{}': {msg}",
                method.name()
            );
        }
    }

    #[test]
    fn built_partitioners_report_the_registry_name() {
        for method in Method::all() {
            assert_eq!(method.build(2).name(), method.name());
        }
    }

    #[test]
    fn figure_aliases_resolve() {
        assert_eq!(Method::from_name("VertBlock"), Ok(Method::VertexBlock));
        assert_eq!(Method::from_name("KaHIP-like"), Ok(Method::LpCoarsenKway));
        assert_eq!(Method::from_name("ParMETIS"), Ok(Method::MetisLike));
    }
}
