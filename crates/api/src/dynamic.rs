//! The dynamic partitioning session: apply updates, repartition warm, report.

use serde::Serialize;
use xtrapulp::metrics::PartitionQuality;
use xtrapulp::sweep::{StageBreakdown, SweepStats};
use xtrapulp::{
    try_pulp_partition_from_with_stats_timed, try_pulp_partition_with_stats_timed,
    validate_warm_start, PartitionError,
};
use xtrapulp_comm::{CommStatsSnapshot, PhaseTimer};
use xtrapulp_dynamic::{
    seed_from_previous, DynamicGraph, GraphDelta, UpdateBatch, UpdateError, UpdateSummary,
};
use xtrapulp_graph::{Csr, DistGraph, GlobalId, UNASSIGNED};

use crate::method::Method;
use crate::report::PartitionReport;
use crate::session::{PartitionJob, Session};

/// The outcome of one repartitioning epoch: a full [`PartitionReport`] extended with the
/// dynamic-subsystem accounting — which epoch it belongs to, whether it was
/// warm-started, how many previously-assigned vertices changed part, and the
/// warm-vs-cold label-propagation sweep counts that explain the speedup.
#[derive(Debug, Clone, Serialize)]
pub struct DynamicReport {
    /// The underlying partitioning report (part vector, quality, timings, comm).
    pub report: PartitionReport,
    /// The graph epoch this partition corresponds to (number of update batches applied).
    pub epoch: u64,
    /// Whether this run was warm-started from the previous epoch's partition.
    pub warm_start: bool,
    /// Previously-assigned vertices whose part changed relative to the last epoch
    /// (newly added vertices are excluded — they had no part to migrate from).
    pub vertices_migrated: u64,
    /// Label-propagation sweeps this run executed (0 for non-LP methods).
    pub lp_sweeps: u64,
    /// Sweeps of the most recent from-scratch run, the warm-vs-cold reference.
    pub cold_lp_sweeps: u64,
    /// Vertices the label-propagation engine scored in this run — the real unit of
    /// sweep work. Warm starts seeded from the delta's touched neighbourhood score a
    /// small fraction of what a cold run does.
    pub vertices_scored: u64,
    /// Scored vertices of the most recent from-scratch run, the warm-vs-cold
    /// reference for sweep throughput.
    pub cold_vertices_scored: u64,
    /// The run's sweep/scored work split per schedule stage (refine / balance /
    /// churn), so trajectories can attribute where label-propagation effort went.
    pub stages: StageBreakdown,
}

/// [`DynamicReport`] minus the part vector, for result streams.
#[derive(Debug, Clone, Serialize)]
struct DynamicSummary {
    method: String,
    epoch: u64,
    warm_start: bool,
    vertices_migrated: u64,
    lp_sweeps: u64,
    cold_lp_sweeps: u64,
    vertices_scored: u64,
    cold_vertices_scored: u64,
    stages: StageBreakdown,
    num_vertices: u64,
    num_edges: u64,
    quality: PartitionQuality,
    total_seconds: f64,
}

impl DynamicReport {
    /// Serialise the full report (including the part vector) to JSON. Infallible by
    /// construction: every field is numbers, strings and their containers, and the
    /// writer appends to an in-memory `String`.
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// Serialise everything except the part vector to JSON.
    pub fn to_json_summary(&self) -> String {
        let summary = DynamicSummary {
            method: self.report.method.clone(),
            epoch: self.epoch,
            warm_start: self.warm_start,
            vertices_migrated: self.vertices_migrated,
            lp_sweeps: self.lp_sweeps,
            cold_lp_sweeps: self.cold_lp_sweeps,
            vertices_scored: self.vertices_scored,
            cold_vertices_scored: self.cold_vertices_scored,
            stages: self.stages,
            num_vertices: self.report.num_vertices,
            num_edges: self.report.num_edges,
            quality: self.report.quality,
            total_seconds: self.report.total_seconds(),
        };
        serde::json::to_string(&summary)
    }
}

/// A partitioning session over a *mutating* graph.
///
/// `DynamicSession` owns a [`Session`] (and through it the persistent rank runtime), the
/// authoritative [`DynamicGraph`], and the partition of the latest epoch. The serving
/// loop is `apply_updates` → `repartition` → [`DynamicReport`]:
///
/// * [`apply_updates`](DynamicSession::apply_updates) validates a batch against the live
///   topology and applies it incrementally — including to the per-rank
///   [`DistGraph`]s, which are kept alive across epochs and evolved with
///   [`DistGraph::apply_delta`] instead of being redistributed from the CSR each time.
/// * [`repartition`](DynamicSession::repartition) runs the session's job: from scratch
///   on the first call (and for methods without warm-start support), warm-started from
///   the previous epoch's part vector afterwards — new vertices are assigned greedily
///   and only a short refinement schedule runs, which is what makes repartitioning after
///   a small mutation much cheaper than a cold run.
///
/// A rejected batch or malformed job leaves the session (and its graph) untouched.
pub struct DynamicSession {
    session: Session,
    job: PartitionJob,
    graph: DynamicGraph,
    /// Latest partition, kept at graph length (`UNASSIGNED` for vertices added since).
    parts: Option<Vec<i32>>,
    /// Global ids touched by the update batches applied since the last repartition
    /// (edge endpoints and added vertices), deduplicated; seeds the warm run's
    /// refinement frontier. `None` until the first partition exists.
    touched: Option<Vec<GlobalId>>,
    cold_lp_sweeps: u64,
    cold_vertices_scored: u64,
    /// Per-rank distributed graphs, built lazily for distributed methods and evolved
    /// incrementally on every update batch.
    rank_graphs: Option<Vec<DistGraph>>,
}

impl DynamicSession {
    /// Wrap a session and an initial graph. The first [`repartition`] is a cold run.
    ///
    /// [`repartition`]: DynamicSession::repartition
    pub fn new(session: Session, csr: Csr, job: PartitionJob) -> Result<Self, PartitionError> {
        job.params.validate()?;
        Ok(DynamicSession {
            session,
            job,
            graph: DynamicGraph::new(csr),
            parts: None,
            touched: None,
            cold_lp_sweeps: 0,
            cold_vertices_scored: 0,
            rank_graphs: None,
        })
    }

    /// Convenience: spawn a fresh `nranks`-rank session around the graph.
    pub fn spawn(nranks: usize, csr: Csr, job: PartitionJob) -> Result<Self, PartitionError> {
        DynamicSession::new(Session::new(nranks)?, csr, job)
    }

    /// The live graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Number of update batches applied so far.
    pub fn epoch(&self) -> u64 {
        self.graph.epoch()
    }

    /// The job every [`repartition`](DynamicSession::repartition) runs.
    pub fn job(&self) -> &PartitionJob {
        &self.job
    }

    /// The latest epoch's partition, if one has been computed. Entries for vertices
    /// added since the last repartition are [`UNASSIGNED`].
    pub fn parts(&self) -> Option<&[i32]> {
        self.parts.as_deref()
    }

    /// The wrapped session, e.g. to run analytics jobs on the same ranks.
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Tear the dynamic layer down, returning the inner session.
    pub fn into_session(self) -> Session {
        self.session
    }

    /// Install `parts` as the session's current partition without running a job —
    /// the crash-recovery path, seeding a replayed topology from a durable
    /// checkpoint taken at exactly this graph state. The next
    /// [`repartition`](DynamicSession::repartition) warm-starts from it with an
    /// empty touched set, as if the partition had been computed in-session.
    pub(crate) fn seed_partition(&mut self, parts: Vec<i32>) -> Result<(), PartitionError> {
        validate_warm_start(self.graph.num_vertices(), self.job.params.num_parts, &parts)?;
        self.parts = Some(parts);
        self.touched = Some(Vec::new());
        Ok(())
    }

    /// Validate one update batch against the live topology and apply it: the CSR is
    /// rebuilt incrementally, the per-rank distributed graphs (when built) evolve via
    /// [`DistGraph::apply_delta`], and the carried part vector is extended with
    /// [`UNASSIGNED`] entries for new vertices. A rejected batch changes nothing.
    pub fn apply_updates(&mut self, batch: &UpdateBatch) -> Result<UpdateSummary, UpdateError> {
        self.apply_updates_with_delta(batch).map(|(s, _)| s)
    }

    /// [`apply_updates`](DynamicSession::apply_updates), additionally returning the
    /// normalised [`GraphDelta`] that was applied — the record an epoch consumer
    /// (incremental analytics, SpMV layouts) needs to update its own replicas without
    /// re-deriving the batch's net effect.
    pub fn apply_updates_with_delta(
        &mut self,
        batch: &UpdateBatch,
    ) -> Result<(UpdateSummary, GraphDelta), UpdateError> {
        let delta = self.graph.validate(batch)?;
        // Growth under an Explicit ownership table is handled in the graph layer:
        // `DistGraph::apply_delta` (and the from-CSR build paths) extend the table by
        // hashing the new tail vertices to ranks, so no method/distribution combination
        // rejects a valid batch.
        if let Some(graphs) = self.rank_graphs.take() {
            let updated = self
                .session
                .execute(|ctx| graphs[ctx.rank()].apply_delta(ctx, &delta));
            self.rank_graphs = Some(updated);
        }
        let summary = self.graph.apply_validated(&delta);
        if let Some(parts) = self.parts.take() {
            self.parts = Some(seed_from_previous(&parts, &delta));
        }
        if let Some(touched) = self.touched.as_mut() {
            touched.extend(delta.touched_including_added());
            touched.sort_unstable();
            touched.dedup();
        }
        Ok((summary, delta))
    }

    /// Partition the current epoch's graph and report.
    ///
    /// Runs warm-started from the previous partition whenever one exists and the
    /// session's method supports it ([`Method::supports_warm_start`]); otherwise from
    /// scratch. The report's `vertices_migrated` and `lp_sweeps`/`cold_lp_sweeps` fields
    /// quantify the incremental behaviour.
    pub fn repartition(&mut self) -> Result<DynamicReport, PartitionError> {
        let warm_seed = if self.job.method.supports_warm_start() {
            self.parts.clone()
        } else {
            None
        };
        let warm_start = warm_seed.is_some();

        // The touched set accumulated since the last repartition scopes the warm run's
        // refinement frontier; it is consumed (and reset) by this run.
        let touched = if warm_start {
            self.touched.take()
        } else {
            None
        };
        let (report, lp_sweeps, vertices_scored, stages) = if self.job.method.is_distributed() {
            if self.rank_graphs.is_none() {
                self.rank_graphs = Some(self.session.build_rank_graphs(self.graph.csr()));
            }
            let graphs = self.rank_graphs.as_ref().expect("just built");
            self.session.run_on_rank_graphs(
                &self.job,
                graphs,
                warm_seed.as_deref(),
                touched.as_deref(),
                self.graph.num_edges(),
            )?
        } else {
            self.run_serial(warm_seed.as_deref(), touched.as_deref())?
        };

        if !warm_start {
            self.cold_lp_sweeps = lp_sweeps;
            self.cold_vertices_scored = vertices_scored;
        }
        let vertices_migrated = match &self.parts {
            Some(previous) => previous
                .iter()
                .zip(&report.parts)
                .filter(|&(&old, &new)| old != UNASSIGNED && old != new)
                .count() as u64,
            None => 0,
        };
        self.parts = Some(report.parts.clone());
        // From here on the partition matches the live graph exactly: the next warm run
        // only needs to look at whatever future batches touch.
        self.touched = Some(Vec::new());
        Ok(DynamicReport {
            report,
            epoch: self.graph.epoch(),
            warm_start,
            vertices_migrated,
            lp_sweeps,
            cold_lp_sweeps: self.cold_lp_sweeps,
            vertices_scored,
            cold_vertices_scored: self.cold_vertices_scored,
            stages,
        })
    }

    /// Serial methods: cold via the regular submission path (except PuLP, which runs
    /// directly so its real sweep counts can be reported), warm via the method's
    /// [`WarmStartPartitioner`](xtrapulp::WarmStartPartitioner). The multilevel and
    /// naive methods report 0 sweeps.
    fn run_serial(
        &mut self,
        warm_seed: Option<&[i32]>,
        touched: Option<&[GlobalId]>,
    ) -> Result<(PartitionReport, u64, u64, StageBreakdown), PartitionError> {
        if warm_seed.is_none() && self.job.method != Method::Pulp {
            let report = self.session.submit(&self.job, self.graph.csr())?;
            return Ok((report, 0, 0, StageBreakdown::default()));
        }
        let csr = self.graph.csr();
        let params = self.job.params;
        let mut timings = PhaseTimer::new();
        let (parts, stats) = match (self.job.method, warm_seed) {
            (Method::Pulp, None) => {
                let (parts, stats, sweep_timings) = timings.time("partition", || {
                    try_pulp_partition_with_stats_timed(csr, &params)
                })?;
                // The per-stage sweep wall-clock breakdown ends up in the report's
                // timings, same phase names as the distributed path.
                timings.merge_max(&sweep_timings);
                (parts, stats)
            }
            (Method::Pulp, Some(seed)) => {
                let (parts, stats, sweep_timings) = timings.time("partition", || {
                    try_pulp_partition_from_with_stats_timed(csr, &params, seed, touched)
                })?;
                timings.merge_max(&sweep_timings);
                (parts, stats)
            }
            (method, Some(seed)) => {
                let partitioner = method
                    .build_warm(self.session.nranks())
                    .expect("warm_seed is only built for warm-capable methods");
                let parts = timings.time("partition", || {
                    partitioner.try_partition_from(csr, &params, seed)
                })?;
                (parts, SweepStats::default())
            }
            (_, None) => unreachable!("non-PuLP cold serial jobs go through Session::submit"),
        };
        let quality = timings.time("metrics", || {
            PartitionQuality::evaluate(csr, &parts, params.num_parts)
        });
        self.session.note_job_completed();
        Ok((
            PartitionReport {
                method: self.job.method.name().to_string(),
                num_parts: params.num_parts,
                nranks: 1,
                num_vertices: csr.num_vertices() as u64,
                num_edges: csr.num_edges(),
                parts,
                quality,
                timings,
                comm: CommStatsSnapshot::default(),
                trace_path: None,
            },
            stats.sweeps,
            stats.vertices_scored,
            stats.stages,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrapulp::PartitionParams;
    use xtrapulp_gen::{GraphConfig, GraphKind};
    use xtrapulp_graph::Distribution;

    fn ba_csr(n: u64, seed: u64) -> Csr {
        GraphConfig::new(
            GraphKind::BarabasiAlbert {
                num_vertices: n,
                edges_per_vertex: 5,
            },
            seed,
        )
        .generate()
        .to_csr()
    }

    fn job(method: Method, parts: usize) -> PartitionJob {
        PartitionJob::new(method).with_params(PartitionParams {
            num_parts: parts,
            seed: 13,
            ..Default::default()
        })
    }

    #[test]
    fn apply_repartition_loop_over_distributed_method() {
        // A mesh keeps part identity stable across epochs, which makes the migration
        // accounting assertable; skewed graphs churn labels intrinsically.
        let csr = GraphConfig::new(
            GraphKind::Grid2d {
                width: 20,
                height: 40,
                diagonal: false,
            },
            5,
        )
        .generate()
        .to_csr();
        let mut dyn_session =
            DynamicSession::spawn(3, csr.clone(), job(Method::XtraPulp, 4)).unwrap();

        // Epoch 0: cold run.
        let cold = dyn_session.repartition().unwrap();
        assert_eq!(cold.epoch, 0);
        assert!(!cold.warm_start);
        assert_eq!(cold.vertices_migrated, 0);
        assert!(cold.lp_sweeps > 0);
        assert_eq!(cold.report.parts.len(), 800);

        // Mutate: add two vertices with a few edges, drop one edge.
        let mut batch = UpdateBatch::new();
        batch.add_vertices(2);
        batch
            .insert_edge(800, 0)
            .insert_edge(800, 1)
            .insert_edge(801, 800);
        let (u, v) = {
            let u = 5u64;
            let v = csr.neighbors(u)[0];
            (u, v)
        };
        batch.delete_edge(u, v);
        let summary = dyn_session.apply_updates(&batch).unwrap();
        assert_eq!(summary.epoch, 1);
        assert_eq!(summary.vertices_added, 2);
        assert_eq!(dyn_session.graph().num_vertices(), 802);

        // Epoch 1: warm run — fewer sweeps, same quality ballpark, few migrations.
        let warm = dyn_session.repartition().unwrap();
        assert_eq!(warm.epoch, 1);
        assert!(warm.warm_start);
        assert_eq!(warm.report.parts.len(), 802);
        assert!(
            warm.lp_sweeps < warm.cold_lp_sweeps,
            "warm {} vs cold {}",
            warm.lp_sweeps,
            warm.cold_lp_sweeps
        );
        assert!(
            warm.vertices_migrated < 800 / 2,
            "a tiny delta should not migrate most of the graph ({})",
            warm.vertices_migrated
        );
        assert!(warm.report.quality.vertex_imbalance <= 1.30);
        // Both epochs count towards the wrapped session's lifetime job counter.
        assert_eq!(dyn_session.session_mut().jobs_completed(), 2);
    }

    #[test]
    fn serial_methods_warm_start_through_the_same_facade() {
        for method in [Method::Pulp, Method::MetisLike] {
            let csr = ba_csr(600, 8);
            let mut dyn_session = DynamicSession::spawn(1, csr, job(method, 4)).unwrap();
            let cold = dyn_session.repartition().unwrap();
            assert!(!cold.warm_start, "{method}");

            let mut batch = UpdateBatch::new();
            batch
                .add_vertices(1)
                .insert_edge(600, 3)
                .insert_edge(600, 7);
            dyn_session.apply_updates(&batch).unwrap();
            let warm = dyn_session.repartition().unwrap();
            assert!(warm.warm_start, "{method}");
            assert_eq!(warm.report.parts.len(), 601, "{method}");
            assert_ne!(warm.report.parts[600], UNASSIGNED, "{method}");
            if method == Method::Pulp {
                assert!(warm.lp_sweeps < warm.cold_lp_sweeps, "{method}");
                // The serial path surfaces the per-stage sweep wall-clock in the
                // report's timings, like the distributed path does.
                assert!(
                    warm.report.timings.get("sweep_refine") > std::time::Duration::ZERO,
                    "serial warm PuLP runs must report sweep_refine time"
                );
            }
        }
    }

    #[test]
    fn methods_without_warm_support_repartition_cold_every_time() {
        let csr = ba_csr(300, 2);
        let mut dyn_session = DynamicSession::spawn(1, csr, job(Method::Random, 4)).unwrap();
        dyn_session.repartition().unwrap();
        let mut batch = UpdateBatch::new();
        batch.add_vertices(1).insert_edge(300, 0);
        dyn_session.apply_updates(&batch).unwrap();
        let second = dyn_session.repartition().unwrap();
        assert!(!second.warm_start);
        assert_eq!(second.report.parts.len(), 301);
    }

    #[test]
    fn rejected_batches_leave_the_session_intact() {
        let csr = ba_csr(300, 4);
        let mut dyn_session = DynamicSession::spawn(2, csr, job(Method::XtraPulp, 4)).unwrap();
        dyn_session.repartition().unwrap();
        let mut bad = UpdateBatch::new();
        bad.delete_edge(0, 299); // almost surely not an edge
        if dyn_session.graph().csr().neighbors(0).contains(&299) {
            return; // pathological seed; nothing to test
        }
        assert!(dyn_session.apply_updates(&bad).is_err());
        assert_eq!(dyn_session.epoch(), 0);
        // The session still serves jobs afterwards.
        let report = dyn_session.repartition().unwrap();
        assert_eq!(report.report.parts.len(), 300);
    }

    #[test]
    fn explicit_distribution_growth_hashes_tail_vertices_to_owners() {
        // Growing a graph distributed with an explicit ownership table used to be
        // rejected (the table had no owners for the new vertices); the graph layer now
        // hashes the tail to ranks, so the serving loop keeps working across growth.
        let csr = ba_csr(120, 3);
        let owners: Vec<i32> = (0..120).map(|v| v % 2).collect();
        let session = Session::with_distribution(2, Distribution::from_parts(&owners)).unwrap();
        let mut dyn_session = DynamicSession::new(session, csr, job(Method::XtraPulp, 2)).unwrap();
        dyn_session.repartition().unwrap();

        let mut batch = UpdateBatch::new();
        batch
            .add_vertices(2)
            .insert_edge(120, 0)
            .insert_edge(121, 120);
        let summary = dyn_session.apply_updates(&batch).unwrap();
        assert_eq!(summary.epoch, 1);
        assert_eq!(dyn_session.graph().num_vertices(), 122);
        let warm = dyn_session.repartition().unwrap();
        assert!(warm.warm_start);
        assert_eq!(warm.report.parts.len(), 122);
        assert_ne!(warm.report.parts[120], UNASSIGNED);
        assert_ne!(warm.report.parts[121], UNASSIGNED);
        // Growth before the rank graphs are first built goes through the same hashing
        // path in `Session::build_rank_graphs`.
        let csr2 = ba_csr(120, 5);
        let owners2: Vec<i32> = (0..120).map(|v| v % 2).collect();
        let session2 = Session::with_distribution(2, Distribution::from_parts(&owners2)).unwrap();
        let mut fresh = DynamicSession::new(session2, csr2, job(Method::XtraPulp, 2)).unwrap();
        let mut grow_first = UpdateBatch::new();
        grow_first.add_vertices(1).insert_edge(120, 1);
        fresh.apply_updates(&grow_first).unwrap();
        assert_eq!(fresh.repartition().unwrap().report.parts.len(), 121);
    }

    #[test]
    fn dynamic_report_serialises_with_the_dynamic_fields() {
        let csr = ba_csr(200, 6);
        let mut dyn_session = DynamicSession::spawn(1, csr, job(Method::Pulp, 2)).unwrap();
        let report = dyn_session.repartition().unwrap();
        let json = report.to_json();
        for key in ["\"epoch\":0", "\"warm_start\":false", "\"lp_sweeps\":"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let summary = report.to_json_summary();
        assert!(!summary.contains("\"parts\""));
        assert!(summary.contains("\"vertices_migrated\""));
    }
}
