//! The concurrent serving session: a [`DynamicSession`] behind the `xtrapulp-serve`
//! pipeline, so readers and writers stop sharing one lock-stepped loop.
//!
//! [`ServingSession::spawn`] runs the cold epoch-0 partition inline (readers always
//! observe a fully-published snapshot), then moves the dynamic session onto a
//! background worker thread. From there on:
//!
//! * any number of threads [`ingest`](ServingSession::ingest) update batches through
//!   the bounded queue (typed backpressure when they outrun the partitioner);
//! * the worker drains batch groups, applies them through the dynamic subsystem's
//!   validation, repartitions warm-started from the previous epoch, and atomically
//!   publishes each new [`PartitionSnapshot`](xtrapulp_serve::PartitionSnapshot);
//! * any number of reader threads hold the [`EpochStore`] and query `part_of`,
//!   whole-part views and migration diffs against immutable epochs — the epoch-`k`
//!   partition keeps serving while epoch `k+1` repartitions.
//!
//! [`shutdown`](ServingSession::shutdown) is drain-then-stop and hands the
//! [`DynamicSession`] back, so a service can fall back to the single-writer loop (or
//! run analytics on the final graph) after the concurrent phase.

use std::net::SocketAddr;
use std::path::Path;
use std::sync::Arc;

use xtrapulp::PartitionError;
use xtrapulp_analytics::{AnalyticsConsumer, AnalyticsSubscriber, WarmPolicy};
use xtrapulp_dynamic::{UpdateBatch, UpdateError};
use xtrapulp_graph::{Csr, GraphDelta};
use xtrapulp_obs as obs;
use xtrapulp_serve::{
    replay_update_log, EpochStore, IngestError, IngestQueue, PartitionSnapshot, RepartitionEngine,
    ReplayError, ReplayOutcome, ServeConfig, ServeError, ServeHandle, ServeLatencies, ServeStats,
};

use crate::dynamic::{DynamicReport, DynamicSession};
use crate::session::PartitionJob;

/// Why the serving engine failed to process a cycle: a batch the dynamic subsystem
/// rejected, or a repartition error. Rejected batches leave the graph untouched and
/// are counted in [`ServeStats::batches_rejected`]; repartition failures keep the
/// previous epoch serving. (Pipeline-level failures — a dead worker — surface as
/// [`xtrapulp_serve::ServeError`] instead.)
#[derive(Debug)]
pub enum EngineError {
    /// The update batch failed validation against the live topology.
    Update(UpdateError),
    /// The repartition job failed.
    Partition(PartitionError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Update(e) => write!(f, "update batch rejected: {e}"),
            EngineError::Partition(e) => write!(f, "repartition failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The production [`RepartitionEngine`]: a [`DynamicSession`] driven on the worker
/// thread. Public only through [`ServingSession`].
struct DynamicEngine {
    session: DynamicSession,
    /// Deltas applied since the last *published* snapshot; drained into the next one
    /// so epoch consumers can replay them (a failed publish keeps them pending).
    pending_deltas: Vec<GraphDelta>,
}

impl RepartitionEngine for DynamicEngine {
    type Error = EngineError;

    fn apply(&mut self, batch: &UpdateBatch) -> Result<(), EngineError> {
        let (_, delta) = self
            .session
            .apply_updates_with_delta(batch)
            .map_err(EngineError::Update)?;
        self.pending_deltas.push(delta);
        Ok(())
    }

    fn repartition(&mut self) -> Result<PartitionSnapshot, EngineError> {
        let report = self.session.repartition().map_err(EngineError::Partition)?;
        Ok(snapshot_from(
            report,
            std::mem::take(&mut self.pending_deltas),
        ))
    }
}

/// Convert one dynamic-session epoch report into the immutable snapshot the epoch
/// store publishes; `deltas` are the graph mutations applied since the previously
/// published snapshot.
fn snapshot_from(report: DynamicReport, deltas: Vec<GraphDelta>) -> PartitionSnapshot {
    PartitionSnapshot {
        epoch: report.epoch,
        num_parts: report.report.num_parts,
        quality: report.report.quality,
        warm_start: report.warm_start,
        lp_sweeps: report.lp_sweeps,
        vertices_scored: report.vertices_scored,
        stages: report.stages,
        vertices_migrated: report.vertices_migrated,
        parts: report.report.parts,
        deltas: deltas.into(),
    }
}

/// A concurrently-served dynamic partitioning session.
pub struct ServingSession {
    handle: ServeHandle<DynamicEngine>,
    nranks: usize,
    /// The epoch the store was seeded with and the topology it covered, retained so
    /// analytics consumers can bootstrap a replica and catch up via the store's delta
    /// history. This duplicates the graph for the session's lifetime even when no
    /// consumer subscribes — an opt-out (or a delta-compacted base) is a known
    /// follow-up (see ROADMAP).
    base_epoch: u64,
    base_csr: Csr,
    base_parts: Vec<i32>,
}

impl ServingSession {
    /// Spawn a serving session with the default [`ServeConfig`]: `nranks` rank threads
    /// under the hood, `csr` as the initial graph, `job` as the partitioning request
    /// every epoch runs. Blocks for the cold epoch-0 partition, then returns with the
    /// background worker running.
    pub fn spawn(
        nranks: usize,
        csr: Csr,
        job: PartitionJob,
    ) -> Result<ServingSession, PartitionError> {
        ServingSession::spawn_with_config(nranks, csr, job, ServeConfig::default())
    }

    /// [`spawn`](ServingSession::spawn) with an explicit queue capacity and batching
    /// policy.
    pub fn spawn_with_config(
        nranks: usize,
        csr: Csr,
        job: PartitionJob,
        config: ServeConfig,
    ) -> Result<ServingSession, PartitionError> {
        let base_csr = csr.clone();
        let mut session = DynamicSession::spawn(nranks, csr, job)?;
        let initial = snapshot_from(session.repartition()?, Vec::new());
        let base_epoch = initial.epoch;
        let base_parts = initial.parts.clone();
        let handle = xtrapulp_serve::spawn(
            DynamicEngine {
                session,
                pending_deltas: Vec::new(),
            },
            initial,
            config,
        );
        Ok(ServingSession {
            handle,
            nranks,
            base_epoch,
            base_csr,
            base_parts,
        })
    }

    /// Subscribe an incremental analytics consumer to this session's epoch stream.
    ///
    /// The consumer gets its own `nranks`-rank runtime and a topology replica seeded
    /// from the graph the session was spawned with, distributed by the cold epoch's
    /// partition; its initial (cold) analytics state is computed before this returns.
    /// Each [`poll`](AnalyticsSubscriber::poll) then blocks for the next published
    /// epoch and repairs the consumer's PageRank / components / coreness state from
    /// the epoch's [`GraphDelta`](xtrapulp_graph::GraphDelta) stream — warm while the
    /// churn stays under the [`WarmPolicy`] thresholds, cold (and re-distributed
    /// around the published partition) beyond them.
    ///
    /// Subscribe before heavy ingest: a consumer that lags more than the store's
    /// delta history (see [`xtrapulp_serve::DEFAULT_DELTA_HISTORY`]) behind the
    /// published epoch observes [`SubscriberError::Lagged`](
    /// xtrapulp_analytics::SubscriberError::Lagged) and must be rebuilt.
    pub fn subscribe_analytics(&self, policy: WarmPolicy) -> AnalyticsSubscriber {
        let mut consumer =
            AnalyticsConsumer::new(self.nranks, self.base_csr.clone(), &self.base_parts, policy);
        consumer.set_epoch(self.base_epoch);
        AnalyticsSubscriber::new(self.handle.store(), consumer)
    }

    /// The epoch store readers subscribe to: clone the returned `Arc` into as many
    /// reader threads as needed; every snapshot it hands out is immutable and fully
    /// published.
    pub fn store(&self) -> Arc<EpochStore> {
        self.handle.store()
    }

    /// The latest published epoch (wait-free).
    pub fn epoch(&self) -> u64 {
        self.handle.store().epoch()
    }

    /// The shared ingest queue, for producer threads that submit directly.
    pub fn queue(&self) -> Arc<IngestQueue> {
        self.handle.queue()
    }

    /// Submit one update batch without blocking. Returns
    /// [`IngestError::QueueFull`] as backpressure when producers outrun the worker.
    pub fn try_ingest(&self, batch: UpdateBatch) -> Result<(), IngestError> {
        self.handle.try_ingest(batch)
    }

    /// Submit one update batch, blocking while the queue is full.
    pub fn ingest(&self, batch: UpdateBatch) -> Result<(), IngestError> {
        self.handle.ingest(batch)
    }

    /// Replay a recorded update log (`.ulog` binary or text, auto-detected) through
    /// the ingest queue in chunks of at most `max_batch_ops` ops, with blocking
    /// backpressure — a recorded trace drives the identical pipeline live producers
    /// use.
    pub fn replay_log(
        &self,
        path: &Path,
        max_batch_ops: usize,
    ) -> Result<ReplayOutcome, ReplayError> {
        replay_update_log(&self.handle.queue(), path, max_batch_ops)
    }

    /// A point-in-time view of the serving counters.
    pub fn stats(&self) -> ServeStats {
        self.handle.stats()
    }

    /// The serving pipeline's latency distributions
    /// ([`xtrapulp_serve::ServeLatencies`]), as mergeable histogram snapshots;
    /// benches subtract consecutive snapshots to report per-window percentiles.
    pub fn latencies(&self) -> ServeLatencies {
        self.handle.latencies()
    }

    /// Start a live metrics plane for this session: bind a Prometheus-style text
    /// exposition endpoint on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port)
    /// and register a collector exposing this session's [`ServeStats`] alongside
    /// the process-global registry (collective latencies, analytics epochs, ...).
    ///
    /// Scrape with `curl http://<local_addr>/metrics` (any path serves the same
    /// body). The endpoint and the collector unregister when the returned handle
    /// is dropped or [`MetricsEndpoint::shutdown`] is called.
    pub fn serve_metrics(&self, addr: &str) -> std::io::Result<MetricsEndpoint> {
        let stats_fn = self.handle.stats_fn();
        let collector = obs::registry::register_collector(move |out| {
            let s = stats_fn();
            render_serve_stats(&s, out);
        });
        let server = obs::MetricsServer::bind(addr)?;
        Ok(MetricsEndpoint {
            server,
            _collector: collector,
        })
    }

    /// The most recent batch-rejection or repartition failure, if any.
    pub fn last_error(&self) -> Option<String> {
        self.handle.last_error()
    }

    /// Drain-then-stop shutdown: close the queue, apply and publish everything already
    /// accepted, then return the inner [`DynamicSession`] (live graph, final
    /// partition, persistent ranks) and the final counters. A worker that died
    /// mid-serve comes back as [`ServeError::WorkerPanicked`] instead of re-raising
    /// the panic here.
    pub fn shutdown(self) -> Result<(DynamicSession, ServeStats), ServeError> {
        let (engine, stats) = self.handle.shutdown()?;
        Ok((engine.session, stats))
    }
}

/// A live metrics endpoint bound by [`ServingSession::serve_metrics`]: the HTTP
/// listener plus the registry collector exposing the session's serving counters.
/// Both shut down when this is dropped.
pub struct MetricsEndpoint {
    server: obs::MetricsServer,
    _collector: obs::registry::CollectorGuard,
}

impl MetricsEndpoint {
    /// The address the endpoint actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Stop the listener thread and unregister the session's collector.
    pub fn shutdown(mut self) {
        self.server.shutdown();
    }
}

/// Append the session's serving counters as Prometheus exposition lines.
fn render_serve_stats(s: &ServeStats, out: &mut String) {
    use std::fmt::Write as _;
    let counters = [
        ("serve_epochs_published", s.epochs_published),
        ("serve_warm_epochs", s.warm_epochs),
        ("serve_cold_epochs", s.cold_epochs),
        ("serve_batches_applied", s.batches_applied),
        ("serve_batches_rejected", s.batches_rejected),
        ("serve_ops_applied", s.ops_applied),
        ("serve_repartition_failures", s.repartition_failures),
    ];
    for (name, v) in counters {
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
    }
    let gauges = [
        ("serve_queue_depth_ops", s.queue_depth_ops as f64),
        ("serve_queue_depth_batches", s.queue_depth_batches as f64),
        ("serve_total_publish_seconds", s.total_publish_seconds),
        ("serve_last_lp_sweeps", s.last_lp_sweeps as f64),
        ("serve_last_vertices_scored", s.last_vertices_scored as f64),
    ];
    for (name, v) in gauges {
        let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
    }
    let summaries = [
        (
            "serve_publish_seconds",
            s.publish_seconds_p50,
            s.publish_seconds_p99,
        ),
        (
            "serve_ingest_to_publish_seconds",
            s.ingest_to_publish_seconds_p50,
            s.ingest_to_publish_seconds_p99,
        ),
    ];
    for (name, p50, p99) in summaries {
        let _ = writeln!(
            out,
            "# TYPE {name} summary\n{name}{{quantile=\"0.5\"}} {p50}\n{name}{{quantile=\"0.99\"}} {p99}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Method;
    use std::time::Duration;
    use xtrapulp::PartitionParams;
    use xtrapulp_gen::{GraphConfig, GraphKind};

    fn ba_csr(n: u64, seed: u64) -> Csr {
        GraphConfig::new(
            GraphKind::BarabasiAlbert {
                num_vertices: n,
                edges_per_vertex: 5,
            },
            seed,
        )
        .generate()
        .to_csr()
    }

    fn job(parts: usize) -> PartitionJob {
        PartitionJob::new(Method::XtraPulp).with_params(PartitionParams {
            num_parts: parts,
            seed: 11,
            ..Default::default()
        })
    }

    #[test]
    fn serving_session_publishes_epochs_and_returns_the_dynamic_session() {
        let csr = ba_csr(400, 3);
        let serving = ServingSession::spawn(2, csr, job(4)).unwrap();
        assert_eq!(serving.epoch(), 0);
        let reader = serving.store();
        assert_eq!(reader.current().num_vertices(), 400);

        let mut batch = UpdateBatch::new();
        batch
            .add_vertices(1)
            .insert_edge(400, 0)
            .insert_edge(400, 1);
        serving.ingest(batch).unwrap();
        let published = reader
            .wait_for_epoch(1, Duration::from_secs(60))
            .expect("worker publishes epoch 1");
        assert!(published.warm_start);
        assert_eq!(published.num_vertices(), 401);

        let (session, stats) = serving.shutdown().expect("worker exits cleanly");
        assert_eq!(stats.batches_applied, 1);
        assert_eq!(stats.warm_epochs, 1);
        assert_eq!(stats.cold_epochs, 0, "epoch 0 is published by the spawner");
        assert_eq!(session.graph().num_vertices(), 401);
        assert_eq!(session.epoch(), 1);
    }

    #[test]
    fn rejected_batches_surface_in_stats_and_last_error() {
        let csr = ba_csr(300, 5);
        // Re-inserting an existing edge is deterministically invalid.
        let (u, v) = (1u64, csr.neighbors(1)[0]);
        let serving = ServingSession::spawn(1, csr, job(2)).unwrap();
        let mut bad = UpdateBatch::new();
        bad.insert_edge(u, v);
        serving.ingest(bad).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while serving.stats().batches_rejected == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let (_, stats) = serving.shutdown().expect("worker exits cleanly");
        assert_eq!(stats.batches_rejected, 1);
        assert_eq!(stats.epochs_published, 0);
    }
}
