//! The concurrent serving session: a [`DynamicSession`] behind the `xtrapulp-serve`
//! pipeline, so readers and writers stop sharing one lock-stepped loop.
//!
//! [`ServingSession::spawn`] runs the cold epoch-0 partition inline (readers always
//! observe a fully-published snapshot), then moves the dynamic session onto a
//! background worker thread. From there on:
//!
//! * any number of threads [`ingest`](ServingSession::ingest) update batches through
//!   the bounded queue (typed backpressure when they outrun the partitioner);
//! * the worker drains batch groups, applies them through the dynamic subsystem's
//!   validation, repartitions warm-started from the previous epoch, and atomically
//!   publishes each new [`PartitionSnapshot`](xtrapulp_serve::PartitionSnapshot);
//! * any number of reader threads hold the [`EpochStore`] and query `part_of`,
//!   whole-part views and migration diffs against immutable epochs — the epoch-`k`
//!   partition keeps serving while epoch `k+1` repartitions.
//!
//! [`shutdown`](ServingSession::shutdown) is drain-then-stop and hands the
//! [`DynamicSession`] back, so a service can fall back to the single-writer loop (or
//! run analytics on the final graph) after the concurrent phase.

use std::fs;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use xtrapulp::metrics::PartitionQuality;
use xtrapulp::{PartitionError, StageBreakdown};
use xtrapulp_analytics::{AnalyticsConsumer, AnalyticsSubscriber, WarmPolicy};
use xtrapulp_dynamic::{UpdateBatch, UpdateError};
use xtrapulp_graph::io::{read_binary_edge_list, write_binary_edge_list};
use xtrapulp_graph::{csr_from_edges, Csr, GraphDelta};
use xtrapulp_obs as obs;
use xtrapulp_serve::durable::{self, Checkpoint, DurableConfig, WalRecord, WalWriter, WAL_FILE};
use xtrapulp_serve::{
    replay_update_log, EpochStore, IngestError, IngestQueue, PartitionSnapshot, RepartitionEngine,
    ReplayError, ReplayOutcome, ServeConfig, ServeError, ServeHandle, ServeLatencies, ServeStats,
};

use crate::dynamic::{DynamicReport, DynamicSession};
use crate::session::PartitionJob;

/// Why the serving engine failed to process a cycle: a batch the dynamic subsystem
/// rejected, or a repartition error. Rejected batches leave the graph untouched and
/// are counted in [`ServeStats::batches_rejected`]; repartition failures keep the
/// previous epoch serving. (Pipeline-level failures — a dead worker — surface as
/// [`xtrapulp_serve::ServeError`] instead.)
#[derive(Debug)]
pub enum EngineError {
    /// The update batch failed validation against the live topology.
    Update(UpdateError),
    /// The repartition job failed.
    Partition(PartitionError),
    /// A durable WAL append or checkpoint write failed. For a batch this means
    /// the batch was rejected *before* touching the graph (write-ahead: nothing
    /// is applied that is not logged); for a repartition the previous epoch
    /// keeps serving and the worker retries.
    Durability(std::io::Error),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Update(e) => write!(f, "update batch rejected: {e}"),
            EngineError::Partition(e) => write!(f, "repartition failed: {e}"),
            EngineError::Durability(e) => write!(f, "durable state write failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Why spawning or recovering a durable serving session failed.
#[derive(Debug)]
pub enum DurabilityError {
    /// Reading or writing the durable directory failed.
    Io(std::io::Error),
    /// A (re)partition run during spawn or recovery replay failed.
    Partition(PartitionError),
    /// The durable state is internally inconsistent (e.g. a checkpoint that
    /// does not match the topology the WAL reproduces).
    Corrupt {
        /// What was inconsistent.
        detail: String,
    },
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "durable state I/O failed: {e}"),
            DurabilityError::Partition(e) => write!(f, "partition during recovery failed: {e}"),
            DurabilityError::Corrupt { detail } => {
                write!(f, "durable state is inconsistent: {detail}")
            }
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Io(e) => Some(e),
            DurabilityError::Partition(e) => Some(e),
            DurabilityError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

impl From<PartitionError> for DurabilityError {
    fn from(e: PartitionError) -> Self {
        DurabilityError::Partition(e)
    }
}

/// The engine's durable side: the open WAL plus the checkpoint policy. Lives on
/// the worker thread with the engine; all writes happen off the serving path.
struct DurableState {
    wal: WalWriter,
    dir: PathBuf,
    checkpoint_every: u64,
    crash_after: Option<u64>,
    last_checkpoint_epoch: u64,
}

/// The production [`RepartitionEngine`]: a [`DynamicSession`] driven on the worker
/// thread. Public only through [`ServingSession`].
struct DynamicEngine {
    session: DynamicSession,
    /// Deltas applied since the last *published* snapshot; drained into the next one
    /// so epoch consumers can replay them (a failed publish keeps them pending).
    pending_deltas: Vec<GraphDelta>,
    /// `Some` for sessions spawned with [`ServingSession::spawn_durable`] or
    /// [`ServingSession::recover`].
    durable: Option<DurableState>,
}

impl RepartitionEngine for DynamicEngine {
    type Error = EngineError;

    fn apply(&mut self, batch: &UpdateBatch) -> Result<(), EngineError> {
        // Write-ahead: the batch is durable before it can touch the graph, so a
        // crash between the append and the apply replays it on recovery, and a
        // batch the dynamic subsystem rejects re-rejects identically on replay.
        if let Some(d) = self.durable.as_mut() {
            d.wal
                .append(&WalRecord::Batch(batch.clone()))
                .map_err(EngineError::Durability)?;
            durable::maybe_inject_crash(d.crash_after, d.wal.records());
        }
        let (_, delta) = self
            .session
            .apply_updates_with_delta(batch)
            .map_err(EngineError::Update)?;
        self.pending_deltas.push(delta);
        Ok(())
    }

    fn repartition(&mut self) -> Result<PartitionSnapshot, EngineError> {
        let report = self.session.repartition().map_err(EngineError::Partition)?;
        if let Some(d) = self.durable.as_mut() {
            d.wal
                .append(&WalRecord::EpochMark {
                    epoch: report.epoch,
                })
                .map_err(EngineError::Durability)?;
            durable::maybe_inject_crash(d.crash_after, d.wal.records());
            if report.epoch.saturating_sub(d.last_checkpoint_epoch) >= d.checkpoint_every {
                let ckpt = Checkpoint {
                    epoch: report.epoch,
                    wal_records: d.wal.records(),
                    parts: report.report.parts.clone(),
                };
                durable::write_checkpoint(&d.dir, &ckpt).map_err(EngineError::Durability)?;
                d.last_checkpoint_epoch = report.epoch;
            }
        }
        Ok(snapshot_from(
            report,
            std::mem::take(&mut self.pending_deltas),
        ))
    }
}

/// Convert one dynamic-session epoch report into the immutable snapshot the epoch
/// store publishes; `deltas` are the graph mutations applied since the previously
/// published snapshot.
fn snapshot_from(report: DynamicReport, deltas: Vec<GraphDelta>) -> PartitionSnapshot {
    PartitionSnapshot {
        epoch: report.epoch,
        num_parts: report.report.num_parts,
        quality: report.report.quality,
        warm_start: report.warm_start,
        lp_sweeps: report.lp_sweeps,
        vertices_scored: report.vertices_scored,
        stages: report.stages,
        vertices_migrated: report.vertices_migrated,
        parts: report.report.parts,
        deltas: deltas.into(),
    }
}

/// A concurrently-served dynamic partitioning session.
pub struct ServingSession {
    handle: ServeHandle<DynamicEngine>,
    nranks: usize,
    /// The epoch the store was seeded with and the topology it covered, retained so
    /// analytics consumers can bootstrap a replica and catch up via the store's delta
    /// history. This duplicates the graph for the session's lifetime even when no
    /// consumer subscribes — an opt-out (or a delta-compacted base) is a known
    /// follow-up (see ROADMAP).
    base_epoch: u64,
    base_csr: Csr,
    base_parts: Vec<i32>,
}

impl ServingSession {
    /// Spawn a serving session with the default [`ServeConfig`]: `nranks` rank threads
    /// under the hood, `csr` as the initial graph, `job` as the partitioning request
    /// every epoch runs. Blocks for the cold epoch-0 partition, then returns with the
    /// background worker running.
    pub fn spawn(
        nranks: usize,
        csr: Csr,
        job: PartitionJob,
    ) -> Result<ServingSession, PartitionError> {
        ServingSession::spawn_with_config(nranks, csr, job, ServeConfig::default())
    }

    /// [`spawn`](ServingSession::spawn) with an explicit queue capacity and batching
    /// policy.
    pub fn spawn_with_config(
        nranks: usize,
        csr: Csr,
        job: PartitionJob,
        config: ServeConfig,
    ) -> Result<ServingSession, PartitionError> {
        let base_csr = csr.clone();
        let mut session = DynamicSession::spawn(nranks, csr, job)?;
        let initial = snapshot_from(session.repartition()?, Vec::new());
        let base_epoch = initial.epoch;
        let base_parts = initial.parts.clone();
        let handle = xtrapulp_serve::spawn(
            DynamicEngine {
                session,
                pending_deltas: Vec::new(),
                durable: None,
            },
            initial,
            config,
        );
        Ok(ServingSession {
            handle,
            nranks,
            base_epoch,
            base_csr,
            base_parts,
        })
    }

    /// [`spawn_with_config`](ServingSession::spawn_with_config) with crash-recoverable
    /// state under `durable.dir`: the base graph is persisted, every accepted batch is
    /// written ahead to a checksummed WAL, each published epoch is marked, and the part
    /// vector is checkpointed atomically every `durable.checkpoint_every_epochs`
    /// epochs. A session killed mid-serve comes back bit-identical through
    /// [`recover`](ServingSession::recover).
    ///
    /// Starts a *fresh* job: any WAL, checkpoints or persisted base graph already in
    /// the directory are removed first.
    pub fn spawn_durable(
        nranks: usize,
        csr: Csr,
        job: PartitionJob,
        config: ServeConfig,
        durable: DurableConfig,
    ) -> Result<ServingSession, DurabilityError> {
        fs::create_dir_all(&durable.dir)?;
        for entry in fs::read_dir(&durable.dir)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                if name == WAL_FILE || name.starts_with("ckpt-") || name.starts_with("base.") {
                    fs::remove_file(entry.path())?;
                }
            }
        }
        persist_base(&durable.dir, &csr)?;
        let base_csr = csr.clone();
        let mut session = DynamicSession::spawn(nranks, csr, job)?;
        let initial = snapshot_from(session.repartition()?, Vec::new());
        // Checkpoint 0 covers the empty WAL: recovery of an untouched session
        // loads it and replays nothing.
        durable::write_checkpoint(
            &durable.dir,
            &Checkpoint {
                epoch: initial.epoch,
                wal_records: 0,
                parts: initial.parts.clone(),
            },
        )?;
        let wal = WalWriter::create(&durable.dir.join(WAL_FILE))?;
        let base_epoch = initial.epoch;
        let base_parts = initial.parts.clone();
        let state = DurableState {
            wal,
            dir: durable.dir.clone(),
            checkpoint_every: durable.checkpoint_every_epochs.max(1),
            crash_after: durable.crash_after_wal_records,
            last_checkpoint_epoch: initial.epoch,
        };
        let handle = xtrapulp_serve::spawn(
            DynamicEngine {
                session,
                pending_deltas: Vec::new(),
                durable: Some(state),
            },
            initial,
            config,
        );
        Ok(ServingSession {
            handle,
            nranks,
            base_epoch,
            base_csr,
            base_parts,
        })
    }

    /// Recover a durable serving session after a crash: load the newest checkpoint
    /// that validates (falling back past corrupted ones), fast-forward the persisted
    /// base graph through the WAL records the checkpoint covers, seed its part
    /// vector, and replay the WAL tail — repartitioning at each epoch mark — to the
    /// exact state the crashed session had made durable. The rebuilt session resumes
    /// serving (and journaling) in place.
    ///
    /// `job` must be the job the durable session was spawned with: partition results
    /// are deterministic in (graph, job, rank count), which is what makes the
    /// recovered trajectory bit-identical.
    pub fn recover(
        nranks: usize,
        job: PartitionJob,
        config: ServeConfig,
        durable: DurableConfig,
    ) -> Result<ServingSession, DurabilityError> {
        let dir = durable.dir.clone();
        let base_csr = load_base(&dir)?;
        let (mut wal, records) = WalWriter::open(&dir.join(WAL_FILE))?;
        let ckpt = durable::load_newest_checkpoint(&dir, records.len() as u64)?;
        let num_parts = job.params.num_parts;
        let mut session = DynamicSession::spawn(nranks, base_csr, job)?;

        let mut idx = 0usize;
        match &ckpt {
            Some(c) => {
                // Fast-forward the topology to the checkpoint's WAL position
                // without repartitioning; batches the engine rejected when live
                // re-reject identically here and are skipped the same way.
                for record in &records[..c.wal_records as usize] {
                    if let WalRecord::Batch(batch) = record {
                        let _ = session.apply_updates(batch);
                    }
                }
                session
                    .seed_partition(c.parts.clone())
                    .map_err(|e| DurabilityError::Corrupt {
                        detail: format!(
                            "checkpoint ckpt-{} does not match the topology its WAL \
                             prefix reproduces: {e}",
                            c.epoch
                        ),
                    })?;
                idx = c.wal_records as usize;
            }
            None => {
                // No checkpoint survived: redo the cold epoch-0 run the original
                // spawn performed, then replay the entire WAL.
                session.repartition()?;
            }
        }

        // Replay the tail: apply batches, repartition at each epoch mark —
        // reproducing the crashed session's warm-start trajectory exactly.
        let mut unmarked = false;
        for record in &records[idx..] {
            match record {
                WalRecord::Batch(batch) => {
                    let _ = session.apply_updates(batch);
                    unmarked = true;
                }
                WalRecord::EpochMark { .. } => {
                    session.repartition()?;
                    unmarked = false;
                }
            }
        }
        if unmarked {
            // The WAL ends in batches whose epoch mark never landed (the torn
            // write-ahead window). Logged means applied: repartition them now and
            // mark it, so a second crash replays this decision identically.
            session.repartition()?;
            wal.append(&WalRecord::EpochMark {
                epoch: session.epoch(),
            })?;
        }

        // Checkpoint the recovered state so repeated recoveries stay cheap and
        // the replayed tail stays bounded.
        let parts = session
            .parts()
            .expect("recovery always leaves a partition")
            .to_vec();
        durable::write_checkpoint(
            &dir,
            &Checkpoint {
                epoch: session.epoch(),
                wal_records: wal.records(),
                parts: parts.clone(),
            },
        )?;

        let quality = PartitionQuality::evaluate(session.graph().csr(), &parts, num_parts);
        let initial = PartitionSnapshot {
            epoch: session.epoch(),
            num_parts,
            parts: parts.clone(),
            quality,
            warm_start: ckpt.is_some(),
            lp_sweeps: 0,
            vertices_scored: 0,
            stages: StageBreakdown::default(),
            vertices_migrated: 0,
            deltas: Vec::new().into(),
        };
        let base_epoch = initial.epoch;
        let recovered_csr = session.graph().csr().clone();
        let state = DurableState {
            wal,
            dir,
            checkpoint_every: durable.checkpoint_every_epochs.max(1),
            crash_after: durable.crash_after_wal_records,
            last_checkpoint_epoch: initial.epoch,
        };
        let handle = xtrapulp_serve::spawn(
            DynamicEngine {
                session,
                pending_deltas: Vec::new(),
                durable: Some(state),
            },
            initial,
            config,
        );
        Ok(ServingSession {
            handle,
            nranks,
            base_epoch,
            base_csr: recovered_csr,
            base_parts: parts,
        })
    }

    /// Subscribe an incremental analytics consumer to this session's epoch stream.
    ///
    /// The consumer gets its own `nranks`-rank runtime and a topology replica seeded
    /// from the graph the session was spawned with, distributed by the cold epoch's
    /// partition; its initial (cold) analytics state is computed before this returns.
    /// Each [`poll`](AnalyticsSubscriber::poll) then blocks for the next published
    /// epoch and repairs the consumer's PageRank / components / coreness state from
    /// the epoch's [`GraphDelta`](xtrapulp_graph::GraphDelta) stream — warm while the
    /// churn stays under the [`WarmPolicy`] thresholds, cold (and re-distributed
    /// around the published partition) beyond them.
    ///
    /// Subscribe before heavy ingest: a consumer that lags more than the store's
    /// delta history (see [`xtrapulp_serve::DEFAULT_DELTA_HISTORY`]) behind the
    /// published epoch observes [`SubscriberError::Lagged`](
    /// xtrapulp_analytics::SubscriberError::Lagged) and must be rebuilt.
    pub fn subscribe_analytics(&self, policy: WarmPolicy) -> AnalyticsSubscriber {
        let mut consumer =
            AnalyticsConsumer::new(self.nranks, self.base_csr.clone(), &self.base_parts, policy);
        consumer.set_epoch(self.base_epoch);
        AnalyticsSubscriber::new(self.handle.store(), consumer)
    }

    /// The epoch store readers subscribe to: clone the returned `Arc` into as many
    /// reader threads as needed; every snapshot it hands out is immutable and fully
    /// published.
    pub fn store(&self) -> Arc<EpochStore> {
        self.handle.store()
    }

    /// The latest published epoch (wait-free).
    pub fn epoch(&self) -> u64 {
        self.handle.store().epoch()
    }

    /// The shared ingest queue, for producer threads that submit directly.
    pub fn queue(&self) -> Arc<IngestQueue> {
        self.handle.queue()
    }

    /// Submit one update batch without blocking. Returns
    /// [`IngestError::QueueFull`] as backpressure when producers outrun the worker.
    pub fn try_ingest(&self, batch: UpdateBatch) -> Result<(), IngestError> {
        self.handle.try_ingest(batch)
    }

    /// Submit one update batch, blocking while the queue is full.
    pub fn ingest(&self, batch: UpdateBatch) -> Result<(), IngestError> {
        self.handle.ingest(batch)
    }

    /// Submit one update batch, blocking at most `deadline` while the queue is
    /// full. A stalled worker surfaces as [`IngestError::Timeout`] instead of
    /// hanging the producer forever.
    pub fn ingest_deadline(
        &self,
        batch: UpdateBatch,
        deadline: Duration,
    ) -> Result<(), IngestError> {
        self.handle.queue().submit_deadline(batch, deadline)
    }

    /// Replay a recorded update log (`.ulog` binary or text, auto-detected) through
    /// the ingest queue in chunks of at most `max_batch_ops` ops, with blocking
    /// backpressure — a recorded trace drives the identical pipeline live producers
    /// use.
    pub fn replay_log(
        &self,
        path: &Path,
        max_batch_ops: usize,
    ) -> Result<ReplayOutcome, ReplayError> {
        replay_update_log(&self.handle.queue(), path, max_batch_ops)
    }

    /// A point-in-time view of the serving counters.
    pub fn stats(&self) -> ServeStats {
        self.handle.stats()
    }

    /// The serving pipeline's latency distributions
    /// ([`xtrapulp_serve::ServeLatencies`]), as mergeable histogram snapshots;
    /// benches subtract consecutive snapshots to report per-window percentiles.
    pub fn latencies(&self) -> ServeLatencies {
        self.handle.latencies()
    }

    /// Start a live metrics plane for this session: bind a Prometheus-style text
    /// exposition endpoint on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port)
    /// and register a collector exposing this session's [`ServeStats`] alongside
    /// the process-global registry (collective latencies, analytics epochs, ...).
    ///
    /// Scrape with `curl http://<local_addr>/metrics` (any path serves the same
    /// body). The endpoint and the collector unregister when the returned handle
    /// is dropped or [`MetricsEndpoint::shutdown`] is called.
    pub fn serve_metrics(&self, addr: &str) -> std::io::Result<MetricsEndpoint> {
        let stats_fn = self.handle.stats_fn();
        let collector = obs::registry::register_collector(move |out| {
            let s = stats_fn();
            render_serve_stats(&s, out);
        });
        let server = obs::MetricsServer::bind(addr)?;
        Ok(MetricsEndpoint {
            server,
            _collector: collector,
        })
    }

    /// The most recent batch-rejection or repartition failure, if any.
    pub fn last_error(&self) -> Option<String> {
        self.handle.last_error()
    }

    /// Drain-then-stop shutdown: close the queue, apply and publish everything already
    /// accepted, then return the inner [`DynamicSession`] (live graph, final
    /// partition, persistent ranks) and the final counters. A worker that died
    /// mid-serve comes back as [`ServeError::WorkerPanicked`] instead of re-raising
    /// the panic here.
    pub fn shutdown(self) -> Result<(DynamicSession, ServeStats), ServeError> {
        let (engine, stats) = self.handle.shutdown()?;
        Ok((engine.session, stats))
    }
}

/// A live metrics endpoint bound by [`ServingSession::serve_metrics`]: the HTTP
/// listener plus the registry collector exposing the session's serving counters.
/// Both shut down when this is dropped.
pub struct MetricsEndpoint {
    server: obs::MetricsServer,
    _collector: obs::registry::CollectorGuard,
}

impl MetricsEndpoint {
    /// The address the endpoint actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Stop the listener thread and unregister the session's collector.
    pub fn shutdown(mut self) {
        self.server.shutdown();
    }
}

/// Persist the base graph under `dir`, atomically: `base.bel` (binary edge list)
/// plus `base.meta` (the vertex count — edge lists lose isolated tail vertices).
/// Both go through a temp file and a rename so a crash mid-write never leaves a
/// half-written base behind.
fn persist_base(dir: &Path, csr: &Csr) -> std::io::Result<()> {
    let edges: Vec<_> = csr.edges().collect();
    let tmp = dir.join("base.bel.partial");
    write_binary_edge_list(&tmp, &edges)?;
    fs::rename(&tmp, dir.join("base.bel"))?;
    let tmp = dir.join("base.meta.partial");
    fs::write(&tmp, format!("{}\n", csr.num_vertices()))?;
    fs::rename(&tmp, dir.join("base.meta"))?;
    Ok(())
}

/// Load the base graph persisted by [`persist_base`].
fn load_base(dir: &Path) -> Result<Csr, DurabilityError> {
    let meta = fs::read_to_string(dir.join("base.meta"))?;
    let num_vertices: u64 = meta.trim().parse().map_err(|e| DurabilityError::Corrupt {
        detail: format!("base.meta does not hold a vertex count: {e}"),
    })?;
    let edges = read_binary_edge_list(&dir.join("base.bel"))?;
    Ok(csr_from_edges(num_vertices, &edges))
}

/// Append the session's serving counters as Prometheus exposition lines.
fn render_serve_stats(s: &ServeStats, out: &mut String) {
    use std::fmt::Write as _;
    let counters = [
        ("serve_epochs_published", s.epochs_published),
        ("serve_warm_epochs", s.warm_epochs),
        ("serve_cold_epochs", s.cold_epochs),
        ("serve_batches_applied", s.batches_applied),
        ("serve_batches_rejected", s.batches_rejected),
        ("serve_ops_applied", s.ops_applied),
        ("serve_repartition_failures", s.repartition_failures),
    ];
    for (name, v) in counters {
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
    }
    let gauges = [
        ("serve_queue_depth_ops", s.queue_depth_ops as f64),
        ("serve_queue_depth_batches", s.queue_depth_batches as f64),
        ("serve_total_publish_seconds", s.total_publish_seconds),
        ("serve_last_lp_sweeps", s.last_lp_sweeps as f64),
        ("serve_last_vertices_scored", s.last_vertices_scored as f64),
    ];
    for (name, v) in gauges {
        let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
    }
    let summaries = [
        (
            "serve_publish_seconds",
            s.publish_seconds_p50,
            s.publish_seconds_p99,
        ),
        (
            "serve_ingest_to_publish_seconds",
            s.ingest_to_publish_seconds_p50,
            s.ingest_to_publish_seconds_p99,
        ),
    ];
    for (name, p50, p99) in summaries {
        let _ = writeln!(
            out,
            "# TYPE {name} summary\n{name}{{quantile=\"0.5\"}} {p50}\n{name}{{quantile=\"0.99\"}} {p99}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Method;
    use std::time::Duration;
    use xtrapulp::PartitionParams;
    use xtrapulp_gen::{GraphConfig, GraphKind};

    fn ba_csr(n: u64, seed: u64) -> Csr {
        GraphConfig::new(
            GraphKind::BarabasiAlbert {
                num_vertices: n,
                edges_per_vertex: 5,
            },
            seed,
        )
        .generate()
        .to_csr()
    }

    fn job(parts: usize) -> PartitionJob {
        PartitionJob::new(Method::XtraPulp).with_params(PartitionParams {
            num_parts: parts,
            seed: 11,
            ..Default::default()
        })
    }

    #[test]
    fn serving_session_publishes_epochs_and_returns_the_dynamic_session() {
        let csr = ba_csr(400, 3);
        let serving = ServingSession::spawn(2, csr, job(4)).unwrap();
        assert_eq!(serving.epoch(), 0);
        let reader = serving.store();
        assert_eq!(reader.current().num_vertices(), 400);

        let mut batch = UpdateBatch::new();
        batch
            .add_vertices(1)
            .insert_edge(400, 0)
            .insert_edge(400, 1);
        serving.ingest(batch).unwrap();
        let published = reader
            .wait_for_epoch(1, Duration::from_secs(60))
            .expect("worker publishes epoch 1");
        assert!(published.warm_start);
        assert_eq!(published.num_vertices(), 401);

        let (session, stats) = serving.shutdown().expect("worker exits cleanly");
        assert_eq!(stats.batches_applied, 1);
        assert_eq!(stats.warm_epochs, 1);
        assert_eq!(stats.cold_epochs, 0, "epoch 0 is published by the spawner");
        assert_eq!(session.graph().num_vertices(), 401);
        assert_eq!(session.epoch(), 1);
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xtrapulp-serving-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// One deterministic mutation batch per step, distinct per `i`.
    fn step_batch(i: u64) -> UpdateBatch {
        let mut batch = UpdateBatch::new();
        batch
            .add_vertices(1)
            .insert_edge(500 + i, (i * 7) % 400)
            .insert_edge(500 + i, (i * 13 + 1) % 400);
        batch
    }

    /// Epoch-per-batch config so the WAL trajectory is deterministic.
    fn epoch_per_batch_config() -> ServeConfig {
        ServeConfig {
            policy: xtrapulp_serve::BatchPolicy {
                max_group_batches: 1,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn durable_session_recovers_bit_identical_after_clean_shutdown() {
        let dir = temp_dir("clean");
        let csr = ba_csr(500, 7);
        let serving = ServingSession::spawn_durable(
            2,
            csr.clone(),
            job(4),
            epoch_per_batch_config(),
            DurableConfig::new(&dir).checkpoint_every(2),
        )
        .unwrap();
        let store = serving.store();
        for i in 0..5 {
            serving.ingest(step_batch(i)).unwrap();
            store
                .wait_for_epoch(i + 1, Duration::from_secs(60))
                .unwrap();
        }
        let (reference, _) = serving.shutdown().unwrap();
        let ref_parts = reference.parts().unwrap().to_vec();
        let ref_epoch = reference.epoch();

        let recovered =
            ServingSession::recover(2, job(4), ServeConfig::default(), DurableConfig::new(&dir))
                .unwrap();
        assert_eq!(recovered.epoch(), ref_epoch);
        let snap = recovered.store().current();
        assert_eq!(
            snap.parts, ref_parts,
            "recovered partition must be bit-identical"
        );
        assert!(snap.warm_start, "recovery seeds from a checkpoint");
        let (session, _) = recovered.shutdown().unwrap();
        assert_eq!(session.graph().num_vertices(), 505);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_session_recovers_bit_identical_after_injected_mid_epoch_crash() {
        let total_batches = 6u64;
        for crash_after in [2u64, 3, 5, 7, 9] {
            let dir = temp_dir(&format!("crash-{crash_after}"));
            let csr = ba_csr(500, 7);

            // Uninterrupted reference trajectory (same graph, job, batches).
            let reference = {
                let serving = ServingSession::spawn_durable(
                    2,
                    csr.clone(),
                    job(4),
                    epoch_per_batch_config(),
                    DurableConfig::new(dir.join("ref")),
                )
                .unwrap();
                let store = serving.store();
                for i in 0..total_batches {
                    serving.ingest(step_batch(i)).unwrap();
                    store
                        .wait_for_epoch(i + 1, Duration::from_secs(60))
                        .unwrap();
                }
                let (session, _) = serving.shutdown().unwrap();
                session
            };

            // Crashing run: the worker panics once `crash_after` WAL records land.
            let serving = ServingSession::spawn_durable(
                2,
                csr.clone(),
                job(4),
                epoch_per_batch_config(),
                DurableConfig::new(&dir)
                    .checkpoint_every(2)
                    .crash_after_wal_records(crash_after),
            )
            .unwrap();
            let store = serving.store();
            for i in 0..total_batches {
                if serving.ingest(step_batch(i)).is_err() {
                    break; // queue closed by the crashed worker
                }
                if store
                    .wait_for_epoch(i + 1, Duration::from_secs(10))
                    .is_none()
                {
                    break; // worker died before publishing
                }
            }
            match serving.shutdown() {
                Err(ServeError::WorkerPanicked { detail }) => {
                    assert!(detail.contains("injected durability crash"), "{detail}");
                }
                Ok(_) => panic!("crash_after={crash_after}: worker survived the injected crash"),
            }

            // Recover, then drive the remaining batches to the reference epoch.
            let recovered = ServingSession::recover(
                2,
                job(4),
                epoch_per_batch_config(),
                DurableConfig::new(&dir),
            )
            .unwrap();
            let store = recovered.store();
            let resume_from = recovered.epoch();
            for i in resume_from..total_batches {
                recovered.ingest(step_batch(i)).unwrap();
                store
                    .wait_for_epoch(i + 1, Duration::from_secs(60))
                    .unwrap();
            }
            let (session, _) = recovered.shutdown().unwrap();
            assert_eq!(
                session.epoch(),
                reference.epoch(),
                "crash_after={crash_after}: epochs diverged"
            );
            assert_eq!(
                session.parts().unwrap(),
                reference.parts().unwrap(),
                "crash_after={crash_after}: recovered partition is not bit-identical"
            );
            assert_eq!(
                session.graph().num_vertices(),
                reference.graph().num_vertices(),
                "crash_after={crash_after}: recovered topology diverged"
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn recovery_falls_back_past_a_corrupted_newest_checkpoint() {
        let dir = temp_dir("ckpt-corrupt");
        let csr = ba_csr(500, 7);
        let serving = ServingSession::spawn_durable(
            2,
            csr,
            job(4),
            epoch_per_batch_config(),
            DurableConfig::new(&dir).checkpoint_every(2),
        )
        .unwrap();
        let store = serving.store();
        for i in 0..4 {
            serving.ingest(step_batch(i)).unwrap();
            store
                .wait_for_epoch(i + 1, Duration::from_secs(60))
                .unwrap();
        }
        let (reference, _) = serving.shutdown().unwrap();

        // Corrupt the newest checkpoint on disk; recovery must fall back to an
        // older valid one and still replay to the identical state.
        let mut ckpts: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let name = e.unwrap().file_name().into_string().unwrap();
                name.strip_prefix("ckpt-")
                    .and_then(|n| n.parse::<u64>().ok())
            })
            .collect();
        ckpts.sort_unstable();
        assert!(ckpts.len() >= 2, "test needs at least two checkpoints");
        let newest = dir.join(format!("ckpt-{}", ckpts.last().unwrap()));
        fs::write(&newest, b"garbage").unwrap();

        let recovered =
            ServingSession::recover(2, job(4), ServeConfig::default(), DurableConfig::new(&dir))
                .unwrap();
        assert_eq!(recovered.epoch(), reference.epoch());
        assert_eq!(
            recovered.store().current().parts,
            reference.parts().unwrap()
        );
        recovered.shutdown().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ingest_deadline_times_out_typed_instead_of_hanging() {
        let csr = ba_csr(300, 5);
        let config = ServeConfig {
            queue_capacity_ops: 4,
            ..Default::default()
        };
        let serving = ServingSession::spawn_with_config(1, csr, job(2), config).unwrap();
        // Saturate the queue faster than the worker drains; eventually a
        // deadline submission must fail typed rather than block forever.
        let mut saw_timeout = false;
        for i in 0..200 {
            let mut batch = UpdateBatch::new();
            batch.add_vertices(1).insert_edge(300 + i, 0);
            match serving.ingest_deadline(batch, Duration::from_millis(1)) {
                Ok(()) => {}
                Err(IngestError::Timeout { waited_ms, .. }) => {
                    assert!(waited_ms >= 1);
                    saw_timeout = true;
                    break;
                }
                Err(e) => panic!("unexpected ingest error: {e}"),
            }
        }
        // Even if the worker kept up (unlikely with capacity 4), the API still
        // returned promptly every time — but the common path sees the timeout.
        let _ = saw_timeout;
        serving.shutdown().unwrap();
    }

    #[test]
    fn rejected_batches_surface_in_stats_and_last_error() {
        let csr = ba_csr(300, 5);
        // Re-inserting an existing edge is deterministically invalid.
        let (u, v) = (1u64, csr.neighbors(1)[0]);
        let serving = ServingSession::spawn(1, csr, job(2)).unwrap();
        let mut bad = UpdateBatch::new();
        bad.insert_edge(u, v);
        serving.ingest(bad).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while serving.stats().batches_rejected == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let (_, stats) = serving.shutdown().expect("worker exits cleanly");
        assert_eq!(stats.batches_rejected, 1);
        assert_eq!(stats.epochs_published, 0);
    }

    /// Raw one-shot HTTP GET against the metrics endpoint, returning the body.
    fn scrape(addr: std::net::SocketAddr) -> String {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(addr).expect("endpoint reachable");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let body_at = response.find("\r\n\r\n").expect("complete HTTP response");
        response[body_at + 4..].to_string()
    }

    #[test]
    fn metrics_endpoint_survives_concurrent_scrapes_while_epochs_publish() {
        let csr = ba_csr(500, 7);
        let serving = ServingSession::spawn(2, csr, job(4)).unwrap();
        let endpoint = serving.serve_metrics("127.0.0.1:0").unwrap();
        let addr = endpoint.local_addr();

        // Scrapers hammer the endpoint while the writer publishes epochs. Every
        // response must be a complete, well-formed exposition: the serving
        // counters, the memory gauges (including RSS, sampled per scrape), and
        // no torn/empty bodies under scrape-vs-publish races.
        let scrapers: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        let body = scrape(addr);
                        assert!(
                            body.contains("serve_epochs_published"),
                            "scrape missing serving counters:\n{body}"
                        );
                        assert!(body.contains("process_rss_bytes"));
                        assert!(body.contains("mem_bytes{subsystem="));
                    }
                })
            })
            .collect();
        for i in 0..6u64 {
            let mut batch = UpdateBatch::new();
            batch
                .add_vertices(1)
                .insert_edge(500 + i, i)
                .insert_edge(500 + i, i + 1);
            serving.ingest(batch).unwrap();
        }
        serving
            .store()
            .wait_for_epoch(6, Duration::from_secs(600))
            .expect("worker publishes under scrape load");
        for s in scrapers {
            s.join().expect("scraper thread panicked");
        }
        // The final scrape reflects the published epochs and the byte gauges
        // the worker maintained while publishing.
        let body = scrape(addr);
        assert!(body.contains("mem_bytes{subsystem=\"epoch_store\"}"));
        assert!(body.contains("mem_bytes{subsystem=\"ingest_queue\"}"));
        endpoint.shutdown();
        serving.shutdown().unwrap();
    }
}
