//! # xtrapulp-api
//!
//! The serving facade of the XtraPuLP reproduction: a unified, typed request/response
//! surface over every partitioning method in the workspace.
//!
//! The motivation is the same one RFP makes for RDMA systems — once the kernel is fast,
//! the *API paradigm* dominates end-to-end throughput. Three pieces:
//!
//! * [`Session`] — a persistent handle owning a reusable rank
//!   [`Runtime`](xtrapulp_comm::Runtime). Back-to-back jobs reuse the same rank threads
//!   (and rendezvous state), so a service partitioning many graphs amortises thread
//!   spawn instead of paying it per call, and can pipeline partition → analytics jobs on
//!   the same ranks via [`Session::execute`].
//! * Typed errors — every request is validated before it touches the runtime, and every
//!   failure (malformed [`PartitionParams`](xtrapulp::PartitionParams), zero ranks,
//!   unknown method name, incomplete result gather) surfaces as a
//!   [`PartitionError`] instead of a panic, keeping the session healthy for the next
//!   request.
//! * [`Method`] — the cross-crate partitioner registry. All seven methods
//!   (`XtraPuLP`, `PuLP`, `Random`, `VertexBlock`, `EdgeBlock`, `MetisLike`,
//!   `LpCoarsenKway`) are enumerable ([`Method::all`]) and resolvable by name
//!   ([`Method::from_name`]), replacing the hardcoded lists the bench binaries and
//!   analytics suite used to duplicate.
//!
//! Jobs return a [`PartitionReport`] bundling the part vector, the paper's
//! [`PartitionQuality`](xtrapulp::metrics::PartitionQuality) metrics, per-phase
//! [`PhaseTimer`](xtrapulp_comm::PhaseTimer) timings and
//! [`CommStatsSnapshot`](xtrapulp_comm::CommStatsSnapshot) communication counters —
//! JSON-serialisable via [`PartitionReport::to_json`] for machine-readable experiment
//! output.
//!
//! ## Example
//!
//! ```
//! use xtrapulp::PartitionParams;
//! use xtrapulp_api::{Method, PartitionJob, Session};
//! use xtrapulp_gen::{GraphConfig, GraphKind};
//!
//! let graph = GraphConfig::new(GraphKind::Rmat { scale: 10, edge_factor: 8 }, 42)
//!     .generate()
//!     .to_csr();
//!
//! // One session, many jobs: the rank threads are spawned once.
//! let mut session = Session::new(4).expect("4 ranks is a valid session");
//! let report = session
//!     .partition(&graph, &PartitionParams::with_parts(8))
//!     .expect("default params are valid");
//! assert_eq!(report.parts.len(), graph.num_vertices());
//!
//! // Any registered method can run through the same facade, resolved by name if need be.
//! let job = PartitionJob::new(Method::from_name("pulp").unwrap()).with_parts(8);
//! let pulp = session.submit(&job, &graph).expect("valid job");
//! assert_eq!(pulp.method, "PuLP");
//!
//! // Malformed requests come back as typed errors, not panics.
//! let bad = PartitionJob::new(Method::XtraPulp).with_parts(0);
//! assert!(session.submit(&bad, &graph).is_err());
//! ```

mod dynamic;
mod method;
mod report;
mod serving;
mod session;

pub use dynamic::{DynamicReport, DynamicSession};
pub use method::Method;
pub use report::PartitionReport;
pub use serving::{DurabilityError, EngineError, MetricsEndpoint, ServingSession};
pub use session::{PartitionJob, Session};

// The facade's error type lives in the core crate (validation happens there); re-export
// it so `xtrapulp_api` is self-contained for serving callers. The dynamic-subsystem,
// serve-subsystem and analytics-consumer types come from their crates for the same
// reason.
pub use xtrapulp::PartitionError;
pub use xtrapulp_analytics::{
    AnalyticsConsumer, AnalyticsSubscriber, EpochReport, SubscriberError, WarmPolicy,
};
pub use xtrapulp_dynamic::{UpdateBatch, UpdateError, UpdateSummary};
pub use xtrapulp_obs::{Histogram, HistogramSnapshot, MetricsServer};
pub use xtrapulp_serve::{
    BatchPolicy, EpochStore, IngestError, IngestQueue, MigrationDiff, PartitionSnapshot,
    ReplayError, ReplayOutcome, ServeConfig, ServeError, ServeLatencies, ServeStats,
};
