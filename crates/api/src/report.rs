//! The serialisable outcome of a partitioning job.

use serde::Serialize;
use xtrapulp::metrics::PartitionQuality;
use xtrapulp_comm::{CommStatsSnapshot, PhaseTimer};

/// Everything a caller learns from one partitioning job: the part vector, the paper's
/// quality metrics, per-phase wall-clock timings and the communication volume the job
/// would have put on a real network. Serialises to JSON via [`PartitionReport::to_json`],
/// which is what the bench binaries emit under `--json`.
#[derive(Debug, Clone, Serialize)]
pub struct PartitionReport {
    /// Method name (a [`crate::Method`] canonical name).
    pub method: String,
    /// Number of parts requested.
    pub num_parts: usize,
    /// Ranks the job ran on (1 for serial methods).
    pub nranks: usize,
    /// Vertices in the input graph.
    pub num_vertices: u64,
    /// Undirected edges in the input graph.
    pub num_edges: u64,
    /// One part id per vertex, indexed by global vertex id.
    pub parts: Vec<i32>,
    /// The paper's quality metrics for this partition.
    pub quality: PartitionQuality,
    /// Per-phase wall-clock durations (max over ranks per phase).
    pub timings: PhaseTimer,
    /// Communication counters summed over all ranks (zero for serial methods).
    pub comm: CommStatsSnapshot,
    /// Path of the merged cross-rank trace file this job's process wrote (see
    /// [`crate::Session::export_trace`]), when tracing was requested. `None` for
    /// untraced jobs and on ranks that contributed their buffers but did not write.
    pub trace_path: Option<String>,
}

/// [`PartitionReport`] minus the (potentially huge) part vector — the shape emitted for
/// result logging and the bench binaries' `--json` rows.
#[derive(Debug, Clone, Serialize)]
struct ReportSummary {
    method: String,
    num_parts: usize,
    nranks: usize,
    num_vertices: u64,
    num_edges: u64,
    quality: PartitionQuality,
    timings: PhaseTimer,
    comm: CommStatsSnapshot,
}

impl PartitionReport {
    /// Serialise the full report (including the part vector) to JSON. Infallible by
    /// construction: every field is numbers, strings and their containers, and the
    /// writer appends to an in-memory `String`.
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// Serialise everything except the part vector to JSON — the right shape for result
    /// streams where the partition itself stays in memory or on disk.
    pub fn to_json_summary(&self) -> String {
        let summary = ReportSummary {
            method: self.method.clone(),
            num_parts: self.num_parts,
            nranks: self.nranks,
            num_vertices: self.num_vertices,
            num_edges: self.num_edges,
            quality: self.quality,
            timings: self.timings.clone(),
            comm: self.comm,
        };
        serde::json::to_string(&summary)
    }

    /// Total wall-clock seconds across all phases.
    pub fn total_seconds(&self) -> f64 {
        self.timings.total().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> PartitionReport {
        let mut timings = PhaseTimer::new();
        timings.add("init", std::time::Duration::from_millis(250));
        PartitionReport {
            method: "XtraPuLP".to_string(),
            num_parts: 4,
            nranks: 2,
            num_vertices: 3,
            num_edges: 2,
            parts: vec![0, 1, 2],
            quality: PartitionQuality::evaluate(
                &xtrapulp_graph::csr_from_edges(3, &[(0, 1), (1, 2)]),
                &[0, 1, 2],
                4,
            ),
            timings,
            comm: CommStatsSnapshot::default(),
            trace_path: None,
        }
    }

    #[test]
    fn report_serialises_to_json_with_all_sections() {
        let json = sample_report().to_json();
        for key in [
            "\"method\":\"XtraPuLP\"",
            "\"num_parts\":4",
            "\"parts\":[0,1,2]",
            "\"quality\":{",
            "\"timings\":{",
            "\"init\":0.25",
            "\"comm\":{",
            "\"trace_path\":null",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn summary_json_omits_the_part_vector() {
        let report = sample_report();
        let json = report.to_json_summary();
        assert!(!json.contains("\"parts\""));
        assert!(json.contains("\"quality\""));
        assert!((report.total_seconds() - 0.25).abs() < 1e-9);
    }
}
