//! The persistent partitioning session.

use std::path::Path;

use xtrapulp::metrics::PartitionQuality;
use xtrapulp::partitioner::assemble_gathered_parts;
use xtrapulp::{
    try_xtrapulp_partition, try_xtrapulp_partition_from_touched, validate_warm_start,
    PartitionError, PartitionParams, StageBreakdown,
};
use xtrapulp_comm::{CommStatsSnapshot, PhaseTimer, RankCtx, Runtime};
use xtrapulp_graph::{Csr, DistGraph, Distribution, GlobalId, LocalId};

use crate::method::Method;
use crate::report::PartitionReport;

/// A description of one partitioning request: which method to run and with which
/// parameters. The graph travels separately (by reference) so one job description can be
/// replayed across many graphs.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionJob {
    /// The method to run.
    pub method: Method,
    /// Algorithm parameters (validated on submission, not construction).
    pub params: PartitionParams,
}

impl PartitionJob {
    /// A job running `method` with the paper-default parameters.
    pub fn new(method: Method) -> Self {
        PartitionJob {
            method,
            params: PartitionParams::default(),
        }
    }

    /// Replace the parameters.
    pub fn with_params(mut self, params: PartitionParams) -> Self {
        self.params = params;
        self
    }

    /// Replace the part count, keeping other parameters.
    pub fn with_parts(mut self, num_parts: usize) -> Self {
        self.params.num_parts = num_parts;
        self
    }
}

/// A persistent partitioning session owning a reusable rank [`Runtime`].
///
/// Constructing a session spawns its rank threads once; every subsequent
/// [`submit`](Session::submit) reuses them, so a service partitioning many graphs — or a
/// pipeline partitioning a graph and then running analytics over it — pays thread
/// spawn/teardown once instead of per call (the `bench_api_overhead` bench measures the
/// difference against one-shot [`Runtime::run`] calls).
///
/// All request validation happens *before* a job enters the runtime, so a malformed
/// request returns a typed [`PartitionError`] and leaves the session healthy for the
/// next job. Results are deterministic: a session job produces byte-identical part
/// vectors to the legacy one-shot path for the same graph, parameters and rank count.
pub struct Session {
    runtime: Runtime,
    distribution: Distribution,
    jobs_completed: u64,
}

impl Session {
    /// Spawn a session with `nranks` rank threads and a block vertex distribution.
    pub fn new(nranks: usize) -> Result<Session, PartitionError> {
        Session::with_distribution(nranks, Distribution::Block)
    }

    /// Spawn a session with `nranks` rank threads and the given vertex distribution for
    /// distributed jobs.
    pub fn with_distribution(
        nranks: usize,
        distribution: Distribution,
    ) -> Result<Session, PartitionError> {
        if nranks == 0 {
            return Err(PartitionError::InvalidRanks { got: 0 });
        }
        let runtime = Runtime::try_new(nranks).map_err(PartitionError::Comm)?;
        Ok(Session {
            runtime,
            distribution,
            jobs_completed: 0,
        })
    }

    /// Build a session over an already-constructed runtime — notably one made
    /// with [`Runtime::with_transport`], where this process hosts one rank of
    /// a multi-process job. Distributed jobs then gather the full part vector
    /// collectively, so every participating process returns an identical
    /// report.
    pub fn with_runtime(runtime: Runtime, distribution: Distribution) -> Session {
        Session {
            runtime,
            distribution,
            jobs_completed: 0,
        }
    }

    /// True when some of this session's ranks live in other processes.
    pub fn is_distributed(&self) -> bool {
        self.runtime.is_distributed()
    }

    /// Number of ranks this session runs distributed jobs on.
    pub fn nranks(&self) -> usize {
        self.runtime.nranks()
    }

    /// The vertex distribution this session uses for distributed jobs.
    pub fn distribution(&self) -> &Distribution {
        &self.distribution
    }

    /// Jobs successfully completed over the session's lifetime.
    pub fn jobs_completed(&self) -> u64 {
        self.jobs_completed
    }

    /// Record a job that completed outside [`submit`](Session::submit) (the dynamic
    /// session runs warm jobs directly on the runtime), keeping
    /// [`jobs_completed`](Session::jobs_completed) accurate.
    pub(crate) fn note_job_completed(&mut self) {
        self.jobs_completed += 1;
    }

    /// Partition `csr` with XtraPuLP on the session's ranks — the common case of
    /// [`submit`](Session::submit).
    pub fn partition(
        &mut self,
        csr: &Csr,
        params: &PartitionParams,
    ) -> Result<PartitionReport, PartitionError> {
        self.submit(
            &PartitionJob::new(Method::XtraPulp).with_params(*params),
            csr,
        )
    }

    /// Run one partitioning job and return its report.
    ///
    /// Distributed methods run collectively on the session's persistent ranks; serial
    /// methods run inline on the calling thread. Either way the report carries the part
    /// vector, quality metrics, per-phase timings and communication counters.
    pub fn submit(
        &mut self,
        job: &PartitionJob,
        csr: &Csr,
    ) -> Result<PartitionReport, PartitionError> {
        job.params.validate()?;
        let report = if job.method.is_distributed() {
            self.run_distributed(job, csr)?
        } else {
            self.run_serial(job, csr)?
        };
        self.jobs_completed += 1;
        Ok(report)
    }

    /// Gather every rank's trace buffers (across all participating processes) and
    /// write one merged chrome://tracing JSON file at `path`, on rank 0's timeline.
    ///
    /// A collective: in a multi-process job every process must call it at the same
    /// point. Returns `true` on the process that wrote the file (the one hosting
    /// rank 0) and `false` on processes that only contributed their buffers.
    /// Tracing is suspended for the duration of the gather so the export's own
    /// collectives do not pollute the trace.
    pub fn export_trace(&mut self, path: &Path) -> Result<bool, PartitionError> {
        self.runtime
            .export_trace(path)
            .map_err(PartitionError::Comm)
    }

    /// Gather every rank's flight-recorder ring (across all participating
    /// processes) and write one merged post-mortem JSON file at `path`, tagged
    /// with `reason`. A collective, like [`export_trace`](Session::export_trace);
    /// the stall watchdog is suspended for the duration of the gather, so a
    /// post-stall export completes even over the transport that just stalled.
    /// Returns `true` on the process that wrote the file.
    pub fn export_flight(&mut self, path: &Path, reason: &str) -> Result<bool, PartitionError> {
        self.runtime
            .export_flight(path, reason)
            .map_err(PartitionError::Comm)
    }

    /// Arm (or with `None` disarm) the per-collective stall watchdog on this
    /// session's runtime: a rank whose current collective makes no transport
    /// progress for `deadline` trips with a typed
    /// [`CommError::Stalled`](xtrapulp_comm::CommError) and an automatic
    /// flight-recorder dump. Sampled per job; disabled by default.
    pub fn set_watchdog_deadline(&mut self, deadline: Option<std::time::Duration>) {
        self.runtime.set_watchdog_deadline(deadline);
    }

    /// Recover the session's runtime after a distributed job failed on a
    /// transport fault: every local rank runs its transport's recovery
    /// protocol (for TCP, tear down the mesh, re-rendezvous with the
    /// coordinator — waiting for a respawned replacement of any dead rank —
    /// and reconnect). On success the next [`submit`](Session::submit) runs on
    /// a fresh mesh; because jobs are deterministic, the retried job produces
    /// the identical report the faulted one would have.
    pub fn recover(&mut self) -> Result<(), PartitionError> {
        self.runtime.recover().map_err(PartitionError::Comm)
    }

    /// Run an arbitrary collective job on the session's ranks (for example analytics
    /// over a graph the session just partitioned). Delegates to [`Runtime::execute`].
    pub fn execute<F, R>(&mut self, f: F) -> Vec<R>
    where
        F: Fn(&RankCtx) -> R + Sync,
        R: Send + 'static,
    {
        self.runtime.execute(f)
    }

    fn run_distributed(
        &mut self,
        job: &PartitionJob,
        csr: &Csr,
    ) -> Result<PartitionReport, PartitionError> {
        let n = csr.num_vertices();
        if n == 0 {
            return Ok(self.empty_report(job, csr));
        }
        // An Explicit ownership table may be shorter than a graph that has since grown;
        // hash the tail vertices to ranks (a no-op for the functional distributions).
        let dist = self.distribution.grown(n as u64, self.nranks());
        let params = job.params;
        // When ranks span processes, each process holds only its own slice of
        // the part vector; an in-job allgather gives every process the whole
        // vector, keeping reports identical across the job.
        let distributed = self.runtime.is_distributed();
        type RankOut = (
            Vec<(u64, i32)>,
            PartitionQuality,
            PhaseTimer,
            CommStatsSnapshot,
        );
        let per_rank: Vec<RankOut> = self.runtime.try_execute(|ctx| {
            let graph = DistGraph::from_csr(ctx, dist.clone(), csr);
            let result = try_xtrapulp_partition(ctx, &graph, &params)
                .expect("params are validated before the job enters the runtime");
            let pairs: Vec<(u64, i32)> = (0..graph.n_owned())
                .map(|v| (graph.global_id(v as LocalId), result.parts[v]))
                .collect();
            let pairs = if distributed {
                ctx.allgatherv(pairs)
            } else {
                pairs
            };
            (
                pairs,
                result.quality,
                result.timings,
                ctx.stats().snapshot(),
            )
        })?;

        let mut quality = None;
        let mut timings = PhaseTimer::new();
        let mut comm = CommStatsSnapshot::default();
        let mut pairs = Vec::with_capacity(per_rank.len());
        for (rank_pairs, rank_quality, rank_timings, rank_comm) in per_rank {
            // Quality is allreduced inside the job, so every rank reports the same
            // global value; keep rank 0's.
            quality.get_or_insert(rank_quality);
            timings.merge_max(&rank_timings);
            comm = comm.merged(rank_comm);
            // In distributed mode every local rank already gathered the full
            // pair set; keep one copy to avoid duplicate assignments.
            if !distributed || pairs.is_empty() {
                pairs.push(rank_pairs);
            }
        }
        let parts = assemble_gathered_parts(n, job.params.num_parts, pairs)?;
        Ok(PartitionReport {
            method: job.method.name().to_string(),
            num_parts: job.params.num_parts,
            nranks: self.nranks(),
            num_vertices: csr.num_vertices() as u64,
            num_edges: csr.num_edges(),
            parts,
            quality: quality.expect("at least one rank ran the job"),
            timings,
            comm,
            trace_path: None,
        })
    }

    /// Build one [`DistGraph`] per rank from `csr` on the session's persistent ranks.
    /// The result is indexed by rank and can be carried across jobs (and evolved with
    /// [`DistGraph::apply_delta`]) by the dynamic-session layer.
    pub(crate) fn build_rank_graphs(&mut self, csr: &Csr) -> Vec<DistGraph> {
        // As in `run_distributed`: a graph grown past an Explicit table's length gets
        // its tail vertices hashed to ranks.
        let dist = self
            .distribution
            .grown(csr.num_vertices() as u64, self.nranks());
        self.runtime
            .execute(|ctx| DistGraph::from_csr(ctx, dist.clone(), csr))
    }

    /// Run one distributed partitioning job over pre-built per-rank graphs, cold or —
    /// when `initial` (a full global part vector, `-1` marking unassigned vertices) is
    /// given — warm-started. `touched` (the delta-touched global ids, identical on
    /// every rank) scopes a warm run's refinement frontier to the mutated
    /// neighbourhood. Returns the report plus the label-propagation sweep and
    /// scored-vertex counts the run executed. Used by the dynamic-session layer, which
    /// keeps the rank graphs alive across epochs instead of redistributing the CSR per
    /// job.
    pub(crate) fn run_on_rank_graphs(
        &mut self,
        job: &PartitionJob,
        graphs: &[DistGraph],
        initial: Option<&[i32]>,
        touched: Option<&[GlobalId]>,
        num_edges: u64,
    ) -> Result<(PartitionReport, u64, u64, StageBreakdown), PartitionError> {
        job.params.validate()?;
        assert_eq!(graphs.len(), self.nranks(), "one graph per rank required");
        let n = graphs[0].global_n() as usize;
        if let Some(initial) = initial {
            // Validated once, globally, before entering the runtime: every rank's slice
            // is a sub-view of this vector, so no rank can disagree inside a collective.
            validate_warm_start(n, job.params.num_parts, initial)?;
        }
        let params = job.params;
        type RankOut = (
            Vec<(u64, i32)>,
            PartitionQuality,
            PhaseTimer,
            CommStatsSnapshot,
            (u64, u64, StageBreakdown),
        );
        let per_rank: Vec<RankOut> = self.runtime.execute(|ctx| {
            let graph = &graphs[ctx.rank()];
            let result = match initial {
                Some(initial) => {
                    let owned: Vec<i32> = (0..graph.n_owned())
                        .map(|v| initial[graph.global_id(v as LocalId) as usize])
                        .collect();
                    try_xtrapulp_partition_from_touched(ctx, graph, &params, &owned, touched)
                        .expect("warm start is validated before the job enters the runtime")
                }
                None => try_xtrapulp_partition(ctx, graph, &params)
                    .expect("params are validated before the job enters the runtime"),
            };
            let pairs = (0..graph.n_owned())
                .map(|v| (graph.global_id(v as LocalId), result.parts[v]))
                .collect();
            (
                pairs,
                result.quality,
                result.timings,
                ctx.stats().snapshot(),
                (result.lp_sweeps, result.vertices_scored, result.stages),
            )
        });

        let mut quality = None;
        let mut timings = PhaseTimer::new();
        let mut comm = CommStatsSnapshot::default();
        let mut pairs = Vec::with_capacity(per_rank.len());
        let mut lp_sweeps = 0u64;
        let mut vertices_scored = 0u64;
        let mut stages = StageBreakdown::default();
        for (rank_pairs, rank_quality, rank_timings, rank_comm, rank_stats) in per_rank {
            quality.get_or_insert(rank_quality);
            timings.merge_max(&rank_timings);
            comm = comm.merged(rank_comm);
            // These counters are allreduced inside the job, so every rank reports the
            // same global value; keep the first rank's.
            lp_sweeps = lp_sweeps.max(rank_stats.0);
            vertices_scored = vertices_scored.max(rank_stats.1);
            stages = rank_stats.2;
            pairs.push(rank_pairs);
        }
        let parts = assemble_gathered_parts(n, job.params.num_parts, pairs)?;
        self.jobs_completed += 1;
        Ok((
            PartitionReport {
                method: job.method.name().to_string(),
                num_parts: job.params.num_parts,
                nranks: self.nranks(),
                num_vertices: n as u64,
                num_edges,
                parts,
                quality: quality.expect("at least one rank ran the job"),
                timings,
                comm,
                trace_path: None,
            },
            lp_sweeps,
            vertices_scored,
            stages,
        ))
    }

    fn run_serial(
        &mut self,
        job: &PartitionJob,
        csr: &Csr,
    ) -> Result<PartitionReport, PartitionError> {
        let partitioner = job.method.build(self.nranks());
        let mut timings = PhaseTimer::new();
        let parts = timings.time("partition", || partitioner.try_partition(csr, &job.params))?;
        let quality = timings.time("metrics", || {
            PartitionQuality::evaluate(csr, &parts, job.params.num_parts)
        });
        Ok(PartitionReport {
            method: job.method.name().to_string(),
            num_parts: job.params.num_parts,
            nranks: 1,
            num_vertices: csr.num_vertices() as u64,
            num_edges: csr.num_edges(),
            parts,
            quality,
            timings,
            comm: CommStatsSnapshot::default(),
            trace_path: None,
        })
    }

    fn empty_report(&self, job: &PartitionJob, csr: &Csr) -> PartitionReport {
        PartitionReport {
            method: job.method.name().to_string(),
            num_parts: job.params.num_parts,
            nranks: self.nranks(),
            num_vertices: 0,
            num_edges: csr.num_edges(),
            parts: Vec::new(),
            quality: PartitionQuality::evaluate(csr, &[], job.params.num_parts),
            timings: PhaseTimer::new(),
            comm: CommStatsSnapshot::default(),
            trace_path: None,
        }
    }
}
