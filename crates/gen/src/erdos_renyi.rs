//! Erdős–Rényi uniform random graphs (the paper's `RandER` scaling graphs).
//!
//! We use the G(n, m) flavour: exactly `n * davg / 2` undirected edges with endpoints
//! chosen uniformly at random, which is how the paper's generator matches graph sizes
//! between RMAT, RandER and RandHD runs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::EdgeList;

/// Parameters of the Erdős–Rényi G(n, m) generator.
#[derive(Debug, Clone, Copy)]
pub struct ErdosRenyiConfig {
    /// Number of vertices.
    pub num_vertices: u64,
    /// Average degree; the number of undirected edges is `num_vertices * avg_degree / 2`.
    pub avg_degree: u64,
    /// RNG seed.
    pub seed: u64,
}

/// Generate a uniform random edge list.
pub fn generate(config: &ErdosRenyiConfig) -> EdgeList {
    let n = config.num_vertices;
    let m = n.saturating_mul(config.avg_degree) / 2;
    let chunk = 1u64 << 16;
    let num_chunks = m.div_ceil(chunk).max(1);
    let edges: Vec<(u64, u64)> = (0..num_chunks)
        .into_par_iter()
        .flat_map_iter(|ci| {
            let mut rng = SmallRng::seed_from_u64(config.seed ^ ci.wrapping_mul(0xA24B_AED4));
            let count = chunk.min(m.saturating_sub(ci * chunk));
            (0..count).map(move |_| {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                (u, v)
            })
        })
        .collect();
    EdgeList {
        num_vertices: n,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_configuration() {
        let el = generate(&ErdosRenyiConfig {
            num_vertices: 1000,
            avg_degree: 10,
            seed: 1,
        });
        assert_eq!(el.num_vertices, 1000);
        assert_eq!(el.edges.len(), 5000);
        assert!(el.edges.iter().all(|&(u, v)| u < 1000 && v < 1000));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = ErdosRenyiConfig {
            num_vertices: 500,
            avg_degree: 8,
            seed: 42,
        };
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn degrees_are_roughly_uniform() {
        let el = generate(&ErdosRenyiConfig {
            num_vertices: 4096,
            avg_degree: 16,
            seed: 5,
        });
        let csr = el.to_csr();
        // Uniform random graphs have max degree within a small factor of the average.
        assert!(csr.max_degree() < 16 * 4);
        assert!(csr.avg_degree() > 10.0);
    }

    #[test]
    fn tiny_graph_does_not_panic() {
        let el = generate(&ErdosRenyiConfig {
            num_vertices: 1,
            avg_degree: 2,
            seed: 1,
        });
        assert_eq!(el.num_vertices, 1);
        // All edges are self loops on vertex 0, removed downstream.
        assert!(el.to_csr().num_edges() == 0);
    }
}
