//! Barabási–Albert preferential attachment: the proxy for the paper's online social
//! network class (lj, orkut, friendster, twitter).
//!
//! Preferential attachment produces the heavy-tailed degree distribution and very low
//! diameter that characterise those networks, which in turn produce the near-1.0 edge cut
//! ratios the paper reports for them at high part counts.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::EdgeList;

/// Parameters of the Barabási–Albert generator.
#[derive(Debug, Clone, Copy)]
pub struct BaConfig {
    /// Number of vertices.
    pub num_vertices: u64,
    /// Edges added per new vertex (half the eventual average degree).
    pub edges_per_vertex: u64,
    /// RNG seed.
    pub seed: u64,
}

/// Generate a Barabási–Albert edge list.
///
/// Uses the standard "repeated endpoints" trick: attachment targets are sampled
/// uniformly from the list of previous edge endpoints, which realises preferential
/// attachment in O(m) time.
pub fn generate(config: &BaConfig) -> EdgeList {
    let n = config.num_vertices;
    let m = config.edges_per_vertex.max(1);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut edges: Vec<(u64, u64)> = Vec::with_capacity((n * m) as usize);
    // Endpoint pool for preferential sampling.
    let mut pool: Vec<u64> = Vec::with_capacity((2 * n * m) as usize);

    let seed_size = (m + 1).min(n);
    // Start from a small clique so early samples have targets.
    for u in 0..seed_size {
        for v in (u + 1)..seed_size {
            edges.push((u, v));
            pool.push(u);
            pool.push(v);
        }
    }
    for u in seed_size..n {
        for _ in 0..m {
            let v = if pool.is_empty() {
                rng.gen_range(0..u)
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            if v == u {
                continue;
            }
            edges.push((u, v));
            pool.push(u);
            pool.push(v);
        }
    }
    EdgeList {
        num_vertices: n,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrapulp_graph::stats::approximate_diameter;

    #[test]
    fn sizes_are_plausible() {
        let el = generate(&BaConfig {
            num_vertices: 2000,
            edges_per_vertex: 8,
            seed: 1,
        });
        assert_eq!(el.num_vertices, 2000);
        let csr = el.to_csr();
        assert!(csr.avg_degree() > 10.0);
        assert!(csr.num_edges() > 10_000);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = BaConfig {
            num_vertices: 300,
            edges_per_vertex: 4,
            seed: 77,
        };
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let el = generate(&BaConfig {
            num_vertices: 4000,
            edges_per_vertex: 6,
            seed: 3,
        });
        let csr = el.to_csr();
        assert!(csr.max_degree() as f64 > csr.avg_degree() * 10.0);
    }

    #[test]
    fn diameter_is_small() {
        let el = generate(&BaConfig {
            num_vertices: 4000,
            edges_per_vertex: 6,
            seed: 3,
        });
        let diam = approximate_diameter(&el.to_csr(), 10, 1);
        assert!(
            diam <= 8,
            "social-network proxy should have a tiny diameter, got {diam}"
        );
    }

    #[test]
    fn tiny_configurations_do_not_panic() {
        let el = generate(&BaConfig {
            num_vertices: 2,
            edges_per_vertex: 3,
            seed: 1,
        });
        assert_eq!(el.num_vertices, 2);
        assert!(el.to_csr().num_edges() <= 1);
    }
}
