//! # xtrapulp-gen
//!
//! Deterministic synthetic graph generators used to stand in for the paper's evaluation
//! corpus.
//!
//! The paper evaluates XtraPuLP on four classes of graphs (Table I): online social /
//! communication networks, web crawls, synthetic R-MAT / random graphs, and regular
//! scientific-computing meshes, plus the Blue Waters scaling graphs (R-MAT, Erdős–Rényi,
//! and the "RandHD" high-diameter random construction). We cannot redistribute the real
//! datasets (and the largest of them, the 128-billion-edge WDC12 crawl, would not fit on
//! one machine anyway), so every experiment harness draws from these generators, scaled
//! to laptop sizes, with each class's structural signature preserved:
//!
//! * [`rmat`] — the R-MAT recursive matrix model (skewed degrees, low diameter), the
//!   paper's proxy for power-law graphs.
//! * [`erdos_renyi`] — uniform random graphs (the paper's RandER).
//! * [`rand_hd`] — the paper's own high-diameter random construction: vertex `k` connects
//!   to `davg` uniform picks from `(k - davg, k + davg)`.
//! * [`mesh`] — 2-D and 3-D grid stencils (proxies for `InternalMeshX` and `nlpkktXXX`).
//! * [`ba`] — Barabási–Albert preferential attachment (proxy for social networks).
//! * [`smallworld`] — Watts–Strogatz ring rewiring (generic small-world instances).
//! * [`webcrawl`] — a planted-community + hub model that mimics the very low edge-cut
//!   structure of real crawls under block partitioning (the property the paper highlights
//!   for WDC12 and the uk-* crawls).
//! * [`presets`] — named, scaled-down stand-ins for each row of Table I and for the Blue
//!   Waters strong/weak-scaling graphs.
//! * [`updates`] — timestamped update-stream generation (preferential-attachment growth
//!   and random churn) for the dynamic-graph benches and tests.

pub mod ba;
pub mod erdos_renyi;
pub mod mesh;
pub mod presets;
pub mod rand_hd;
pub mod rmat;
pub mod smallworld;
pub mod updates;
pub mod webcrawl;

pub use presets::{GraphClass, GraphConfig, GraphKind, TableIPreset};
pub use updates::{generate_stream, StreamKind, TimedOp, UpdateStream, UpdateStreamConfig};

use xtrapulp_graph::GlobalId;

/// An undirected edge list with an explicit vertex count (isolated vertices allowed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    /// Number of vertices (vertex ids are `0..num_vertices`).
    pub num_vertices: u64,
    /// Undirected edges; may contain duplicates or self loops, which downstream builders
    /// remove.
    pub edges: Vec<(GlobalId, GlobalId)>,
}

impl EdgeList {
    /// Build an in-memory CSR from this edge list.
    pub fn to_csr(&self) -> xtrapulp_graph::Csr {
        xtrapulp_graph::csr_from_edges(self.num_vertices, &self.edges)
    }
}
