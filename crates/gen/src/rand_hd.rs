//! The paper's high-diameter random graph construction (`RandHD`).
//!
//! Quoting the experimental setup: "for a vertex with identifier `k`, we add `davg`
//! edges connecting it to vertices chosen uniform randomly from the interval
//! `(k − davg, k + davg)`". The resulting graph is locally random but globally
//! path-like, so it has a large diameter and — crucially for the scaling analysis — a
//! very low edge cut under block distributions, which is why the paper's RandHD runs are
//! the fastest of the Blue Waters experiments.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::EdgeList;

/// Parameters of the RandHD generator.
#[derive(Debug, Clone, Copy)]
pub struct RandHdConfig {
    /// Number of vertices.
    pub num_vertices: u64,
    /// Number of edges added per vertex, and the half-width of the local window.
    pub avg_degree: u64,
    /// RNG seed.
    pub seed: u64,
}

/// Generate a RandHD edge list.
pub fn generate(config: &RandHdConfig) -> EdgeList {
    let n = config.num_vertices;
    let d = config.avg_degree.max(1) as i64;
    let edges: Vec<(u64, u64)> = (0..n)
        .into_par_iter()
        .flat_map_iter(|k| {
            let mut rng = SmallRng::seed_from_u64(config.seed ^ k.wrapping_mul(0x5851_F42D));
            let n = n as i64;
            (0..config.avg_degree).filter_map(move |_| {
                let k = k as i64;
                let offset = rng.gen_range(-d + 1..d);
                let v = k + offset;
                if v < 0 || v >= n || v == k {
                    None
                } else {
                    Some((k as u64, v as u64))
                }
            })
        })
        .collect();
    EdgeList {
        num_vertices: n,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrapulp_graph::stats::approximate_diameter;

    #[test]
    fn edges_stay_in_local_window() {
        let cfg = RandHdConfig {
            num_vertices: 1000,
            avg_degree: 8,
            seed: 3,
        };
        let el = generate(&cfg);
        for &(u, v) in &el.edges {
            assert!((u as i64 - v as i64).abs() < 8);
            assert_ne!(u, v);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = RandHdConfig {
            num_vertices: 500,
            avg_degree: 6,
            seed: 11,
        };
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn has_high_diameter() {
        // Compared with an R-MAT or ER graph of the same size (diameter < 10), the RandHD
        // diameter grows linearly with n / davg.
        let cfg = RandHdConfig {
            num_vertices: 2000,
            avg_degree: 8,
            seed: 2,
        };
        let csr = generate(&cfg).to_csr();
        let diam = approximate_diameter(&csr, 10, 1);
        assert!(diam > 100, "expected a path-like diameter, got {diam}");
    }

    #[test]
    fn average_degree_is_close_to_target() {
        let cfg = RandHdConfig {
            num_vertices: 5000,
            avg_degree: 16,
            seed: 9,
        };
        let csr = generate(&cfg).to_csr();
        // Duplicates and boundary clipping lose some edges; expect within 40% of 2*davg
        // (each vertex both initiates davg edges and receives some).
        assert!(csr.avg_degree() > 16.0 * 0.6);
    }
}
