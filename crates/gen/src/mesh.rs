//! Regular mesh generators: proxies for the paper's `InternalMeshX` and `nlpkktXXX`
//! scientific-computing graphs.
//!
//! These graphs are the fourth class in Table I: regular, high-diameter, low and uniform
//! degree (≈ 13 for both families). ParMETIS is expected to beat label-propagation
//! partitioners on them, and the reproduction needs that contrast. A 2-D 9-point or 3-D
//! 27-point stencil over a grid reproduces the relevant structure (constant degree,
//! planar-ish separators, diameter that grows as a power of n).

use crate::EdgeList;

/// Generate a 2-D grid graph of `width * height` vertices.
///
/// `diagonal = false` gives the 5-point stencil (degree ≤ 4), `true` the 9-point stencil
/// (degree ≤ 8). Vertex `(x, y)` has id `y * width + x`.
pub fn grid2d(width: u64, height: u64, diagonal: bool) -> EdgeList {
    let n = width * height;
    let mut edges = Vec::with_capacity((n * if diagonal { 4 } else { 2 }) as usize);
    let id = |x: u64, y: u64| y * width + x;
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width {
                edges.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < height {
                edges.push((id(x, y), id(x, y + 1)));
            }
            if diagonal && x + 1 < width && y + 1 < height {
                edges.push((id(x, y), id(x + 1, y + 1)));
                edges.push((id(x + 1, y), id(x, y + 1)));
            }
        }
    }
    EdgeList {
        num_vertices: n,
        edges,
    }
}

/// Generate a 3-D grid graph of `nx * ny * nz` vertices with the 7-point stencil
/// (`full = false`) or the 27-point stencil minus centre (`full = true`, degree ≤ 26).
///
/// The 27-point stencil's average interior degree (26) brackets the nlpkkt family's
/// average degree; the 7-point stencil (6) brackets the InternalMesh family from below.
/// Experiments use whichever matches the target degree better.
pub fn grid3d(nx: u64, ny: u64, nz: u64, full: bool) -> EdgeList {
    let n = nx * ny * nz;
    let mut edges = Vec::new();
    let id = |x: u64, y: u64, z: u64| (z * ny + y) * nx + x;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if full {
                    // Connect to all lexicographically-greater neighbours in the 3x3x3 cube.
                    for dz in 0..=1u64 {
                        for dy in -1i64..=1 {
                            for dx in -1i64..=1 {
                                if dz == 0 && (dy < 0 || (dy == 0 && dx <= 0)) {
                                    continue;
                                }
                                let nx_ = x as i64 + dx;
                                let ny_ = y as i64 + dy;
                                let nz_ = z + dz;
                                if nx_ < 0
                                    || ny_ < 0
                                    || nx_ >= nx as i64
                                    || ny_ >= ny as i64
                                    || nz_ >= nz
                                {
                                    continue;
                                }
                                edges.push((id(x, y, z), id(nx_ as u64, ny_ as u64, nz_)));
                            }
                        }
                    }
                } else {
                    if x + 1 < nx {
                        edges.push((id(x, y, z), id(x + 1, y, z)));
                    }
                    if y + 1 < ny {
                        edges.push((id(x, y, z), id(x, y + 1, z)));
                    }
                    if z + 1 < nz {
                        edges.push((id(x, y, z), id(x, y, z + 1)));
                    }
                }
            }
        }
    }
    EdgeList {
        num_vertices: n,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrapulp_graph::stats::approximate_diameter;

    #[test]
    fn grid2d_5point_counts() {
        let el = grid2d(4, 3, false);
        assert_eq!(el.num_vertices, 12);
        // 2*4*3 - 4 - 3 = 17 edges for a 4x3 grid.
        assert_eq!(el.edges.len(), 17);
        let csr = el.to_csr();
        assert_eq!(csr.num_edges(), 17);
        assert_eq!(csr.max_degree(), 4);
    }

    #[test]
    fn grid2d_9point_has_higher_degree() {
        let el = grid2d(10, 10, true);
        let csr = el.to_csr();
        assert_eq!(csr.max_degree(), 8);
        assert_eq!(csr.num_vertices(), 100);
    }

    #[test]
    fn grid3d_7point_interior_degree() {
        let el = grid3d(5, 5, 5, false);
        let csr = el.to_csr();
        assert_eq!(csr.num_vertices(), 125);
        assert_eq!(csr.max_degree(), 6);
        // Interior vertex (2,2,2) has id (2*5+2)*5+2 = 62 and degree 6.
        assert_eq!(csr.degree(62), 6);
    }

    #[test]
    fn grid3d_27point_interior_degree() {
        let el = grid3d(5, 5, 5, true);
        let csr = el.to_csr();
        assert_eq!(csr.max_degree(), 26);
    }

    #[test]
    fn grid_diameter_grows_with_side_length() {
        let small = approximate_diameter(&grid2d(8, 8, false).to_csr(), 10, 1);
        let large = approximate_diameter(&grid2d(24, 24, false).to_csr(), 10, 1);
        assert_eq!(small, 14);
        assert_eq!(large, 46);
    }

    #[test]
    fn degenerate_grids() {
        assert_eq!(grid2d(1, 1, true).to_csr().num_edges(), 0);
        assert_eq!(grid2d(5, 1, false).to_csr().num_edges(), 4);
        assert_eq!(grid3d(1, 1, 7, false).to_csr().num_edges(), 6);
    }
}
