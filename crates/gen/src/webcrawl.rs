//! A web-crawl-like generator: planted host communities plus hub pages.
//!
//! Real hyperlink graphs (the paper's uk-*, it, sk, arabic, indochina and WDC12 graphs)
//! have two structural signatures that matter for partitioning experiments:
//!
//! 1. **Locality** — crawls are stored host-by-host, so consecutive vertex ids are
//!    heavily interlinked and a simple block partition already yields a modest edge cut
//!    (the paper measures 0.16 for WDC12 vertex-block vs ~1.0 for random placement).
//! 2. **Hubs** — a small set of pages (directories, front pages) have enormous degree,
//!    producing max degrees in the thousands.
//!
//! This generator plants communities of consecutive vertex ids with dense intra-community
//! links, adds a configurable fraction of inter-community links, and promotes a small
//! fraction of vertices to hubs that receive links from across the graph.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::EdgeList;

/// Parameters of the web-crawl proxy generator.
#[derive(Debug, Clone, Copy)]
pub struct WebCrawlConfig {
    /// Number of vertices (pages).
    pub num_vertices: u64,
    /// Average degree.
    pub avg_degree: u64,
    /// Number of consecutive vertices per planted community (host).
    pub community_size: u64,
    /// Fraction of edges that leave their community (0.05–0.15 matches real crawls).
    pub inter_community_fraction: f64,
    /// Fraction of vertices promoted to hubs (e.g. 0.001).
    pub hub_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WebCrawlConfig {
    fn default() -> Self {
        WebCrawlConfig {
            num_vertices: 1 << 16,
            avg_degree: 16,
            community_size: 256,
            inter_community_fraction: 0.08,
            hub_fraction: 0.001,
            seed: 0xC0FFEE,
        }
    }
}

/// Generate a web-crawl-like edge list.
pub fn generate(config: &WebCrawlConfig) -> EdgeList {
    let n = config.num_vertices;
    let cs = config.community_size.max(2).min(n.max(2));
    let num_hubs = ((n as f64 * config.hub_fraction).ceil() as u64).max(1);
    let edges_per_vertex = (config.avg_degree / 2).max(1);

    let edges: Vec<(u64, u64)> = (0..n)
        .into_par_iter()
        .flat_map_iter(|u| {
            let mut rng = SmallRng::seed_from_u64(config.seed ^ u.wrapping_mul(0x2545_F491));
            let community = u / cs;
            let community_start = community * cs;
            let community_end = (community_start + cs).min(n);
            let cfg = *config;
            (0..edges_per_vertex).filter_map(move |_| {
                let r: f64 = rng.gen();
                let v = if r < (cfg.hub_fraction * 20.0).clamp(0.0, 0.1) {
                    // Link to a hub page anywhere in the graph.
                    rng.gen_range(0..num_hubs) * (n / num_hubs).max(1)
                } else if r < cfg.inter_community_fraction {
                    // Cross-community link.
                    rng.gen_range(0..n)
                } else {
                    // Intra-community link.
                    rng.gen_range(community_start..community_end)
                };
                if v == u {
                    None
                } else {
                    Some((u, v))
                }
            })
        })
        .collect();

    EdgeList {
        num_vertices: n,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> WebCrawlConfig {
        WebCrawlConfig {
            num_vertices: 4096,
            avg_degree: 16,
            community_size: 128,
            inter_community_fraction: 0.08,
            hub_fraction: 0.002,
            seed: 9,
        }
    }

    #[test]
    fn sizes_are_plausible() {
        let el = generate(&small_config());
        assert_eq!(el.num_vertices, 4096);
        let csr = el.to_csr();
        assert!(csr.avg_degree() > 8.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        assert_eq!(generate(&small_config()), generate(&small_config()));
    }

    #[test]
    fn block_partition_has_low_cut() {
        // The defining property of the crawl proxy: cutting the vertex range into
        // contiguous blocks cuts only a small fraction of the edges.
        let el = generate(&small_config());
        let csr = el.to_csr();
        let n = csr.num_vertices() as u64;
        let parts = 8u64;
        let block = n / parts;
        let mut cut = 0u64;
        for (u, v) in csr.edges() {
            if u / block != v / block {
                cut += 1;
            }
        }
        let ratio = cut as f64 / csr.num_edges() as f64;
        assert!(
            ratio < 0.35,
            "crawl proxy should have a low block-partition cut, got {ratio}"
        );
    }

    #[test]
    fn has_hub_vertices() {
        let el = generate(&small_config());
        let csr = el.to_csr();
        assert!(csr.max_degree() as f64 > csr.avg_degree() * 6.0);
    }
}
