//! Watts–Strogatz small-world graphs.
//!
//! The paper frames its target workloads as "small-world" graphs (low diameter, local
//! clustering). The Watts–Strogatz model — a ring lattice with a fraction of edges
//! rewired to uniform random targets — is the canonical generator for that regime and is
//! used by the test suite to produce graphs that are neither as skewed as R-MAT nor as
//! regular as meshes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::EdgeList;

/// Parameters of the Watts–Strogatz generator.
#[derive(Debug, Clone, Copy)]
pub struct SmallWorldConfig {
    /// Number of vertices.
    pub num_vertices: u64,
    /// Each vertex connects to `k` nearest neighbours on each side of the ring (degree 2k
    /// before rewiring).
    pub k: u64,
    /// Probability that each lattice edge is rewired to a uniform random target.
    pub rewire_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Generate a Watts–Strogatz edge list.
pub fn generate(config: &SmallWorldConfig) -> EdgeList {
    let n = config.num_vertices;
    let k = config.k.max(1);
    assert!(
        (0.0..=1.0).contains(&config.rewire_probability),
        "rewire probability must be in [0, 1]"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut edges = Vec::with_capacity((n * k) as usize);
    for u in 0..n {
        for j in 1..=k {
            let v = (u + j) % n;
            if rng.gen::<f64>() < config.rewire_probability {
                // Rewire the far endpoint to a uniform random vertex.
                let w = rng.gen_range(0..n);
                if w != u {
                    edges.push((u, w));
                    continue;
                }
            }
            if v != u {
                edges.push((u, v));
            }
        }
    }
    EdgeList {
        num_vertices: n,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrapulp_graph::stats::approximate_diameter;

    #[test]
    fn unrewired_lattice_is_regular() {
        let el = generate(&SmallWorldConfig {
            num_vertices: 100,
            k: 3,
            rewire_probability: 0.0,
            seed: 1,
        });
        let csr = el.to_csr();
        assert_eq!(csr.num_edges(), 300);
        for v in 0..100 {
            assert_eq!(csr.degree(v), 6);
        }
    }

    #[test]
    fn rewiring_shrinks_the_diameter() {
        let lattice = generate(&SmallWorldConfig {
            num_vertices: 600,
            k: 2,
            rewire_probability: 0.0,
            seed: 1,
        });
        let rewired = generate(&SmallWorldConfig {
            num_vertices: 600,
            k: 2,
            rewire_probability: 0.2,
            seed: 1,
        });
        let d_lattice = approximate_diameter(&lattice.to_csr(), 10, 1);
        let d_rewired = approximate_diameter(&rewired.to_csr(), 10, 1);
        assert!(d_rewired * 3 < d_lattice, "{d_rewired} vs {d_lattice}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = SmallWorldConfig {
            num_vertices: 200,
            k: 4,
            rewire_probability: 0.1,
            seed: 5,
        };
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    #[should_panic(expected = "rewire probability")]
    fn invalid_probability_panics() {
        generate(&SmallWorldConfig {
            num_vertices: 10,
            k: 2,
            rewire_probability: 1.5,
            seed: 1,
        });
    }
}
