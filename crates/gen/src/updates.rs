//! Timestamped update-stream generation for dynamic-graph experiments.
//!
//! Real serving workloads mutate their graphs continuously: social networks grow by
//! preferential attachment, crawls and interaction graphs churn (old edges disappear as
//! new ones arrive). The dynamic-repartitioning benches and tests need realistic
//! mutation traces, so this module evolves a base [`EdgeList`] through a configurable
//! number of batches and emits every mutation as a logically-timestamped
//! [`UpdateOp`] — by construction valid against the state of the graph at its batch
//! boundary (no duplicate inserts, no deletions of missing edges, no insert/delete
//! conflicts within one batch).

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xtrapulp_graph::{GlobalId, UpdateOp};

use crate::EdgeList;

// The record type lives in the graph crate next to its on-disk format
// (`xtrapulp_graph::io::{read,write}_update_log`); re-exported here so stream
// consumers keep their import path.
pub use xtrapulp_graph::TimedOp;

/// The mutation model a stream follows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamKind {
    /// Growth: each batch appends new vertices that attach preferentially to
    /// high-degree endpoints (the Barabási–Albert mechanism), mimicking a growing
    /// social network.
    PreferentialGrowth {
        /// New vertices per batch.
        vertices_per_batch: u64,
        /// Edges each new vertex attaches with.
        edges_per_vertex: u64,
    },
    /// Churn: each batch deletes existing edges and inserts fresh ones at a configurable
    /// mix, keeping the graph size roughly stable — the steady-state regime of a mature
    /// network.
    RandomChurn {
        /// Mutations per batch (inserts + deletes).
        ops_per_batch: usize,
        /// Fraction of ops that are deletions (`0.5` keeps the edge count stable).
        delete_fraction: f64,
    },
}

/// A reproducible update-stream request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateStreamConfig {
    /// The mutation model.
    pub kind: StreamKind,
    /// Number of batches to emit.
    pub num_batches: usize,
    /// RNG seed.
    pub seed: u64,
}

/// A generated stream: one `Vec<TimedOp>` per batch, in application order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateStream {
    /// The batches, each sorted by timestamp.
    pub batches: Vec<Vec<TimedOp>>,
}

impl UpdateStream {
    /// The raw ops of batch `idx`, stripped of timestamps (the shape
    /// `xtrapulp_dynamic::UpdateBatch::from_ops` consumes).
    pub fn batch_ops(&self, idx: usize) -> impl Iterator<Item = UpdateOp> + '_ {
        self.batches[idx].iter().map(|t| t.op)
    }

    /// Total number of mutations across all batches.
    pub fn num_ops(&self) -> usize {
        self.batches.iter().map(|b| b.len()).sum()
    }

    /// Every op of every batch in application order — the flat shape
    /// `xtrapulp_graph::io::write_update_log` records.
    pub fn all_ops(&self) -> Vec<TimedOp> {
        self.batches.iter().flatten().copied().collect()
    }
}

/// Evolve `base` through `config.num_batches` batches of mutations.
pub fn generate_stream(base: &EdgeList, config: &UpdateStreamConfig) -> UpdateStream {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x0D14_A51C);
    let mut state = LiveState::from_edge_list(base);
    let mut clock = 0u64;
    let mut batches = Vec::with_capacity(config.num_batches);
    for _ in 0..config.num_batches {
        let batch = match config.kind {
            StreamKind::PreferentialGrowth {
                vertices_per_batch,
                edges_per_vertex,
            } => state.growth_batch(&mut rng, &mut clock, vertices_per_batch, edges_per_vertex),
            StreamKind::RandomChurn {
                ops_per_batch,
                delete_fraction,
            } => state.churn_batch(&mut rng, &mut clock, ops_per_batch, delete_fraction),
        };
        batches.push(batch);
    }
    UpdateStream { batches }
}

/// The evolving graph the generator mutates: vertex count, a live edge set for
/// membership checks, a dense edge list for uniform deletion sampling and an endpoint
/// pool for preferential attachment.
struct LiveState {
    n: u64,
    edge_set: HashSet<(GlobalId, GlobalId)>,
    edge_vec: Vec<(GlobalId, GlobalId)>,
    endpoint_pool: Vec<GlobalId>,
}

impl LiveState {
    fn from_edge_list(base: &EdgeList) -> LiveState {
        let mut state = LiveState {
            n: base.num_vertices,
            edge_set: HashSet::with_capacity(base.edges.len()),
            edge_vec: Vec::with_capacity(base.edges.len()),
            endpoint_pool: Vec::with_capacity(base.edges.len() * 2),
        };
        for &(u, v) in &base.edges {
            if u == v || u >= state.n || v >= state.n {
                continue;
            }
            state.add_edge(u.min(v), u.max(v));
        }
        state
    }

    fn add_edge(&mut self, u: GlobalId, v: GlobalId) -> bool {
        if self.edge_set.insert((u, v)) {
            self.edge_vec.push((u, v));
            self.endpoint_pool.push(u);
            self.endpoint_pool.push(v);
            true
        } else {
            false
        }
    }

    fn growth_batch(
        &mut self,
        rng: &mut SmallRng,
        clock: &mut u64,
        vertices: u64,
        edges_per_vertex: u64,
    ) -> Vec<TimedOp> {
        let mut ops = Vec::new();
        let stamp = |op: UpdateOp, clock: &mut u64| {
            *clock += 1;
            TimedOp { time: *clock, op }
        };
        for _ in 0..vertices {
            let new_vertex = self.n;
            self.n += 1;
            ops.push(stamp(UpdateOp::AddVertices(1), clock));
            let mut attached: HashSet<GlobalId> = HashSet::new();
            for _ in 0..edges_per_vertex {
                // Preferential pick from the endpoint pool, uniform fallback; cap the
                // retries so pathological pools (tiny base graphs) cannot spin.
                let mut target = None;
                for _ in 0..16 {
                    let candidate = if self.endpoint_pool.is_empty() {
                        rng.gen_range(0..new_vertex.max(1))
                    } else {
                        self.endpoint_pool[rng.gen_range(0..self.endpoint_pool.len())]
                    };
                    if candidate != new_vertex && !attached.contains(&candidate) {
                        target = Some(candidate);
                        break;
                    }
                }
                if let Some(t) = target {
                    attached.insert(t);
                    self.add_edge(new_vertex.min(t), new_vertex.max(t));
                    ops.push(stamp(UpdateOp::InsertEdge(new_vertex, t), clock));
                }
            }
        }
        ops
    }

    fn churn_batch(
        &mut self,
        rng: &mut SmallRng,
        clock: &mut u64,
        ops_per_batch: usize,
        delete_fraction: f64,
    ) -> Vec<TimedOp> {
        let mut ops = Vec::new();
        // Per-batch bookkeeping keeps the batch internally consistent: an edge inserted
        // in this batch is never deleted in it (and vice versa), which would be an
        // insert/delete conflict at validation time.
        let mut inserted_this_batch: HashSet<(GlobalId, GlobalId)> = HashSet::new();
        let mut deleted_this_batch: HashSet<(GlobalId, GlobalId)> = HashSet::new();
        for _ in 0..ops_per_batch {
            *clock += 1;
            let do_delete =
                !self.edge_vec.is_empty() && rng.gen_bool(delete_fraction.clamp(0.0, 1.0));
            if do_delete {
                let mut picked = None;
                for _ in 0..16 {
                    let idx = rng.gen_range(0..self.edge_vec.len());
                    let key = self.edge_vec[idx];
                    if !inserted_this_batch.contains(&key) {
                        picked = Some((idx, key));
                        break;
                    }
                }
                if let Some((idx, (u, v))) = picked {
                    self.edge_vec.swap_remove(idx);
                    self.edge_set.remove(&(u, v));
                    deleted_this_batch.insert((u, v));
                    ops.push(TimedOp {
                        time: *clock,
                        op: UpdateOp::DeleteEdge(u, v),
                    });
                }
            } else if self.n >= 2 {
                for _ in 0..16 {
                    let u = rng.gen_range(0..self.n);
                    let v = rng.gen_range(0..self.n);
                    if u == v {
                        continue;
                    }
                    let key = (u.min(v), u.max(v));
                    if deleted_this_batch.contains(&key) || self.edge_set.contains(&key) {
                        continue;
                    }
                    self.add_edge(key.0, key.1);
                    inserted_this_batch.insert(key);
                    ops.push(TimedOp {
                        time: *clock,
                        op: UpdateOp::InsertEdge(u, v),
                    });
                    break;
                }
            }
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphConfig, GraphKind};

    fn base() -> EdgeList {
        GraphConfig::new(
            GraphKind::BarabasiAlbert {
                num_vertices: 500,
                edges_per_vertex: 4,
            },
            3,
        )
        .generate()
    }

    /// Replay a stream against a mirror of the live state, checking batch validity.
    fn check_stream_validity(base: &EdgeList, stream: &UpdateStream) {
        let mut n = base.num_vertices;
        let mut edges: HashSet<(GlobalId, GlobalId)> = base
            .edges
            .iter()
            .filter(|&&(u, v)| u != v && u < n && v < n)
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect();
        let mut last_time = 0u64;
        for batch in &stream.batches {
            let mut touched_this_batch: HashSet<(GlobalId, GlobalId)> = HashSet::new();
            for t in batch {
                assert!(t.time > last_time, "timestamps must strictly increase");
                last_time = t.time;
                match t.op {
                    UpdateOp::AddVertices(c) => n += c,
                    UpdateOp::InsertEdge(u, v) => {
                        assert_ne!(u, v, "no self loops");
                        assert!(u < n && v < n, "endpoints must exist");
                        let key = (u.min(v), u.max(v));
                        assert!(edges.insert(key), "insert of existing edge {key:?}");
                        assert!(
                            touched_this_batch.insert(key),
                            "edge {key:?} touched twice in one batch"
                        );
                    }
                    UpdateOp::DeleteEdge(u, v) => {
                        let key = (u.min(v), u.max(v));
                        assert!(edges.remove(&key), "delete of missing edge {key:?}");
                        assert!(
                            touched_this_batch.insert(key),
                            "edge {key:?} touched twice in one batch"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn preferential_growth_streams_are_valid_and_grow_the_graph() {
        let base = base();
        let stream = generate_stream(
            &base,
            &UpdateStreamConfig {
                kind: StreamKind::PreferentialGrowth {
                    vertices_per_batch: 20,
                    edges_per_vertex: 4,
                },
                num_batches: 5,
                seed: 7,
            },
        );
        assert_eq!(stream.batches.len(), 5);
        check_stream_validity(&base, &stream);
        let added: u64 = stream
            .batches
            .iter()
            .flatten()
            .map(|t| match t.op {
                UpdateOp::AddVertices(c) => c,
                _ => 0,
            })
            .sum();
        assert_eq!(added, 100);
    }

    #[test]
    fn random_churn_streams_are_valid_and_mix_inserts_and_deletes() {
        let base = base();
        let stream = generate_stream(
            &base,
            &UpdateStreamConfig {
                kind: StreamKind::RandomChurn {
                    ops_per_batch: 50,
                    delete_fraction: 0.5,
                },
                num_batches: 8,
                seed: 11,
            },
        );
        check_stream_validity(&base, &stream);
        let (mut ins, mut del) = (0usize, 0usize);
        for t in stream.batches.iter().flatten() {
            match t.op {
                UpdateOp::InsertEdge(..) => ins += 1,
                UpdateOp::DeleteEdge(..) => del += 1,
                UpdateOp::AddVertices(_) => {}
            }
        }
        assert!(ins > 50, "expected a healthy insert share, got {ins}");
        assert!(del > 50, "expected a healthy delete share, got {del}");
    }

    #[test]
    fn streams_are_deterministic_for_fixed_seed() {
        let base = base();
        let config = UpdateStreamConfig {
            kind: StreamKind::RandomChurn {
                ops_per_batch: 30,
                delete_fraction: 0.4,
            },
            num_batches: 4,
            seed: 99,
        };
        assert_eq!(
            generate_stream(&base, &config),
            generate_stream(&base, &config)
        );
    }

    #[test]
    fn tiny_base_graphs_do_not_spin_or_panic() {
        let tiny = EdgeList {
            num_vertices: 2,
            edges: vec![(0, 1)],
        };
        for kind in [
            StreamKind::PreferentialGrowth {
                vertices_per_batch: 3,
                edges_per_vertex: 2,
            },
            StreamKind::RandomChurn {
                ops_per_batch: 10,
                delete_fraction: 0.9,
            },
        ] {
            let stream = generate_stream(
                &tiny,
                &UpdateStreamConfig {
                    kind,
                    num_batches: 3,
                    seed: 1,
                },
            );
            check_stream_validity(&tiny, &stream);
        }
    }
}
