//! Named, scaled-down stand-ins for the paper's evaluation graphs.
//!
//! Every experiment harness refers to graphs by the paper's names (`lj`, `friendster`,
//! `uk-2002`, `rmat_24`, `nlpkkt240`, `WDC12`, ...). A [`TableIPreset`] maps each name to
//! a generator configuration of the same *class* (social network, web crawl, synthetic
//! power-law, regular mesh) at a size that runs on a single machine. The per-class
//! ordering of results — which partitioner wins on which class, where quality collapses,
//! which graphs block-partition well — is the property the reproduction preserves.

use serde::{Deserialize, Serialize};

use crate::{ba, erdos_renyi, mesh, rand_hd, rmat, smallworld, webcrawl, EdgeList};

/// The graph class a preset belongs to (the four sections of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphClass {
    /// Online social and communication networks (lj, orkut, friendster, twitter, ...).
    Social,
    /// Hyperlink graphs / web crawls (uk-*, it, sk, arabic, wdc12-*, WDC12).
    Crawl,
    /// Synthetic R-MAT and random graphs (rmat_*, RMAT, RandER, RandHD).
    Synthetic,
    /// Regular scientific-computing meshes (InternalMeshX, nlpkktXXX).
    Mesh,
}

/// Which generator to use and with what shape parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphKind {
    /// R-MAT with Graph500 quadrant probabilities.
    Rmat {
        /// log2 of the vertex count.
        scale: u32,
        /// Undirected edges per vertex.
        edge_factor: u64,
    },
    /// Erdős–Rényi G(n, m).
    ErdosRenyi {
        /// Number of vertices.
        num_vertices: u64,
        /// Average degree.
        avg_degree: u64,
    },
    /// The paper's high-diameter random construction.
    RandHd {
        /// Number of vertices.
        num_vertices: u64,
        /// Edges per vertex / window half-width.
        avg_degree: u64,
    },
    /// Barabási–Albert preferential attachment.
    BarabasiAlbert {
        /// Number of vertices.
        num_vertices: u64,
        /// Edges added per vertex.
        edges_per_vertex: u64,
    },
    /// Watts–Strogatz small world.
    SmallWorld {
        /// Number of vertices.
        num_vertices: u64,
        /// Neighbours per side before rewiring.
        k: u64,
        /// Rewiring probability.
        rewire_probability: f64,
    },
    /// Planted-community web-crawl proxy.
    WebCrawl {
        /// Number of vertices.
        num_vertices: u64,
        /// Average degree.
        avg_degree: u64,
        /// Vertices per planted host community.
        community_size: u64,
    },
    /// 2-D grid (5-point or 9-point stencil).
    Grid2d {
        /// Grid width.
        width: u64,
        /// Grid height.
        height: u64,
        /// Use the 9-point stencil.
        diagonal: bool,
    },
    /// 3-D grid (7-point or 27-point stencil).
    Grid3d {
        /// Grid extent in x.
        nx: u64,
        /// Grid extent in y.
        ny: u64,
        /// Grid extent in z.
        nz: u64,
        /// Use the 27-point stencil.
        full: bool,
    },
}

/// A reproducible graph generation request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphConfig {
    /// Generator and shape.
    pub kind: GraphKind,
    /// RNG seed (ignored by the deterministic mesh generators).
    pub seed: u64,
}

impl GraphConfig {
    /// Create a configuration.
    pub fn new(kind: GraphKind, seed: u64) -> Self {
        GraphConfig { kind, seed }
    }

    /// Number of vertices this configuration will produce.
    pub fn num_vertices(&self) -> u64 {
        match self.kind {
            GraphKind::Rmat { scale, .. } => 1u64 << scale,
            GraphKind::ErdosRenyi { num_vertices, .. }
            | GraphKind::RandHd { num_vertices, .. }
            | GraphKind::BarabasiAlbert { num_vertices, .. }
            | GraphKind::SmallWorld { num_vertices, .. }
            | GraphKind::WebCrawl { num_vertices, .. } => num_vertices,
            GraphKind::Grid2d { width, height, .. } => width * height,
            GraphKind::Grid3d { nx, ny, nz, .. } => nx * ny * nz,
        }
    }

    /// Run the generator.
    pub fn generate(&self) -> EdgeList {
        match self.kind {
            GraphKind::Rmat { scale, edge_factor } => {
                rmat::generate(&rmat::RmatConfig::graph500(scale, edge_factor, self.seed))
            }
            GraphKind::ErdosRenyi {
                num_vertices,
                avg_degree,
            } => erdos_renyi::generate(&erdos_renyi::ErdosRenyiConfig {
                num_vertices,
                avg_degree,
                seed: self.seed,
            }),
            GraphKind::RandHd {
                num_vertices,
                avg_degree,
            } => rand_hd::generate(&rand_hd::RandHdConfig {
                num_vertices,
                avg_degree,
                seed: self.seed,
            }),
            GraphKind::BarabasiAlbert {
                num_vertices,
                edges_per_vertex,
            } => ba::generate(&ba::BaConfig {
                num_vertices,
                edges_per_vertex,
                seed: self.seed,
            }),
            GraphKind::SmallWorld {
                num_vertices,
                k,
                rewire_probability,
            } => smallworld::generate(&smallworld::SmallWorldConfig {
                num_vertices,
                k,
                rewire_probability,
                seed: self.seed,
            }),
            GraphKind::WebCrawl {
                num_vertices,
                avg_degree,
                community_size,
            } => webcrawl::generate(&webcrawl::WebCrawlConfig {
                num_vertices,
                avg_degree,
                community_size,
                inter_community_fraction: 0.08,
                hub_fraction: 0.001,
                seed: self.seed,
            }),
            GraphKind::Grid2d {
                width,
                height,
                diagonal,
            } => mesh::grid2d(width, height, diagonal),
            GraphKind::Grid3d { nx, ny, nz, full } => mesh::grid3d(nx, ny, nz, full),
        }
    }
}

/// A named proxy for one of the paper's evaluation graphs.
#[derive(Debug, Clone, Copy)]
pub struct TableIPreset {
    /// The paper's name for the graph (e.g. `"friendster"`).
    pub name: &'static str,
    /// Which of Table I's four sections the graph belongs to.
    pub class: GraphClass,
    /// The scaled generator standing in for it.
    pub config: GraphConfig,
}

impl TableIPreset {
    /// Look a preset up by the paper's graph name.
    pub fn by_name(name: &str) -> Option<TableIPreset> {
        all_presets().into_iter().find(|p| p.name == name)
    }

    /// The six representative graphs used by the paper for the Cluster-1 strong scaling
    /// and quality studies (Figs. 3 and 4, Table III).
    pub fn representative_six() -> Vec<TableIPreset> {
        [
            "lj",
            "orkut",
            "friendster",
            "wdc12-pay",
            "rmat_24",
            "nlpkkt240",
        ]
        .iter()
        .map(|n| Self::by_name(n).expect("representative preset missing"))
        .collect()
    }
}

/// The full list of Table I proxies (scaled down ~1000x but preserving class structure),
/// plus the Blue Waters scaling graphs.
pub fn all_presets() -> Vec<TableIPreset> {
    use GraphClass::*;
    use GraphKind::*;
    let p = |name, class, kind, seed| TableIPreset {
        name,
        class,
        config: GraphConfig::new(kind, seed),
    };
    vec![
        // --- Online social / communication networks -------------------------------------
        p(
            "lj",
            Social,
            BarabasiAlbert {
                num_vertices: 1 << 15,
                edges_per_vertex: 7,
            },
            101,
        ),
        p(
            "orkut",
            Social,
            BarabasiAlbert {
                num_vertices: 1 << 14,
                edges_per_vertex: 19,
            },
            102,
        ),
        p(
            "friendster",
            Social,
            BarabasiAlbert {
                num_vertices: 1 << 17,
                edges_per_vertex: 14,
            },
            103,
        ),
        p(
            "twitter",
            Social,
            Rmat {
                scale: 16,
                edge_factor: 19,
            },
            104,
        ),
        p(
            "wikilinks",
            Social,
            Rmat {
                scale: 15,
                edge_factor: 12,
            },
            105,
        ),
        p(
            "dbpedia",
            Social,
            Rmat {
                scale: 16,
                edge_factor: 2,
            },
            106,
        ),
        // --- Web crawls ------------------------------------------------------------------
        p(
            "indochina",
            Crawl,
            WebCrawl {
                num_vertices: 1 << 14,
                avg_degree: 41,
                community_size: 128,
            },
            201,
        ),
        p(
            "arabic",
            Crawl,
            WebCrawl {
                num_vertices: 1 << 15,
                avg_degree: 49,
                community_size: 256,
            },
            202,
        ),
        p(
            "it",
            Crawl,
            WebCrawl {
                num_vertices: 1 << 16,
                avg_degree: 29,
                community_size: 256,
            },
            203,
        ),
        p(
            "sk",
            Crawl,
            WebCrawl {
                num_vertices: 1 << 16,
                avg_degree: 38,
                community_size: 512,
            },
            204,
        ),
        p(
            "uk-2002",
            Crawl,
            WebCrawl {
                num_vertices: 1 << 14,
                avg_degree: 16,
                community_size: 128,
            },
            205,
        ),
        p(
            "uk-2005",
            Crawl,
            WebCrawl {
                num_vertices: 1 << 16,
                avg_degree: 40,
                community_size: 256,
            },
            206,
        ),
        p(
            "uk-2007",
            Crawl,
            WebCrawl {
                num_vertices: 1 << 17,
                avg_degree: 31,
                community_size: 512,
            },
            207,
        ),
        p(
            "wdc12-pay",
            Crawl,
            WebCrawl {
                num_vertices: 1 << 16,
                avg_degree: 16,
                community_size: 256,
            },
            208,
        ),
        p(
            "wdc12-host",
            Crawl,
            WebCrawl {
                num_vertices: 1 << 17,
                avg_degree: 23,
                community_size: 512,
            },
            209,
        ),
        // --- Synthetic R-MAT graphs --------------------------------------------------------
        p(
            "rmat_22",
            Synthetic,
            Rmat {
                scale: 14,
                edge_factor: 16,
            },
            301,
        ),
        p(
            "rmat_24",
            Synthetic,
            Rmat {
                scale: 16,
                edge_factor: 16,
            },
            302,
        ),
        p(
            "rmat_26",
            Synthetic,
            Rmat {
                scale: 17,
                edge_factor: 16,
            },
            303,
        ),
        p(
            "rmat_28",
            Synthetic,
            Rmat {
                scale: 18,
                edge_factor: 16,
            },
            304,
        ),
        // --- Regular meshes ----------------------------------------------------------------
        p(
            "InternalMesh1",
            Mesh,
            Grid3d {
                nx: 16,
                ny: 16,
                nz: 16,
                full: true,
            },
            401,
        ),
        p(
            "InternalMesh2",
            Mesh,
            Grid3d {
                nx: 28,
                ny: 28,
                nz: 28,
                full: true,
            },
            402,
        ),
        p(
            "InternalMesh3",
            Mesh,
            Grid3d {
                nx: 44,
                ny: 44,
                nz: 44,
                full: true,
            },
            403,
        ),
        p(
            "InternalMesh4",
            Mesh,
            Grid3d {
                nx: 64,
                ny: 64,
                nz: 64,
                full: true,
            },
            404,
        ),
        p(
            "nlpkkt160",
            Mesh,
            Grid3d {
                nx: 32,
                ny: 32,
                nz: 32,
                full: true,
            },
            405,
        ),
        p(
            "nlpkkt200",
            Mesh,
            Grid3d {
                nx: 40,
                ny: 40,
                nz: 40,
                full: true,
            },
            406,
        ),
        p(
            "nlpkkt240",
            Mesh,
            Grid3d {
                nx: 48,
                ny: 48,
                nz: 48,
                full: true,
            },
            407,
        ),
        // --- Blue Waters scaling graphs -----------------------------------------------------
        p(
            "WDC12",
            Crawl,
            WebCrawl {
                num_vertices: 1 << 18,
                avg_degree: 36,
                community_size: 1024,
            },
            501,
        ),
        p(
            "RMAT",
            Synthetic,
            Rmat {
                scale: 18,
                edge_factor: 18,
            },
            502,
        ),
        p(
            "RandER",
            Synthetic,
            ErdosRenyi {
                num_vertices: 1 << 18,
                avg_degree: 36,
            },
            503,
        ),
        p(
            "RandHD",
            Synthetic,
            RandHd {
                num_vertices: 1 << 18,
                avg_degree: 36,
            },
            504,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_generates_a_nonempty_graph() {
        // Use the smaller presets to keep the test fast; the large ones share generators.
        for preset in all_presets() {
            if preset.config.num_vertices() > (1 << 15) {
                continue;
            }
            let el = preset.config.generate();
            assert_eq!(
                el.num_vertices,
                preset.config.num_vertices(),
                "{}",
                preset.name
            );
            assert!(!el.edges.is_empty(), "{} generated no edges", preset.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(TableIPreset::by_name("friendster").is_some());
        assert!(TableIPreset::by_name("nlpkkt240").is_some());
        assert!(TableIPreset::by_name("does-not-exist").is_none());
    }

    #[test]
    fn representative_six_exist_and_cover_three_classes() {
        let six = TableIPreset::representative_six();
        assert_eq!(six.len(), 6);
        let classes: std::collections::HashSet<_> =
            six.iter().map(|p| format!("{:?}", p.class)).collect();
        assert!(classes.len() >= 3);
    }

    #[test]
    fn names_are_unique() {
        let presets = all_presets();
        let mut names: Vec<_> = presets.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), presets.len());
    }

    #[test]
    fn config_generation_is_deterministic() {
        let cfg = TableIPreset::by_name("uk-2002").unwrap().config;
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn mesh_presets_have_uniform_degree() {
        let cfg = TableIPreset::by_name("InternalMesh1").unwrap().config;
        let csr = cfg.generate().to_csr();
        assert_eq!(csr.max_degree(), 26);
        assert!(csr.avg_degree() > 15.0);
    }
}
