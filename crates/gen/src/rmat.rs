//! R-MAT recursive matrix graph generator.
//!
//! The paper's synthetic power-law graphs (`rmat_22` … `rmat_28` and the Blue Waters
//! `RMAT` scaling graphs) follow the R-MAT model of Chakrabarti, Zhan and Faloutsos with
//! the Graph500 parameters `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`: each edge is placed
//! by recursively descending into one of the four quadrants of the adjacency matrix with
//! those probabilities. The result has a highly skewed degree distribution and a small
//! diameter — the properties that stress the partitioner's load balance.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::EdgeList;

/// Parameters of the R-MAT model.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average number of undirected edges per vertex.
    pub edge_factor: u64,
    /// Quadrant probability `a` (top-left).
    pub a: f64,
    /// Quadrant probability `b` (top-right).
    pub b: f64,
    /// Quadrant probability `c` (bottom-left).
    pub c: f64,
    /// RNG seed; the generator is fully deterministic given the seed.
    pub seed: u64,
}

impl RmatConfig {
    /// Graph500 reference parameters at the given scale and edge factor.
    pub fn graph500(scale: u32, edge_factor: u64, seed: u64) -> Self {
        RmatConfig {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed,
        }
    }
}

/// Generate an R-MAT edge list.
pub fn generate(config: &RmatConfig) -> EdgeList {
    let n = 1u64 << config.scale;
    let m = n.saturating_mul(config.edge_factor);
    let d = 1.0 - config.a - config.b - config.c;
    assert!(
        d >= 0.0 && config.a >= 0.0 && config.b >= 0.0 && config.c >= 0.0,
        "R-MAT quadrant probabilities must be non-negative and sum to at most 1"
    );

    // Generate in parallel chunks, each with an independent deterministic stream.
    let chunk = 1u64 << 16;
    let num_chunks = m.div_ceil(chunk);
    let edges: Vec<(u64, u64)> = (0..num_chunks)
        .into_par_iter()
        .flat_map_iter(|ci| {
            let mut rng = SmallRng::seed_from_u64(config.seed ^ (ci.wrapping_mul(0x9E37_79B9)));
            let count = chunk.min(m - ci * chunk);
            let cfg = *config;
            (0..count).map(move |_| sample_edge(&cfg, &mut rng))
        })
        .collect();

    EdgeList {
        num_vertices: n,
        edges,
    }
}

fn sample_edge(config: &RmatConfig, rng: &mut SmallRng) -> (u64, u64) {
    let mut u = 0u64;
    let mut v = 0u64;
    let ab = config.a + config.b;
    let abc = ab + config.c;
    for level in (0..config.scale).rev() {
        let r: f64 = rng.gen();
        // Add a little per-level noise, as in the Graph500 reference generator, to avoid
        // exact self-similarity artifacts.
        let bit = 1u64 << level;
        if r < config.a {
            // top-left: neither bit set
        } else if r < ab {
            v |= bit;
        } else if r < abc {
            u |= bit;
        } else {
            u |= bit;
            v |= bit;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_configuration() {
        let el = generate(&RmatConfig::graph500(10, 8, 1));
        assert_eq!(el.num_vertices, 1024);
        assert_eq!(el.edges.len(), 1024 * 8);
        assert!(el.edges.iter().all(|&(u, v)| u < 1024 && v < 1024));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = generate(&RmatConfig::graph500(8, 4, 7));
        let b = generate(&RmatConfig::graph500(8, 4, 7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&RmatConfig::graph500(8, 4, 7));
        let b = generate(&RmatConfig::graph500(8, 4, 8));
        assert_ne!(a, b);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // R-MAT graphs have a much larger max degree than an Erdős–Rényi graph of the
        // same size; check the skew qualitatively.
        let el = generate(&RmatConfig::graph500(12, 8, 3));
        let csr = el.to_csr();
        let avg = csr.avg_degree();
        assert!(
            csr.max_degree() as f64 > avg * 8.0,
            "expected a skewed degree distribution (max {} vs avg {avg})",
            csr.max_degree()
        );
    }

    #[test]
    fn zero_edge_factor_gives_empty_graph() {
        let el = generate(&RmatConfig::graph500(6, 0, 1));
        assert!(el.edges.is_empty());
        assert_eq!(el.num_vertices, 64);
    }
}
