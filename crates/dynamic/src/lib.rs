//! # xtrapulp-dynamic
//!
//! The dynamic-graph subsystem: graphs that mutate between partitioning requests, and
//! repartitioning that is *incremental* instead of from-scratch.
//!
//! Label propagation — the core of XtraPuLP and PuLP — can be warm-started from any part
//! vector, so a graph that changed slightly should not pay a full repartition: seed the
//! labels from the previous epoch, assign only the new vertices greedily, and run a
//! short refinement schedule (`PartitionParams::warm_outer_iters` outer rounds instead
//! of `outer_iters`). This crate provides the pieces around that property:
//!
//! * [`UpdateBatch`] — a validated, deduplicated batch of mutations (edge insertions and
//!   deletions, vertex additions) with typed [`UpdateError`]s for self loops,
//!   out-of-range endpoints, insert/delete conflicts, duplicate inserts against the live
//!   graph and deletions of missing edges.
//! * [`DynamicGraph`] — the mutable graph: an epoch counter over a
//!   [`Csr`](xtrapulp_graph::Csr) rebuilt incrementally through
//!   [`Csr::apply_delta`](xtrapulp_graph::Csr::apply_delta) (the distributed equivalent
//!   is [`DistGraph::apply_delta`](xtrapulp_graph::DistGraph::apply_delta)).
//! * [`seed_from_previous`] — extend the previous epoch's part vector over a delta's new
//!   vertices with [`UNASSIGNED`](xtrapulp_graph::UNASSIGNED) markers, ready for any
//!   [`WarmStartPartitioner`](xtrapulp::WarmStartPartitioner)
//!   (`try_pulp_partition_from`, `try_xtrapulp_partition_from`, or the multilevel
//!   refine-only drivers).
//!
//! The serving layer over this crate is `xtrapulp_api::DynamicSession`
//! (apply → repartition → report); `xtrapulp_gen::updates` generates realistic
//! timestamped mutation traces for benches and tests.
//!
//! ```
//! use xtrapulp::{try_pulp_partition, try_pulp_partition_from, PartitionParams};
//! use xtrapulp_dynamic::{seed_from_previous, DynamicGraph, UpdateBatch};
//! use xtrapulp_gen::{GraphConfig, GraphKind};
//!
//! let csr = GraphConfig::new(GraphKind::Rmat { scale: 10, edge_factor: 8 }, 42)
//!     .generate()
//!     .to_csr();
//! let params = PartitionParams::with_parts(8);
//! let mut graph = DynamicGraph::new(csr);
//! let mut parts = try_pulp_partition(graph.csr(), &params).unwrap();
//!
//! // The graph mutates: one new vertex, two new edges.
//! let mut batch = UpdateBatch::new();
//! batch.add_vertices(1);
//! let v = graph.num_vertices() as u64;
//! batch.insert_edge(v, 0).insert_edge(v, 1);
//! let delta = graph.validate(&batch).unwrap();
//! graph.apply_validated(&delta);
//!
//! // Warm-start repartition: previous labels seed the run, the new vertex is assigned
//! // greedily, and only a short refinement schedule runs.
//! let seed = seed_from_previous(&parts, &delta);
//! parts = try_pulp_partition_from(graph.csr(), &params, &seed).unwrap();
//! assert_eq!(parts.len(), graph.num_vertices());
//! ```

mod dynamic_graph;
mod update;

pub use dynamic_graph::{seed_from_previous, DynamicGraph, UpdateSummary};
pub use update::{UpdateBatch, UpdateError};

// Re-exported so callers of this crate can name the graph-layer delta types without an
// extra dependency edge.
pub use xtrapulp_graph::{GraphDelta, UpdateOp};

#[cfg(test)]
mod tests {
    use super::*;
    use xtrapulp::metrics::PartitionQuality;
    use xtrapulp::{try_pulp_partition, try_pulp_partition_from, PartitionParams};
    use xtrapulp_gen::{GraphConfig, GraphKind};

    fn social_graph() -> xtrapulp_graph::Csr {
        GraphConfig::new(
            GraphKind::BarabasiAlbert {
                num_vertices: 1500,
                edges_per_vertex: 6,
            },
            9,
        )
        .generate()
        .to_csr()
    }

    #[test]
    fn warm_start_from_empty_delta_reproduces_cold_quality_envelope() {
        // The acceptance parity check: warm-starting from a trivial (empty-delta) update
        // must land in the from-scratch cut-quality envelope.
        let csr = social_graph();
        let params = PartitionParams {
            num_parts: 8,
            seed: 4,
            ..Default::default()
        };
        let cold = try_pulp_partition(&csr, &params).unwrap();
        let cold_q = PartitionQuality::evaluate(&csr, &cold, 8);

        let mut graph = DynamicGraph::new(csr.clone());
        let delta = graph.validate(&UpdateBatch::new()).unwrap();
        assert!(delta.is_empty());
        graph.apply_validated(&delta);
        let warm =
            try_pulp_partition_from(graph.csr(), &params, &seed_from_previous(&cold, &delta))
                .unwrap();
        let warm_q = PartitionQuality::evaluate(graph.csr(), &warm, 8);

        assert!(
            warm_q.edge_cut as f64 <= cold_q.edge_cut as f64 * 1.05,
            "warm cut {} must stay within 5% of cold cut {}",
            warm_q.edge_cut,
            cold_q.edge_cut
        );
        assert!(
            warm_q.vertex_imbalance <= (1.0 + params.vertex_imbalance) * 1.02,
            "warm imbalance {} must respect the configured tolerance",
            warm_q.vertex_imbalance
        );
    }

    #[test]
    fn warm_start_results_are_deterministic_across_repeated_runs() {
        let csr = social_graph();
        let params = PartitionParams {
            num_parts: 4,
            seed: 21,
            ..Default::default()
        };
        let cold = try_pulp_partition(&csr, &params).unwrap();

        let run = || {
            let mut graph = DynamicGraph::new(csr.clone());
            let mut batch = UpdateBatch::new();
            batch.add_vertices(2);
            let n = csr.num_vertices() as u64;
            batch
                .insert_edge(n, 0)
                .insert_edge(n, 17)
                .insert_edge(n + 1, n)
                .delete_edge(0, 1);
            let delta = graph.validate(&batch).unwrap();
            graph.apply_validated(&delta);
            try_pulp_partition_from(graph.csr(), &params, &seed_from_previous(&cold, &delta))
                .unwrap()
        };
        let a = run();
        let b = run();
        let c = run();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
}
