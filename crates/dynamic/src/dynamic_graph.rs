//! The mutable graph: a [`Csr`] plus an epoch counter, advanced by validated update
//! batches.

use xtrapulp_graph::{Csr, GlobalId, GraphDelta, UNASSIGNED};

use crate::update::{UpdateBatch, UpdateError};

/// What one applied batch did to the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateSummary {
    /// The epoch the graph is at after the batch (epoch 0 is the initial graph).
    pub epoch: u64,
    /// Vertices appended by the batch.
    pub vertices_added: u64,
    /// Undirected edges inserted.
    pub edges_inserted: u64,
    /// Undirected edges deleted.
    pub edges_deleted: u64,
    /// Pre-existing vertices incident to an inserted or deleted edge — the set a
    /// warm-started repartition revisits.
    pub vertices_touched: u64,
}

/// A graph that evolves through validated update batches.
///
/// `DynamicGraph` owns the authoritative [`Csr`] and an epoch counter. Each
/// [`apply`](DynamicGraph::apply) validates the batch *against the live topology* —
/// inserting an existing edge and deleting a missing one are typed errors, not silent
/// no-ops — then rebuilds the CSR incrementally via
/// [`Csr::apply_delta`] and bumps the epoch. A rejected batch leaves the graph
/// untouched.
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    csr: Csr,
    epoch: u64,
}

impl DynamicGraph {
    /// Wrap an initial graph at epoch 0.
    pub fn new(csr: Csr) -> DynamicGraph {
        DynamicGraph { csr, epoch: 0 }
    }

    /// The current topology.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Number of batches applied so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current vertex count.
    pub fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    /// Current undirected edge count.
    pub fn num_edges(&self) -> u64 {
        self.csr.num_edges()
    }

    /// Validate a batch against the live topology and compile it to a [`GraphDelta`]
    /// without applying it. Used by serving layers that must update derived state (e.g.
    /// per-rank distributed graphs) from the same delta they apply here.
    pub fn validate(&self, batch: &UpdateBatch) -> Result<GraphDelta, UpdateError> {
        let delta = batch.compile(self.csr.num_vertices() as u64)?;
        // The compile step guarantees endpoints are in range; check edge existence
        // against the CSR (rows are sorted, so membership is a binary search).
        let has_edge = |u: GlobalId, v: GlobalId| -> bool {
            u < self.csr.num_vertices() as u64 && self.csr.neighbors(u).binary_search(&v).is_ok()
        };
        for &(u, v) in delta.insert_arcs() {
            if u < v && has_edge(u, v) {
                return Err(UpdateError::EdgeAlreadyExists { u, v });
            }
        }
        for &(u, v) in delta.delete_arcs() {
            if u < v && !has_edge(u, v) {
                return Err(UpdateError::MissingEdge { u, v });
            }
        }
        Ok(delta)
    }

    /// Validate and apply one batch, advancing the epoch.
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<UpdateSummary, UpdateError> {
        let delta = self.validate(batch)?;
        Ok(self.apply_validated(&delta))
    }

    /// Apply an already-validated delta (from [`validate`](DynamicGraph::validate)),
    /// advancing the epoch.
    pub fn apply_validated(&mut self, delta: &GraphDelta) -> UpdateSummary {
        let base_n = self.csr.num_vertices() as u64;
        let touched = delta
            .touched_vertices()
            .iter()
            .filter(|&&v| v < base_n)
            .count() as u64;
        self.csr = self.csr.apply_delta(delta);
        self.epoch += 1;
        UpdateSummary {
            epoch: self.epoch,
            vertices_added: delta.added_vertices(),
            edges_inserted: delta.num_insert_edges(),
            edges_deleted: delta.num_delete_edges(),
            vertices_touched: touched,
        }
    }
}

/// Extend the previous epoch's part vector to cover a delta's new vertices, marking them
/// [`UNASSIGNED`] so a warm-started partitioner assigns them greedily.
pub fn seed_from_previous(previous: &[i32], delta: &GraphDelta) -> Vec<i32> {
    let mut seed = previous.to_vec();
    seed.resize(delta.new_n() as usize, UNASSIGNED);
    seed
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrapulp_graph::csr_from_edges;

    fn two_triangles() -> Csr {
        csr_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
    }

    #[test]
    fn apply_advances_epoch_and_topology() {
        let mut g = DynamicGraph::new(two_triangles());
        assert_eq!(g.epoch(), 0);
        let mut batch = UpdateBatch::new();
        batch.delete_edge(2, 3).add_vertices(1).insert_edge(6, 0);
        let summary = g.apply(&batch).unwrap();
        assert_eq!(summary.epoch, 1);
        assert_eq!(summary.vertices_added, 1);
        assert_eq!(summary.edges_inserted, 1);
        assert_eq!(summary.edges_deleted, 1);
        // Touched pre-existing vertices: 2 and 3 (deleted edge) and 0 (new edge); vertex
        // 6 is new, not "touched".
        assert_eq!(summary.vertices_touched, 3);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 7);
        assert_eq!(g.epoch(), 1);
    }

    #[test]
    fn deleting_a_nonexistent_edge_is_a_typed_error_and_leaves_the_graph_untouched() {
        let mut g = DynamicGraph::new(two_triangles());
        let before = g.csr().clone();
        let mut batch = UpdateBatch::new();
        batch.delete_edge(0, 5);
        assert_eq!(
            g.apply(&batch),
            Err(UpdateError::MissingEdge { u: 0, v: 5 })
        );
        assert_eq!(g.csr(), &before);
        assert_eq!(g.epoch(), 0);
    }

    #[test]
    fn inserting_an_existing_edge_is_a_typed_error() {
        let mut g = DynamicGraph::new(two_triangles());
        let mut batch = UpdateBatch::new();
        batch.insert_edge(1, 0);
        assert_eq!(
            g.apply(&batch),
            Err(UpdateError::EdgeAlreadyExists { u: 0, v: 1 })
        );
    }

    #[test]
    fn vertex_additions_grow_the_graph_with_isolated_vertices() {
        let mut g = DynamicGraph::new(two_triangles());
        let mut batch = UpdateBatch::new();
        batch.add_vertices(3);
        let summary = g.apply(&batch).unwrap();
        assert_eq!(summary.vertices_added, 3);
        assert_eq!(summary.vertices_touched, 0);
        assert_eq!(g.num_vertices(), 9);
        assert_eq!(g.num_edges(), 7);
        for v in 6..9 {
            assert_eq!(g.csr().degree(v), 0);
        }
    }

    #[test]
    fn batches_chain_across_epochs() {
        let mut g = DynamicGraph::new(two_triangles());
        let mut b1 = UpdateBatch::new();
        b1.add_vertices(1).insert_edge(6, 2).insert_edge(6, 3);
        g.apply(&b1).unwrap();
        let mut b2 = UpdateBatch::new();
        b2.delete_edge(6, 2);
        g.apply(&b2).unwrap();
        assert_eq!(g.epoch(), 2);
        assert_eq!(g.csr().neighbors(6), &[3]);
    }

    #[test]
    fn seed_from_previous_marks_new_vertices_unassigned() {
        let g = DynamicGraph::new(two_triangles());
        let delta = {
            let mut b = UpdateBatch::new();
            b.add_vertices(2).insert_edge(6, 0);
            g.validate(&b).unwrap()
        };
        let seed = seed_from_previous(&[0, 0, 0, 1, 1, 1], &delta);
        assert_eq!(seed, vec![0, 0, 0, 1, 1, 1, UNASSIGNED, UNASSIGNED]);
    }
}
