//! User-facing update batches with strict, typed validation.
//!
//! An [`UpdateBatch`] collects raw mutations ([`UpdateOp`]) in submission order and
//! compiles them into a normalised [`GraphDelta`] with full validation: self loops and
//! out-of-range endpoints are rejected (not silently dropped, as the forgiving
//! graph-layer normalisation would), an edge both inserted and deleted in one batch is a
//! conflict, and duplicate operations are deduplicated silently.

use std::collections::HashSet;
use std::fmt;

use xtrapulp_graph::{GlobalId, GraphDelta, UpdateOp};

/// Why an update batch was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// An edge operation named the same vertex twice; the partitioners work on simple
    /// graphs, so self loops are rejected at the boundary.
    SelfLoop {
        /// The offending vertex.
        vertex: GlobalId,
    },
    /// An edge operation referenced a vertex that does not exist, even after the batch's
    /// vertex additions.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: GlobalId,
        /// The vertex count after the batch's additions (valid ids are `0..limit`).
        limit: u64,
    },
    /// The same edge is both inserted and deleted within one batch.
    ConflictingOps {
        /// Lower endpoint.
        u: GlobalId,
        /// Higher endpoint.
        v: GlobalId,
    },
    /// An insertion named an edge the graph already contains.
    EdgeAlreadyExists {
        /// Lower endpoint.
        u: GlobalId,
        /// Higher endpoint.
        v: GlobalId,
    },
    /// A deletion named an edge the graph does not contain.
    MissingEdge {
        /// Lower endpoint.
        u: GlobalId,
        /// Higher endpoint.
        v: GlobalId,
    },
    /// A serving layer cannot apply the batch's vertex additions. No built-in layer
    /// raises this any more — `Explicit` distributions now grow by hashing the new
    /// tail vertices to owners (`Distribution::grown`) — but the variant remains for
    /// custom serving layers with growth restrictions of their own.
    UnsupportedGrowth {
        /// Why growth is unsupported here.
        detail: String,
    },
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::SelfLoop { vertex } => {
                write!(f, "self loop on vertex {vertex} is not allowed")
            }
            UpdateError::VertexOutOfRange { vertex, limit } => {
                write!(f, "vertex {vertex} is out of range (graph has {limit} vertices after the batch's additions)")
            }
            UpdateError::ConflictingOps { u, v } => {
                write!(
                    f,
                    "edge {{{u}, {v}}} is both inserted and deleted in one batch"
                )
            }
            UpdateError::EdgeAlreadyExists { u, v } => {
                write!(f, "cannot insert edge {{{u}, {v}}}: it already exists")
            }
            UpdateError::MissingEdge { u, v } => {
                write!(f, "cannot delete edge {{{u}, {v}}}: it does not exist")
            }
            UpdateError::UnsupportedGrowth { detail } => {
                write!(f, "cannot grow the graph: {detail}")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

/// One batch of graph mutations, collected in submission order and compiled into a
/// [`GraphDelta`] with validation and deduplication.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    ops: Vec<UpdateOp>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> UpdateBatch {
        UpdateBatch::default()
    }

    /// Collect a batch from an op stream (e.g. one batch of a generated update trace).
    pub fn from_ops(ops: impl IntoIterator<Item = UpdateOp>) -> UpdateBatch {
        UpdateBatch {
            ops: ops.into_iter().collect(),
        }
    }

    /// Queue an undirected edge insertion.
    pub fn insert_edge(&mut self, u: GlobalId, v: GlobalId) -> &mut Self {
        self.ops.push(UpdateOp::InsertEdge(u, v));
        self
    }

    /// Queue an undirected edge deletion.
    pub fn delete_edge(&mut self, u: GlobalId, v: GlobalId) -> &mut Self {
        self.ops.push(UpdateOp::DeleteEdge(u, v));
        self
    }

    /// Queue `count` new vertices (they receive the next free global ids).
    pub fn add_vertices(&mut self, count: u64) -> &mut Self {
        self.ops.push(UpdateOp::AddVertices(count));
        self
    }

    /// Queue one raw op.
    pub fn push(&mut self, op: UpdateOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// The queued ops, in submission order.
    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }

    /// Number of queued ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no ops are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Validate the batch against a graph with `base_n` vertices and compile it into a
    /// normalised [`GraphDelta`].
    ///
    /// Rejects self loops, endpoints outside `0..base_n + added` (vertex additions apply
    /// batch-wide, so an edge may reference a vertex added later in the same batch) and
    /// insert/delete conflicts. Duplicate inserts and duplicate deletes collapse
    /// silently. Whether the named edges actually exist is checked against the live
    /// graph by [`DynamicGraph::apply`](crate::DynamicGraph::apply), not here.
    pub fn compile(&self, base_n: u64) -> Result<GraphDelta, UpdateError> {
        let added: u64 = self
            .ops
            .iter()
            .map(|op| match op {
                UpdateOp::AddVertices(c) => *c,
                _ => 0,
            })
            .sum();
        let new_n = base_n + added;

        let check = |u: GlobalId, v: GlobalId| -> Result<(GlobalId, GlobalId), UpdateError> {
            if u == v {
                return Err(UpdateError::SelfLoop { vertex: u });
            }
            for x in [u, v] {
                if x >= new_n {
                    return Err(UpdateError::VertexOutOfRange {
                        vertex: x,
                        limit: new_n,
                    });
                }
            }
            Ok((u.min(v), u.max(v)))
        };

        let mut inserts: HashSet<(GlobalId, GlobalId)> = HashSet::new();
        let mut deletes: HashSet<(GlobalId, GlobalId)> = HashSet::new();
        for op in &self.ops {
            match *op {
                UpdateOp::InsertEdge(u, v) => {
                    let key = check(u, v)?;
                    if deletes.contains(&key) {
                        return Err(UpdateError::ConflictingOps { u: key.0, v: key.1 });
                    }
                    inserts.insert(key);
                }
                UpdateOp::DeleteEdge(u, v) => {
                    let key = check(u, v)?;
                    if inserts.contains(&key) {
                        return Err(UpdateError::ConflictingOps { u: key.0, v: key.1 });
                    }
                    deletes.insert(key);
                }
                UpdateOp::AddVertices(_) => {}
            }
        }
        let inserts: Vec<_> = inserts.into_iter().collect();
        let deletes: Vec<_> = deletes.into_iter().collect();
        Ok(GraphDelta::new(base_n, added, &inserts, &deletes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_ops_in_order() {
        let mut b = UpdateBatch::new();
        b.insert_edge(0, 1).add_vertices(2).delete_edge(3, 4);
        assert_eq!(b.len(), 3);
        assert_eq!(
            b.ops(),
            &[
                UpdateOp::InsertEdge(0, 1),
                UpdateOp::AddVertices(2),
                UpdateOp::DeleteEdge(3, 4),
            ]
        );
    }

    #[test]
    fn duplicate_inserts_and_deletes_are_deduplicated() {
        let mut b = UpdateBatch::new();
        b.insert_edge(0, 1)
            .insert_edge(1, 0)
            .insert_edge(0, 1)
            .delete_edge(2, 3)
            .delete_edge(3, 2);
        let delta = b.compile(4).unwrap();
        assert_eq!(delta.num_insert_edges(), 1);
        assert_eq!(delta.num_delete_edges(), 1);
    }

    #[test]
    fn self_loops_are_rejected() {
        let mut b = UpdateBatch::new();
        b.insert_edge(2, 2);
        assert_eq!(b.compile(4), Err(UpdateError::SelfLoop { vertex: 2 }));
        let mut b = UpdateBatch::new();
        b.delete_edge(0, 0);
        assert_eq!(b.compile(4), Err(UpdateError::SelfLoop { vertex: 0 }));
    }

    #[test]
    fn out_of_range_endpoints_are_rejected_with_growth_applied() {
        let mut b = UpdateBatch::new();
        b.insert_edge(0, 5);
        assert_eq!(
            b.compile(4),
            Err(UpdateError::VertexOutOfRange {
                vertex: 5,
                limit: 4
            })
        );
        // The same edge is fine once the batch also adds enough vertices, even though
        // the addition is queued after the edge.
        let mut b = UpdateBatch::new();
        b.insert_edge(0, 5).add_vertices(2);
        let delta = b.compile(4).unwrap();
        assert_eq!(delta.new_n(), 6);
        assert_eq!(delta.num_insert_edges(), 1);
    }

    #[test]
    fn insert_delete_conflicts_are_rejected_both_ways() {
        let mut b = UpdateBatch::new();
        b.insert_edge(0, 1).delete_edge(1, 0);
        assert_eq!(
            b.compile(4),
            Err(UpdateError::ConflictingOps { u: 0, v: 1 })
        );
        let mut b = UpdateBatch::new();
        b.delete_edge(0, 1).insert_edge(1, 0);
        assert_eq!(
            b.compile(4),
            Err(UpdateError::ConflictingOps { u: 0, v: 1 })
        );
    }

    #[test]
    fn empty_batch_compiles_to_empty_delta() {
        let delta = UpdateBatch::new().compile(7).unwrap();
        assert!(delta.is_empty());
        assert_eq!(delta.new_n(), 7);
    }

    #[test]
    fn error_messages_name_the_offenders() {
        assert!(UpdateError::SelfLoop { vertex: 9 }
            .to_string()
            .contains('9'));
        assert!(UpdateError::MissingEdge { u: 3, v: 4 }
            .to_string()
            .contains("{3, 4}"));
        assert!(UpdateError::VertexOutOfRange {
            vertex: 11,
            limit: 10
        }
        .to_string()
        .contains("11"));
    }
}
