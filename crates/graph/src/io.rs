//! Edge-list and update-log input/output.
//!
//! The original XtraPuLP ingests graphs as binary edge lists; for convenience the
//! reproduction also supports a whitespace-separated text format (one `u v` pair per
//! line, `#`-prefixed comments allowed), which is the format most public graph corpora
//! (SNAP, KONECT) ship.
//!
//! Dynamic workloads additionally record *update logs*: timestamped mutation traces
//! ([`TimedOp`]) that can be replayed through the dynamic subsystem or the serving
//! layer's ingest queue. [`write_update_log`]/[`read_update_log`] auto-detect a compact
//! binary format (`.ulog`) and a human-readable text format (everything else), the
//! same scheme [`read_edge_list`] uses.

use std::fs::{self, File};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{GlobalId, TimedOp, UpdateOp};

/// Read a whitespace-separated text edge list. Lines beginning with `#` or `%` are
/// treated as comments; malformed lines produce an error.
pub fn read_text_edge_list(path: &Path) -> io::Result<Vec<(GlobalId, GlobalId)>> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut edges = Vec::new();
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<GlobalId> {
            tok.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {lineno}: expected two vertex ids"),
                )
            })?
            .parse::<GlobalId>()
            .map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {lineno}: bad vertex id: {e}"),
                )
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        if let Some(extra) = it.next() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "line {lineno}: expected exactly two vertex ids, found trailing token '{extra}'"
                ),
            ));
        }
        edges.push((u, v));
    }
    Ok(edges)
}

/// Write a text edge list (one `u v` pair per line).
pub fn write_text_edge_list(path: &Path, edges: &[(GlobalId, GlobalId)]) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for &(u, v) in edges {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Read a binary edge list: a little-endian stream of `u64` pairs.
pub fn read_binary_edge_list(path: &Path) -> io::Result<Vec<(GlobalId, GlobalId)>> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    if bytes.len() % 16 != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "binary edge list length is not a multiple of 16 bytes",
        ));
    }
    let mut edges = Vec::with_capacity(bytes.len() / 16);
    for chunk in bytes.chunks_exact(16) {
        let u = u64::from_le_bytes(chunk[0..8].try_into().unwrap());
        let v = u64::from_le_bytes(chunk[8..16].try_into().unwrap());
        edges.push((u, v));
    }
    Ok(edges)
}

/// Write a binary edge list: a little-endian stream of `u64` pairs.
pub fn write_binary_edge_list(path: &Path, edges: &[(GlobalId, GlobalId)]) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for &(u, v) in edges {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// The on-disk edge-list formats the suite understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeListFormat {
    /// Whitespace-separated `u v` pairs, `#`/`%` comments (SNAP/KONECT style).
    Text,
    /// A little-endian stream of `u64` pairs — the original XtraPuLP's native ingest
    /// format.
    Binary,
}

impl EdgeListFormat {
    /// Detect the format from a path's extension: `.bel`, `.bin` and `.bbin` are binary,
    /// everything else (`.el`, `.txt`, `.edges`, no extension, ...) is text.
    pub fn detect(path: &Path) -> EdgeListFormat {
        match path
            .extension()
            .and_then(|e| e.to_str())
            .map(|e| e.to_ascii_lowercase())
            .as_deref()
        {
            Some("bel") | Some("bin") | Some("bbin") => EdgeListFormat::Binary,
            _ => EdgeListFormat::Text,
        }
    }
}

/// Read an edge list, auto-detecting the format from the file extension (see
/// [`EdgeListFormat::detect`]).
pub fn read_edge_list(path: &Path) -> io::Result<Vec<(GlobalId, GlobalId)>> {
    match EdgeListFormat::detect(path) {
        EdgeListFormat::Text => read_text_edge_list(path),
        EdgeListFormat::Binary => read_binary_edge_list(path),
    }
}

/// Write an edge list in the format the file extension implies (see
/// [`EdgeListFormat::detect`]).
pub fn write_edge_list(path: &Path, edges: &[(GlobalId, GlobalId)]) -> io::Result<()> {
    match EdgeListFormat::detect(path) {
        EdgeListFormat::Text => write_text_edge_list(path, edges),
        EdgeListFormat::Binary => write_binary_edge_list(path, edges),
    }
}

// ------------------------------------------------------------------------------------
// Update logs
// ------------------------------------------------------------------------------------

/// The on-disk update-log formats the suite understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateLogFormat {
    /// One op per line: `<time> i <u> <v>` (insert), `<time> d <u> <v>` (delete),
    /// `<time> a <count>` (add vertices); `#`/`%` comments allowed.
    Text,
    /// Fixed 25-byte little-endian records: a 1-byte tag (`0` = add-vertices, `1` =
    /// insert, `2` = delete) followed by three `u64`s (time, then the two operands;
    /// add-vertices stores the count in the first operand and zero in the second).
    Binary,
}

impl UpdateLogFormat {
    /// Detect the format from a path's extension: `.ulog` is binary, everything else
    /// (`.tlog`, `.txt`, no extension, ...) is text.
    pub fn detect(path: &Path) -> UpdateLogFormat {
        match path
            .extension()
            .and_then(|e| e.to_str())
            .map(|e| e.to_ascii_lowercase())
            .as_deref()
        {
            Some("ulog") => UpdateLogFormat::Binary,
            _ => UpdateLogFormat::Text,
        }
    }
}

/// Byte length of one binary update-log record (tag + time + two operands).
const ULOG_RECORD: usize = 1 + 3 * 8;

/// Write an update log in the format the file extension implies (see
/// [`UpdateLogFormat::detect`]).
pub fn write_update_log(path: &Path, ops: &[TimedOp]) -> io::Result<()> {
    match UpdateLogFormat::detect(path) {
        UpdateLogFormat::Text => write_text_update_log(path, ops),
        UpdateLogFormat::Binary => write_binary_update_log(path, ops),
    }
}

/// Read an update log, auto-detecting the format from the file extension (see
/// [`UpdateLogFormat::detect`]).
pub fn read_update_log(path: &Path) -> io::Result<Vec<TimedOp>> {
    match UpdateLogFormat::detect(path) {
        UpdateLogFormat::Text => read_text_update_log(path),
        UpdateLogFormat::Binary => read_binary_update_log(path),
    }
}

/// Write a text update log (see [`UpdateLogFormat::Text`] for the line grammar).
pub fn write_text_update_log(path: &Path, ops: &[TimedOp]) -> io::Result<()> {
    // Atomic: a crash mid-write must not leave a torn log at the final path.
    let tmp = partial_path(path);
    {
        let file = File::create(&tmp)?;
        let mut w = BufWriter::new(file);
        for t in ops {
            match t.op {
                UpdateOp::InsertEdge(u, v) => writeln!(w, "{} i {u} {v}", t.time)?,
                UpdateOp::DeleteEdge(u, v) => writeln!(w, "{} d {u} {v}", t.time)?,
                UpdateOp::AddVertices(c) => writeln!(w, "{} a {c}", t.time)?,
            }
        }
        w.flush()?;
    }
    fs::rename(&tmp, path)
}

/// Read a text update log written by [`write_text_update_log`]. Malformed lines are
/// errors naming the line number; `#`/`%` comments and blank lines are skipped.
pub fn read_text_update_log(path: &Path) -> io::Result<Vec<TimedOp>> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut ops = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let bad = |what: &str| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {lineno}: {what}"))
        };
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>, name: &str| -> io::Result<u64> {
            tok.ok_or_else(|| bad(&format!("missing {name}")))?
                .parse::<u64>()
                .map_err(|e| bad(&format!("bad {name}: {e}")))
        };
        let time = parse(it.next(), "timestamp")?;
        let tag = it.next().ok_or_else(|| bad("missing op tag"))?;
        let op = match tag {
            "i" => UpdateOp::InsertEdge(
                parse(it.next(), "source vertex")?,
                parse(it.next(), "target vertex")?,
            ),
            "d" => UpdateOp::DeleteEdge(
                parse(it.next(), "source vertex")?,
                parse(it.next(), "target vertex")?,
            ),
            "a" => UpdateOp::AddVertices(parse(it.next(), "vertex count")?),
            tag => return Err(bad(&format!("unknown op tag '{tag}' (expected i/d/a)"))),
        };
        if let Some(extra) = it.next() {
            return Err(bad(&format!("trailing token '{extra}'")));
        }
        ops.push(TimedOp { time, op });
    }
    Ok(ops)
}

/// Write a binary update log (see [`UpdateLogFormat::Binary`] for the record layout).
pub fn write_binary_update_log(path: &Path, ops: &[TimedOp]) -> io::Result<()> {
    // Atomic, like the text writer: tmp sibling + rename.
    let tmp = partial_path(path);
    {
        let file = File::create(&tmp)?;
        let mut w = BufWriter::new(file);
        for t in ops {
            let (tag, a, b): (u8, u64, u64) = match t.op {
                UpdateOp::AddVertices(c) => (0, c, 0),
                UpdateOp::InsertEdge(u, v) => (1, u, v),
                UpdateOp::DeleteEdge(u, v) => (2, u, v),
            };
            w.write_all(&[tag])?;
            w.write_all(&t.time.to_le_bytes())?;
            w.write_all(&a.to_le_bytes())?;
            w.write_all(&b.to_le_bytes())?;
        }
        w.flush()?;
    }
    fs::rename(&tmp, path)
}

/// The temp sibling an atomic writer stages into before the rename. `.partial`
/// is appended to the whole file name (not swapped in as an extension), so the
/// staged file can never satisfy a format auto-detection pass.
fn partial_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".partial");
    path.with_file_name(name)
}

/// Read a binary update log written by [`write_binary_update_log`]. Truncated files
/// and unknown op tags are errors.
pub fn read_binary_update_log(path: &Path) -> io::Result<Vec<TimedOp>> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    if bytes.len() % ULOG_RECORD != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("binary update log length is not a multiple of {ULOG_RECORD} bytes"),
        ));
    }
    let mut ops = Vec::with_capacity(bytes.len() / ULOG_RECORD);
    for (idx, rec) in bytes.chunks_exact(ULOG_RECORD).enumerate() {
        let word = |i: usize| -> u64 {
            u64::from_le_bytes(rec[1 + 8 * i..1 + 8 * (i + 1)].try_into().unwrap())
        };
        let (time, a, b) = (word(0), word(1), word(2));
        let op = match rec[0] {
            0 => UpdateOp::AddVertices(a),
            1 => UpdateOp::InsertEdge(a, b),
            2 => UpdateOp::DeleteEdge(a, b),
            tag => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("record {idx}: unknown op tag {tag}"),
                ))
            }
        };
        ops.push(TimedOp { time, op });
    }
    Ok(ops)
}

/// Write a partition vector (one part id per line, line index = global vertex id), the
/// format METIS-family tools use for partition files.
pub fn write_partition(path: &Path, parts: &[i32]) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for &p in parts {
        writeln!(w, "{p}")?;
    }
    w.flush()
}

/// Read a partition vector written by [`write_partition`].
pub fn read_partition(path: &Path) -> io::Result<Vec<i32>> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut parts = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        parts.push(trimmed.parse::<i32>().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: bad part id: {e}", lineno + 1),
            )
        })?);
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("xtrapulp-graph-io-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn text_edge_list_round_trip() {
        let path = temp_path("text.el");
        let edges = vec![(0u64, 1u64), (1, 2), (5, 3)];
        write_text_edge_list(&path, &edges).unwrap();
        let back = read_text_edge_list(&path).unwrap();
        assert_eq!(back, edges);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_edge_list_skips_comments_and_blank_lines() {
        let path = temp_path("comments.el");
        std::fs::write(&path, "# header\n\n0 1\n% another comment\n2 3\n").unwrap();
        let back = read_text_edge_list(&path).unwrap();
        assert_eq!(back, vec![(0, 1), (2, 3)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_edge_list_rejects_malformed_lines() {
        let path = temp_path("bad.el");
        std::fs::write(&path, "0 1\n2\n").unwrap();
        assert!(read_text_edge_list(&path).is_err());
        std::fs::write(&path, "0 x\n").unwrap();
        assert!(read_text_edge_list(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_edge_list_rejects_trailing_tokens_with_line_number() {
        let path = temp_path("trailing.el");
        std::fs::write(&path, "0 1\n2 3 4\n").unwrap();
        let err = read_text_edge_list(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "missing line number: {msg}");
        assert!(msg.contains("'4'"), "missing offending token: {msg}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn format_detection_by_extension() {
        use std::path::Path;
        assert_eq!(
            EdgeListFormat::detect(Path::new("graph.bel")),
            EdgeListFormat::Binary
        );
        assert_eq!(
            EdgeListFormat::detect(Path::new("graph.BIN")),
            EdgeListFormat::Binary
        );
        assert_eq!(
            EdgeListFormat::detect(Path::new("graph.el")),
            EdgeListFormat::Text
        );
        assert_eq!(
            EdgeListFormat::detect(Path::new("graph")),
            EdgeListFormat::Text
        );
    }

    #[test]
    fn auto_detected_round_trips_in_both_formats() {
        let edges = vec![(0u64, 1u64), (1, 2), (5, 3)];
        for name in ["auto.el", "auto.bel"] {
            let path = temp_path(name);
            write_edge_list(&path, &edges).unwrap();
            assert_eq!(read_edge_list(&path).unwrap(), edges, "{name}");
            std::fs::remove_file(&path).ok();
        }
        // The two formats produce different bytes but identical edge lists.
        let text = temp_path("auto2.el");
        let bin = temp_path("auto2.bel");
        write_edge_list(&text, &edges).unwrap();
        write_edge_list(&bin, &edges).unwrap();
        assert_ne!(std::fs::read(&text).unwrap(), std::fs::read(&bin).unwrap());
        std::fs::remove_file(&text).ok();
        std::fs::remove_file(&bin).ok();
    }

    #[test]
    fn binary_edge_list_round_trip() {
        let path = temp_path("bin.el");
        let edges = vec![(0u64, 1u64), (u64::MAX, 7), (123456789, 987654321)];
        write_binary_edge_list(&path, &edges).unwrap();
        let back = read_binary_edge_list(&path).unwrap();
        assert_eq!(back, edges);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_edge_list_rejects_truncated_files() {
        let path = temp_path("trunc.el");
        std::fs::write(&path, [0u8; 20]).unwrap();
        assert!(read_binary_edge_list(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    fn sample_ops() -> Vec<TimedOp> {
        vec![
            TimedOp {
                time: 1,
                op: UpdateOp::AddVertices(3),
            },
            TimedOp {
                time: 2,
                op: UpdateOp::InsertEdge(0, 5),
            },
            TimedOp {
                time: 3,
                op: UpdateOp::DeleteEdge(7, 2),
            },
            TimedOp {
                time: u64::MAX,
                op: UpdateOp::InsertEdge(u64::MAX - 1, 0),
            },
        ]
    }

    #[test]
    fn update_log_round_trips_in_both_formats() {
        let ops = sample_ops();
        for name in ["trace.tlog", "trace.ulog"] {
            let path = temp_path(name);
            write_update_log(&path, &ops).unwrap();
            assert_eq!(read_update_log(&path).unwrap(), ops, "{name}");
            std::fs::remove_file(&path).ok();
        }
        // `.ulog` is the binary format: the two encodings differ on disk.
        let text = temp_path("trace2.tlog");
        let bin = temp_path("trace2.ulog");
        write_update_log(&text, &ops).unwrap();
        write_update_log(&bin, &ops).unwrap();
        assert_ne!(std::fs::read(&text).unwrap(), std::fs::read(&bin).unwrap());
        assert_eq!(std::fs::read(&bin).unwrap().len(), ops.len() * 25);
        std::fs::remove_file(&text).ok();
        std::fs::remove_file(&bin).ok();
    }

    #[test]
    fn update_log_format_detection_by_extension() {
        assert_eq!(
            UpdateLogFormat::detect(Path::new("trace.ulog")),
            UpdateLogFormat::Binary
        );
        assert_eq!(
            UpdateLogFormat::detect(Path::new("trace.ULOG")),
            UpdateLogFormat::Binary
        );
        assert_eq!(
            UpdateLogFormat::detect(Path::new("trace.tlog")),
            UpdateLogFormat::Text
        );
        assert_eq!(
            UpdateLogFormat::detect(Path::new("trace")),
            UpdateLogFormat::Text
        );
    }

    #[test]
    fn text_update_log_skips_comments_and_rejects_malformed_lines() {
        let path = temp_path("bad.tlog");
        std::fs::write(&path, "# header\n1 a 2\n\n% note\n2 i 0 1\n").unwrap();
        let ops = read_text_update_log(&path).unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].op, UpdateOp::AddVertices(2));
        for (content, needle) in [
            ("1 x 0 1\n", "unknown op tag"),
            ("1 i 0\n", "missing target vertex"),
            ("1 i 0 1 9\n", "trailing token"),
            ("z i 0 1\n", "bad timestamp"),
        ] {
            std::fs::write(&path, content).unwrap();
            let err = read_text_update_log(&path).unwrap_err().to_string();
            assert!(err.contains("line 1"), "{content:?}: {err}");
            assert!(err.contains(needle), "{content:?}: {err}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_update_log_rejects_truncation_and_bad_tags() {
        let path = temp_path("bad.ulog");
        std::fs::write(&path, [0u8; 26]).unwrap();
        assert!(read_binary_update_log(&path).is_err());
        let mut rec = [0u8; 25];
        rec[0] = 9; // unknown tag
        std::fs::write(&path, rec).unwrap();
        let err = read_binary_update_log(&path).unwrap_err().to_string();
        assert!(err.contains("unknown op tag"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partition_round_trip() {
        let path = temp_path("parts.txt");
        let parts = vec![0, 1, 2, 1, 0, 3];
        write_partition(&path, &parts).unwrap();
        assert_eq!(read_partition(&path).unwrap(), parts);
        std::fs::remove_file(&path).ok();
    }
}
