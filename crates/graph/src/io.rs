//! Edge-list input/output.
//!
//! The original XtraPuLP ingests graphs as binary edge lists; for convenience the
//! reproduction also supports a whitespace-separated text format (one `u v` pair per
//! line, `#`-prefixed comments allowed), which is the format most public graph corpora
//! (SNAP, KONECT) ship.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::GlobalId;

/// Read a whitespace-separated text edge list. Lines beginning with `#` or `%` are
/// treated as comments; malformed lines produce an error.
pub fn read_text_edge_list(path: &Path) -> io::Result<Vec<(GlobalId, GlobalId)>> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut edges = Vec::new();
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<GlobalId> {
            tok.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {lineno}: expected two vertex ids"),
                )
            })?
            .parse::<GlobalId>()
            .map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {lineno}: bad vertex id: {e}"),
                )
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        edges.push((u, v));
    }
    Ok(edges)
}

/// Write a text edge list (one `u v` pair per line).
pub fn write_text_edge_list(path: &Path, edges: &[(GlobalId, GlobalId)]) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for &(u, v) in edges {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Read a binary edge list: a little-endian stream of `u64` pairs.
pub fn read_binary_edge_list(path: &Path) -> io::Result<Vec<(GlobalId, GlobalId)>> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    if bytes.len() % 16 != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "binary edge list length is not a multiple of 16 bytes",
        ));
    }
    let mut edges = Vec::with_capacity(bytes.len() / 16);
    for chunk in bytes.chunks_exact(16) {
        let u = u64::from_le_bytes(chunk[0..8].try_into().unwrap());
        let v = u64::from_le_bytes(chunk[8..16].try_into().unwrap());
        edges.push((u, v));
    }
    Ok(edges)
}

/// Write a binary edge list: a little-endian stream of `u64` pairs.
pub fn write_binary_edge_list(path: &Path, edges: &[(GlobalId, GlobalId)]) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for &(u, v) in edges {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Write a partition vector (one part id per line, line index = global vertex id), the
/// format METIS-family tools use for partition files.
pub fn write_partition(path: &Path, parts: &[i32]) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for &p in parts {
        writeln!(w, "{p}")?;
    }
    w.flush()
}

/// Read a partition vector written by [`write_partition`].
pub fn read_partition(path: &Path) -> io::Result<Vec<i32>> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut parts = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        parts.push(trimmed.parse::<i32>().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: bad part id: {e}", lineno + 1),
            )
        })?);
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("xtrapulp-graph-io-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn text_edge_list_round_trip() {
        let path = temp_path("text.el");
        let edges = vec![(0u64, 1u64), (1, 2), (5, 3)];
        write_text_edge_list(&path, &edges).unwrap();
        let back = read_text_edge_list(&path).unwrap();
        assert_eq!(back, edges);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_edge_list_skips_comments_and_blank_lines() {
        let path = temp_path("comments.el");
        std::fs::write(&path, "# header\n\n0 1\n% another comment\n2 3\n").unwrap();
        let back = read_text_edge_list(&path).unwrap();
        assert_eq!(back, vec![(0, 1), (2, 3)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_edge_list_rejects_malformed_lines() {
        let path = temp_path("bad.el");
        std::fs::write(&path, "0 1\n2\n").unwrap();
        assert!(read_text_edge_list(&path).is_err());
        std::fs::write(&path, "0 x\n").unwrap();
        assert!(read_text_edge_list(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_edge_list_round_trip() {
        let path = temp_path("bin.el");
        let edges = vec![(0u64, 1u64), (u64::MAX, 7), (123456789, 987654321)];
        write_binary_edge_list(&path, &edges).unwrap();
        let back = read_binary_edge_list(&path).unwrap();
        assert_eq!(back, edges);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_edge_list_rejects_truncated_files() {
        let path = temp_path("trunc.el");
        std::fs::write(&path, [0u8; 20]).unwrap();
        assert!(read_binary_edge_list(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partition_round_trip() {
        let path = temp_path("parts.txt");
        let parts = vec![0, 1, 2, 1, 0, 3];
        write_partition(&path, &parts).unwrap();
        assert_eq!(read_partition(&path).unwrap(), parts);
        std::fs::remove_file(&path).ok();
    }
}
