//! # xtrapulp-graph
//!
//! Graph data structures for the XtraPuLP reproduction.
//!
//! The original XtraPuLP stores the graph in a distributed one-dimensional compressed
//! sparse row (CSR) representation: each MPI task owns a subset of vertices and their
//! incident edges, maps global vertex identifiers to task-local ones with a hash map, and
//! keeps *ghost* copies of the one-hop neighbourhood owned by other tasks. This crate
//! provides:
//!
//! * [`Csr`] — an in-memory CSR graph with a forgiving builder (deduplication,
//!   symmetrisation, self-loop removal), used for single-rank algorithms (PuLP, the
//!   multilevel baselines) and as the source representation for distribution.
//! * [`Distribution`] — the vertex-to-rank ownership functions (block, cyclic, hashed)
//!   the paper discusses ("we utilize either random and block distributions").
//! * [`DistGraph`] — the per-rank local graph: owned vertices, ghost table, local CSR,
//!   ghost degrees and a pull-based ghost value exchange.
//! * [`bfs`] — serial and distributed breadth-first search (used by the initialisation
//!   strategy, the diameter estimator and the analytics crate).
//! * [`stats`] — degree statistics and the iterative-BFS diameter estimate used to build
//!   Table I.
//! * [`io`] — plain-text and binary edge-list input/output with format auto-detection.
//! * [`delta`] — normalised mutation batches ([`GraphDelta`]) and the incremental
//!   rebuild-from-delta paths ([`Csr::apply_delta`], [`DistGraph::apply_delta`]) the
//!   dynamic-graph subsystem is built on.

pub mod bfs;
pub mod csr;
pub mod delta;
pub mod dist_graph;
pub mod distribution;
pub mod io;
pub mod stats;

pub use csr::{csr_from_edges, Csr, CsrBuilder};
pub use delta::{GraphDelta, TimedOp, UpdateOp};
pub use dist_graph::DistGraph;
pub use distribution::Distribution;
pub use stats::GraphStats;

/// Global vertex identifier. The paper works with graphs of up to 2^34 vertices, so
/// global identifiers are 64-bit.
pub type GlobalId = u64;

/// Rank-local vertex identifier (an index into the rank's owned+ghost tables).
pub type LocalId = u32;

/// Sentinel for "no part assigned yet" (the paper initialises part labels to -1).
pub const UNASSIGNED: i32 = -1;
