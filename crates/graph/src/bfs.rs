//! Serial and distributed breadth-first search.
//!
//! BFS is used in three places in the reproduction, mirroring the paper: the
//! graph-growing flavour of the XtraPuLP initialisation, the iterative-BFS diameter
//! estimate of Table I, and several of the analytics (harmonic centrality, weakly
//! connected components seeds).

use xtrapulp_comm::RankCtx;

use crate::{Csr, DistGraph, GlobalId, LocalId};

/// Level returned for vertices not reachable from the BFS root.
pub const UNREACHED: i64 = -1;

/// Serial BFS over a [`Csr`] from `root`, returning the level of every vertex
/// (`UNREACHED` for unreachable vertices).
pub fn bfs_levels(csr: &Csr, root: GlobalId) -> Vec<i64> {
    let n = csr.num_vertices();
    let mut levels = vec![UNREACHED; n];
    if n == 0 {
        return levels;
    }
    assert!((root as usize) < n, "BFS root out of range");
    let mut frontier = vec![root];
    levels[root as usize] = 0;
    let mut level = 0i64;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in csr.neighbors(u) {
                if levels[v as usize] == UNREACHED {
                    levels[v as usize] = level;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    levels
}

/// Result of a distributed BFS on one rank.
#[derive(Debug, Clone)]
pub struct DistBfs {
    /// BFS level of every owned vertex (`UNREACHED` if unreachable). Indexed by local id.
    pub levels: Vec<i64>,
    /// Number of supersteps executed (equals the eccentricity of the root + 1 for
    /// reachable graphs).
    pub supersteps: u64,
    /// Number of vertices reached globally (including the root).
    pub reached: u64,
}

/// Distributed level-synchronous BFS from the global vertex `root`.
///
/// Each superstep expands the local frontier and pushes newly-reached *ghost* vertices to
/// their owners with an all-to-all exchange — the same communication pattern as
/// XtraPuLP's `ExchangeUpdates`.
pub fn dist_bfs(ctx: &RankCtx, graph: &DistGraph, root: GlobalId) -> DistBfs {
    let n_owned = graph.n_owned();
    let mut levels = vec![UNREACHED; n_owned];
    let mut frontier: Vec<LocalId> = Vec::new();
    if let Some(lid) = graph.local_id(root) {
        if graph.is_owned(lid) {
            levels[lid as usize] = 0;
            frontier.push(lid);
        }
    }
    let mut level = 0i64;
    let mut supersteps = 0u64;
    let mut reached = ctx.allreduce_scalar_sum_u64(frontier.len() as u64);

    loop {
        // Expand the local frontier; collect discoveries of remote (ghost) vertices.
        let mut remote: Vec<Vec<GlobalId>> = vec![Vec::new(); ctx.nranks()];
        let mut next: Vec<LocalId> = Vec::new();
        for &u in &frontier {
            for &v in graph.neighbors(u) {
                if graph.is_owned(v) {
                    if levels[v as usize] == UNREACHED {
                        levels[v as usize] = level + 1;
                        next.push(v);
                    }
                } else {
                    let owner = graph.owner_of_local(v);
                    remote[owner].push(graph.global_id(v));
                }
            }
        }
        // Deliver remote discoveries to their owners.
        let incoming = ctx.alltoallv(remote);
        for buf in incoming {
            for g in buf {
                let lid = graph
                    .local_id(g)
                    .expect("received BFS discovery for unknown vertex");
                debug_assert!(graph.is_owned(lid));
                if levels[lid as usize] == UNREACHED {
                    levels[lid as usize] = level + 1;
                    next.push(lid);
                }
            }
        }
        supersteps += 1;
        let newly = ctx.allreduce_scalar_sum_u64(next.len() as u64);
        reached += newly;
        if newly == 0 {
            break;
        }
        frontier = next;
        level += 1;
    }

    DistBfs {
        levels,
        supersteps,
        reached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{csr_from_edges, Distribution};
    use xtrapulp_comm::Runtime;

    fn path_edges(n: u64) -> Vec<(GlobalId, GlobalId)> {
        (0..n - 1).map(|i| (i, i + 1)).collect()
    }

    #[test]
    fn serial_bfs_on_path() {
        let csr = csr_from_edges(5, &path_edges(5));
        let levels = bfs_levels(&csr, 0);
        assert_eq!(levels, vec![0, 1, 2, 3, 4]);
        let levels = bfs_levels(&csr, 2);
        assert_eq!(levels, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn serial_bfs_unreachable_vertices() {
        let csr = csr_from_edges(4, &[(0, 1)]);
        let levels = bfs_levels(&csr, 0);
        assert_eq!(levels, vec![0, 1, UNREACHED, UNREACHED]);
    }

    #[test]
    fn serial_bfs_empty_graph() {
        let csr = csr_from_edges(0, &[]);
        assert!(bfs_levels(&csr, 0).is_empty());
    }

    #[test]
    fn distributed_bfs_matches_serial() {
        let n = 40u64;
        // A cycle plus a few chords.
        let mut edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        edges.push((0, 20));
        edges.push((5, 35));
        let csr = csr_from_edges(n, &edges);
        let serial = bfs_levels(&csr, 3);

        for nranks in [1usize, 2, 3, 5] {
            let per_rank = Runtime::run(nranks, |ctx| {
                let g = DistGraph::from_shared_edges(ctx, Distribution::Cyclic, n, &edges);
                let result = dist_bfs(ctx, &g, 3);
                // Return (global_id, level) pairs for owned vertices.
                (0..g.n_owned() as LocalId)
                    .map(|v| (g.global_id(v), result.levels[v as usize]))
                    .collect::<Vec<_>>()
            });
            let mut combined = vec![UNREACHED; n as usize];
            for rank_levels in per_rank {
                for (g, l) in rank_levels {
                    combined[g as usize] = l;
                }
            }
            assert_eq!(combined, serial, "nranks={nranks}");
        }
    }

    #[test]
    fn distributed_bfs_counts_reached() {
        let edges = vec![(0u64, 1u64), (1, 2), (3, 4)];
        let out = Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 5, &edges);
            dist_bfs(ctx, &g, 0).reached
        });
        assert!(out.iter().all(|&r| r == 3));
    }

    #[test]
    fn distributed_bfs_root_not_present_everywhere() {
        // The root is owned by exactly one rank; others must still participate correctly.
        let edges = path_edges(10);
        let out = Runtime::run(4, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 10, &edges);
            dist_bfs(ctx, &g, 9).reached
        });
        assert!(out.iter().all(|&r| r == 10));
    }
}
