//! In-memory compressed sparse row graph and its builder.

use serde::{Deserialize, Serialize};

use crate::GlobalId;

/// An undirected graph in compressed sparse row form.
///
/// Vertices are `0..num_vertices()`. The adjacency of vertex `v` is the slice
/// `adjacency[offsets[v]..offsets[v+1]]`. Every undirected edge `{u, v}` is stored twice
/// (once per endpoint), matching the paper's convention of treating all edges as
/// undirected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    offsets: Vec<u64>,
    adjacency: Vec<GlobalId>,
}

impl Csr {
    /// Build a CSR directly from pre-validated offsets and adjacency arrays.
    ///
    /// # Panics
    ///
    /// Panics if the offsets are not monotonically non-decreasing, do not start at zero,
    /// or do not end at `adjacency.len()`.
    pub fn from_parts(offsets: Vec<u64>, adjacency: Vec<GlobalId>) -> Self {
        assert!(
            !offsets.is_empty(),
            "offsets must contain at least one entry"
        );
        assert_eq!(offsets[0], 0, "offsets must start at zero");
        assert_eq!(
            *offsets.last().unwrap() as usize,
            adjacency.len(),
            "offsets must end at the adjacency length"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        let n = offsets.len() as u64 - 1;
        assert!(
            adjacency.iter().all(|&u| u < n),
            "adjacency refers to a vertex outside 0..n"
        );
        Csr { offsets, adjacency }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges (half the number of stored directed arcs).
    pub fn num_edges(&self) -> u64 {
        self.adjacency.len() as u64 / 2
    }

    /// Number of stored directed arcs (twice the undirected edge count).
    pub fn num_arcs(&self) -> u64 {
        self.adjacency.len() as u64
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: GlobalId) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbours of vertex `v`.
    pub fn neighbors(&self, v: GlobalId) -> &[GlobalId] {
        let start = self.offsets[v as usize] as usize;
        let end = self.offsets[v as usize + 1] as usize;
        &self.adjacency[start..end]
    }

    /// The raw offset array (length `n + 1`).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw adjacency array.
    pub fn adjacency(&self) -> &[GlobalId] {
        &self.adjacency
    }

    /// Iterate over all directed arcs `(u, v)`; each undirected edge appears twice.
    pub fn arcs(&self) -> impl Iterator<Item = (GlobalId, GlobalId)> + '_ {
        (0..self.num_vertices() as u64)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Iterate over each undirected edge exactly once (as `(u, v)` with `u <= v`).
    pub fn edges(&self) -> impl Iterator<Item = (GlobalId, GlobalId)> + '_ {
        self.arcs().filter(|&(u, v)| u <= v)
    }

    /// Maximum vertex degree, or 0 for an empty graph.
    pub fn max_degree(&self) -> u64 {
        (0..self.num_vertices() as u64)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average vertex degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.adjacency.len() as f64 / self.num_vertices() as f64
        }
    }

    /// Apply a [`GraphDelta`](crate::delta::GraphDelta), producing the updated graph.
    ///
    /// Each vertex's sorted adjacency row is merged with the delta's sorted insert and
    /// delete rows in one linear pass — `O(arcs + delta)` — instead of rebuilding from
    /// the full edge list (which would re-sort all `2m` arcs). Inserting an edge that
    /// already exists and deleting one that does not are both no-ops, matching the
    /// forgiving [`CsrBuilder`] semantics.
    ///
    /// # Panics
    ///
    /// Panics if the delta was normalised against a different vertex count.
    pub fn apply_delta(&self, delta: &crate::delta::GraphDelta) -> Csr {
        assert_eq!(
            delta.base_n(),
            self.num_vertices() as u64,
            "delta was built against a graph with {} vertices, this graph has {}",
            delta.base_n(),
            self.num_vertices()
        );
        let new_n = delta.new_n();
        let mut offsets = Vec::with_capacity(new_n as usize + 1);
        offsets.push(0u64);
        let mut adjacency = Vec::with_capacity(self.adjacency.len() + delta.insert_arcs().len());
        for u in 0..new_n {
            let old: &[GlobalId] = if u < self.num_vertices() as u64 {
                self.neighbors(u)
            } else {
                &[]
            };
            crate::delta::merge_row(
                old.iter().copied(),
                delta.inserts_from(u),
                delta.deletes_from(u),
                &mut adjacency,
            );
            offsets.push(adjacency.len() as u64);
        }
        Csr { offsets, adjacency }
    }
}

/// Builder assembling a [`Csr`] from an arbitrary edge list.
///
/// The builder tolerates the messiness of real edge lists (duplicate edges, self loops,
/// both directions present) and always produces a simple, symmetric graph, which is what
/// the partitioning algorithms assume.
#[derive(Debug, Clone, Default)]
pub struct CsrBuilder {
    num_vertices: u64,
    edges: Vec<(GlobalId, GlobalId)>,
    keep_self_loops: bool,
}

impl CsrBuilder {
    /// Create a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: u64) -> Self {
        CsrBuilder {
            num_vertices,
            edges: Vec::new(),
            keep_self_loops: false,
        }
    }

    /// Keep self loops instead of dropping them (default: drop).
    pub fn keep_self_loops(mut self, keep: bool) -> Self {
        self.keep_self_loops = keep;
        self
    }

    /// Add one undirected edge.
    pub fn add_edge(&mut self, u: GlobalId, v: GlobalId) -> &mut Self {
        debug_assert!(u < self.num_vertices && v < self.num_vertices);
        self.edges.push((u, v));
        self
    }

    /// Add many undirected edges.
    pub fn add_edges(
        &mut self,
        edges: impl IntoIterator<Item = (GlobalId, GlobalId)>,
    ) -> &mut Self {
        self.edges.extend(edges);
        self
    }

    /// Number of raw (pre-deduplication) edges added so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Build the CSR: symmetrise, drop out-of-range endpoints, deduplicate, and (by
    /// default) remove self loops.
    pub fn build(&self) -> Csr {
        let n = self.num_vertices as usize;
        // Symmetrise into directed arcs.
        let mut arcs: Vec<(GlobalId, GlobalId)> = Vec::with_capacity(self.edges.len() * 2);
        for &(u, v) in &self.edges {
            if u >= self.num_vertices || v >= self.num_vertices {
                continue;
            }
            if u == v {
                if self.keep_self_loops {
                    arcs.push((u, v));
                }
                continue;
            }
            arcs.push((u, v));
            arcs.push((v, u));
        }
        // Sort and deduplicate.
        arcs.sort_unstable();
        arcs.dedup();
        // Counting sort into CSR.
        let mut offsets = vec![0u64; n + 1];
        for &(u, _) in &arcs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let adjacency: Vec<GlobalId> = arcs.iter().map(|&(_, v)| v).collect();
        Csr { offsets, adjacency }
    }
}

/// Build a CSR from a plain undirected edge list over `num_vertices` vertices.
pub fn csr_from_edges(num_vertices: u64, edges: &[(GlobalId, GlobalId)]) -> Csr {
    let mut b = CsrBuilder::new(num_vertices);
    b.add_edges(edges.iter().copied());
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: u64) -> Csr {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        csr_from_edges(n, &edges)
    }

    #[test]
    fn empty_graph() {
        let g = csr_from_edges(5, &[]);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn zero_vertex_graph() {
        let g = csr_from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn path_graph_structure() {
        let g = path_graph(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn duplicate_and_reverse_edges_are_merged() {
        let g = csr_from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let g = csr_from_edges(3, &[(0, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn self_loops_kept_on_request() {
        let mut b = CsrBuilder::new(3).keep_self_loops(true);
        b.add_edge(0, 0).add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.degree(0), 2);
        assert!(g.neighbors(0).contains(&0));
    }

    #[test]
    fn out_of_range_edges_are_dropped() {
        let g = csr_from_edges(3, &[(0, 1), (0, 7), (9, 1)]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn arcs_and_edges_iterators_agree() {
        let g = csr_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5)]);
        assert_eq!(g.arcs().count() as u64, g.num_arcs());
        assert_eq!(g.edges().count() as u64, g.num_edges());
        for (u, v) in g.edges() {
            assert!(u <= v);
            assert!(g.neighbors(u).contains(&v));
            assert!(g.neighbors(v).contains(&u));
        }
    }

    #[test]
    fn from_parts_round_trip() {
        let g = path_graph(4);
        let g2 = Csr::from_parts(g.offsets().to_vec(), g.adjacency().to_vec());
        assert_eq!(g, g2);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_parts_rejects_bad_offsets() {
        Csr::from_parts(vec![0, 3, 2, 4], vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn from_parts_rejects_bad_adjacency() {
        Csr::from_parts(vec![0, 1], vec![7]);
    }

    #[test]
    fn apply_delta_matches_rebuild_from_scratch() {
        use crate::delta::GraphDelta;
        let g = csr_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        // Delete two edges, insert two (one to a new vertex), grow by two vertices.
        let delta = GraphDelta::new(6, 2, &[(0, 3), (6, 1)], &[(1, 2), (4, 5)]);
        let updated = g.apply_delta(&delta);
        let expected = csr_from_edges(8, &[(0, 1), (2, 3), (3, 4), (5, 0), (0, 3), (6, 1)]);
        assert_eq!(updated, expected);
        assert_eq!(updated.num_vertices(), 8);
        assert_eq!(updated.degree(7), 0); // second added vertex is isolated
    }

    #[test]
    fn apply_delta_is_forgiving_about_duplicates_and_missing_edges() {
        use crate::delta::GraphDelta;
        let g = path_graph(4);
        // Insert an existing edge, delete a non-existent one: both are no-ops.
        let delta = GraphDelta::new(4, 0, &[(0, 1)], &[(0, 3)]);
        assert_eq!(g.apply_delta(&delta), g);
    }

    #[test]
    fn empty_delta_is_identity() {
        use crate::delta::GraphDelta;
        let g = path_graph(5);
        assert_eq!(g.apply_delta(&GraphDelta::new(5, 0, &[], &[])), g);
    }

    #[test]
    #[should_panic(expected = "delta was built against")]
    fn apply_delta_rejects_mismatched_base() {
        use crate::delta::GraphDelta;
        path_graph(5).apply_delta(&GraphDelta::new(4, 0, &[], &[]));
    }

    #[test]
    fn star_graph_degrees() {
        let edges: Vec<_> = (1..10).map(|i| (0, i)).collect();
        let g = csr_from_edges(10, &edges);
        assert_eq!(g.degree(0), 9);
        assert_eq!(g.max_degree(), 9);
        for v in 1..10 {
            assert_eq!(g.degree(v), 1);
            assert_eq!(g.neighbors(v), &[0]);
        }
    }
}
