//! Graph mutation deltas.
//!
//! A [`GraphDelta`] is the normalised form of one batch of graph mutations: edge
//! insertions, edge deletions and vertex additions, symmetrised into directed arcs and
//! sorted so the rebuild paths ([`Csr::apply_delta`](crate::Csr::apply_delta),
//! [`DistGraph::apply_delta`](crate::DistGraph::apply_delta)) can merge them against the
//! existing adjacency in one linear pass instead of re-sorting the whole edge list.
//!
//! The delta layer is deliberately forgiving, mirroring [`CsrBuilder`](crate::CsrBuilder):
//! self loops and out-of-range endpoints are dropped during normalisation, duplicate
//! operations collapse, and an edge both inserted and deleted in the same batch resolves
//! to the deletion. Strict, typed validation of user-submitted update batches lives one
//! layer up, in `xtrapulp-dynamic`.

use crate::GlobalId;

/// One raw graph mutation, as produced by update-stream generators and user batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateOp {
    /// Insert the undirected edge `{u, v}` (a no-op if it already exists).
    InsertEdge(GlobalId, GlobalId),
    /// Delete the undirected edge `{u, v}` (a no-op if it does not exist).
    DeleteEdge(GlobalId, GlobalId),
    /// Append `count` new isolated vertices (ids `n..n + count`).
    AddVertices(u64),
}

/// One mutation with its logical timestamp (a global, monotonically increasing event
/// counter across a whole mutation trace). This is the record type of the on-disk
/// update-log format ([`crate::io::read_update_log`] / [`crate::io::write_update_log`])
/// and of the streams `xtrapulp_gen::updates` generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOp {
    /// Logical event time.
    pub time: u64,
    /// The mutation.
    pub op: UpdateOp,
}

/// A normalised batch of graph mutations against a graph with `base_n` vertices.
///
/// Insert and delete arcs are stored symmetrised (both directions), sorted by
/// `(source, target)` and deduplicated, which is exactly the order the CSR rebuild
/// consumes them in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphDelta {
    base_n: u64,
    added_vertices: u64,
    insert_arcs: Vec<(GlobalId, GlobalId)>,
    delete_arcs: Vec<(GlobalId, GlobalId)>,
}

impl GraphDelta {
    /// Normalise raw insert/delete edge lists into a delta against a graph with `base_n`
    /// vertices, growing it by `added_vertices`.
    ///
    /// Self loops and edges with an endpoint outside `0..base_n + added_vertices` are
    /// dropped; duplicates collapse; an edge present in both lists resolves to the
    /// deletion (the batch's net effect is "edge absent").
    pub fn new(
        base_n: u64,
        added_vertices: u64,
        insert_edges: &[(GlobalId, GlobalId)],
        delete_edges: &[(GlobalId, GlobalId)],
    ) -> GraphDelta {
        let new_n = base_n + added_vertices;
        let symmetrise = |edges: &[(GlobalId, GlobalId)]| -> Vec<(GlobalId, GlobalId)> {
            let mut arcs = Vec::with_capacity(edges.len() * 2);
            for &(u, v) in edges {
                if u == v || u >= new_n || v >= new_n {
                    continue;
                }
                arcs.push((u, v));
                arcs.push((v, u));
            }
            arcs.sort_unstable();
            arcs.dedup();
            arcs
        };
        let delete_arcs = symmetrise(delete_edges);
        let mut insert_arcs = symmetrise(insert_edges);
        insert_arcs.retain(|arc| delete_arcs.binary_search(arc).is_err());
        GraphDelta {
            base_n,
            added_vertices,
            insert_arcs,
            delete_arcs,
        }
    }

    /// Build a delta directly from a mixed op stream (insertions, deletions, vertex
    /// additions), e.g. one batch of a generated update stream.
    pub fn from_ops(base_n: u64, ops: impl IntoIterator<Item = UpdateOp>) -> GraphDelta {
        let mut inserts = Vec::new();
        let mut deletes = Vec::new();
        let mut added = 0u64;
        for op in ops {
            match op {
                UpdateOp::InsertEdge(u, v) => inserts.push((u, v)),
                UpdateOp::DeleteEdge(u, v) => deletes.push((u, v)),
                UpdateOp::AddVertices(count) => added += count,
            }
        }
        GraphDelta::new(base_n, added, &inserts, &deletes)
    }

    /// Vertex count of the graph the delta applies to.
    pub fn base_n(&self) -> u64 {
        self.base_n
    }

    /// Vertex count after application.
    pub fn new_n(&self) -> u64 {
        self.base_n + self.added_vertices
    }

    /// Number of vertices the delta appends.
    pub fn added_vertices(&self) -> u64 {
        self.added_vertices
    }

    /// The symmetrised, sorted insertion arcs (each inserted edge appears twice).
    pub fn insert_arcs(&self) -> &[(GlobalId, GlobalId)] {
        &self.insert_arcs
    }

    /// The symmetrised, sorted deletion arcs (each deleted edge appears twice).
    pub fn delete_arcs(&self) -> &[(GlobalId, GlobalId)] {
        &self.delete_arcs
    }

    /// Number of undirected edges the delta inserts.
    pub fn num_insert_edges(&self) -> u64 {
        self.insert_arcs.len() as u64 / 2
    }

    /// Number of undirected edges the delta deletes (whether or not they exist).
    pub fn num_delete_edges(&self) -> u64 {
        self.delete_arcs.len() as u64 / 2
    }

    /// True when applying the delta would change nothing.
    pub fn is_empty(&self) -> bool {
        self.added_vertices == 0 && self.insert_arcs.is_empty() && self.delete_arcs.is_empty()
    }

    /// Approximate heap + inline footprint in bytes, for the memory-accounting
    /// gauges (`mem_bytes{subsystem=...}`). Counts the two arc vectors at 16
    /// bytes per `(GlobalId, GlobalId)` arc plus the fixed header fields.
    pub fn approx_bytes(&self) -> u64 {
        32 + (self.insert_arcs.len() as u64 + self.delete_arcs.len() as u64) * 16
    }

    /// Is the arc `u -> v` scheduled for deletion?
    pub fn is_deleted(&self, u: GlobalId, v: GlobalId) -> bool {
        self.delete_arcs.binary_search(&(u, v)).is_ok()
    }

    /// The insertion arcs whose source is `u`, as a sorted sub-slice.
    pub fn inserts_from(&self, u: GlobalId) -> &[(GlobalId, GlobalId)] {
        arcs_from(&self.insert_arcs, u)
    }

    /// The deletion arcs whose source is `u`, as a sorted sub-slice.
    pub fn deletes_from(&self, u: GlobalId) -> &[(GlobalId, GlobalId)] {
        arcs_from(&self.delete_arcs, u)
    }

    /// Global ids of every vertex incident to an inserted or deleted arc — the "affected"
    /// set a warm-started repartition revisits. Sorted and deduplicated.
    pub fn touched_vertices(&self) -> Vec<GlobalId> {
        let mut touched: Vec<GlobalId> = self
            .insert_arcs
            .iter()
            .chain(self.delete_arcs.iter())
            .map(|&(u, _)| u)
            .collect();
        touched.sort_unstable();
        touched.dedup();
        touched
    }

    /// [`touched_vertices`](GraphDelta::touched_vertices) plus every appended vertex —
    /// the seed set of a warm-started repartition's refinement frontier and of an
    /// incremental analytics consumer's active region. Sorted and deduplicated.
    pub fn touched_including_added(&self) -> Vec<GlobalId> {
        let mut touched = self.touched_vertices();
        // Arc endpoints may already reference appended ids, so the extended vector
        // needs a re-sort before dedup.
        touched.extend(self.base_n..self.new_n());
        touched.sort_unstable();
        touched.dedup();
        touched
    }

    /// The undirected edges the delta deletes, each listed once as `(min, max)`.
    pub fn deleted_edges(&self) -> impl Iterator<Item = (GlobalId, GlobalId)> + '_ {
        self.delete_arcs.iter().copied().filter(|&(u, v)| u < v)
    }
}

/// The contiguous sub-slice of sorted `(source, target)` arcs whose source is `u`.
fn arcs_from(arcs: &[(GlobalId, GlobalId)], u: GlobalId) -> &[(GlobalId, GlobalId)] {
    let start = arcs.partition_point(|&(a, _)| a < u);
    let end = arcs.partition_point(|&(a, _)| a <= u);
    &arcs[start..end]
}

/// Merge one vertex's sorted old adjacency row with the delta's sorted insert/delete
/// rows, appending the surviving neighbours to `out`. Shared by the [`Csr`](crate::Csr)
/// and [`DistGraph`](crate::DistGraph) rebuild paths.
pub(crate) fn merge_row(
    old: impl Iterator<Item = GlobalId>,
    inserts: &[(GlobalId, GlobalId)],
    deletes: &[(GlobalId, GlobalId)],
    out: &mut Vec<GlobalId>,
) {
    let mut old = old.peekable();
    let mut ins = inserts.iter().map(|&(_, v)| v).peekable();
    let mut del = deletes.iter().map(|&(_, v)| v).peekable();
    loop {
        let v = match (old.peek().copied(), ins.peek().copied()) {
            (Some(a), Some(b)) if a == b => {
                old.next();
                ins.next();
                a
            }
            (Some(a), Some(b)) if a < b => {
                old.next();
                a
            }
            (Some(_) | None, Some(b)) => {
                ins.next();
                b
            }
            (Some(a), None) => {
                old.next();
                a
            }
            (None, None) => break,
        };
        while del.peek().is_some_and(|&d| d < v) {
            del.next();
        }
        // Normalisation removed insert/delete conflicts, so a match here can only kill an
        // old arc; deleting a non-existent edge never reaches this point at all.
        if del.peek() == Some(&v) {
            del.next();
            continue;
        }
        out.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation_symmetrises_sorts_and_dedups() {
        let d = GraphDelta::new(5, 0, &[(1, 0), (0, 1), (3, 2)], &[(4, 2)]);
        assert_eq!(d.insert_arcs(), &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        assert_eq!(d.delete_arcs(), &[(2, 4), (4, 2)]);
        assert_eq!(d.num_insert_edges(), 2);
        assert_eq!(d.num_delete_edges(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn self_loops_and_out_of_range_edges_are_dropped() {
        let d = GraphDelta::new(3, 1, &[(2, 2), (0, 9), (0, 3)], &[(1, 1), (7, 0)]);
        // (0, 3) survives: vertex 3 exists after the one-vertex growth.
        assert_eq!(d.insert_arcs(), &[(0, 3), (3, 0)]);
        assert!(d.delete_arcs().is_empty());
        assert_eq!(d.new_n(), 4);
    }

    #[test]
    fn insert_delete_conflict_resolves_to_deletion() {
        let d = GraphDelta::new(4, 0, &[(0, 1), (2, 3)], &[(1, 0)]);
        assert_eq!(d.insert_arcs(), &[(2, 3), (3, 2)]);
        assert!(d.is_deleted(0, 1));
        assert!(d.is_deleted(1, 0));
    }

    #[test]
    fn from_ops_accumulates_all_op_kinds() {
        let d = GraphDelta::from_ops(
            4,
            [
                UpdateOp::InsertEdge(0, 1),
                UpdateOp::AddVertices(2),
                UpdateOp::DeleteEdge(2, 3),
                UpdateOp::InsertEdge(1, 4),
                UpdateOp::AddVertices(1),
            ],
        );
        assert_eq!(d.base_n(), 4);
        assert_eq!(d.added_vertices(), 3);
        assert_eq!(d.new_n(), 7);
        assert_eq!(d.num_insert_edges(), 2);
        assert_eq!(d.num_delete_edges(), 1);
    }

    #[test]
    fn per_source_slices_and_touched_set() {
        let d = GraphDelta::new(6, 0, &[(0, 1), (0, 2), (4, 5)], &[(2, 3)]);
        assert_eq!(d.inserts_from(0), &[(0, 1), (0, 2)]);
        assert_eq!(d.inserts_from(3), &[]);
        assert_eq!(d.deletes_from(3), &[(3, 2)]);
        assert_eq!(d.touched_vertices(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn touched_including_added_covers_endpoints_and_new_tail() {
        // Base graph of 4 vertices grows by 2; one insert references an added vertex.
        let d = GraphDelta::new(4, 2, &[(0, 5), (1, 2)], &[(2, 3)]);
        assert_eq!(d.touched_including_added(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(
            d.deleted_edges().collect::<Vec<_>>(),
            vec![(2, 3)],
            "each undirected deletion is listed once"
        );
    }

    #[test]
    fn empty_delta_is_empty() {
        let d = GraphDelta::new(10, 0, &[], &[]);
        assert!(d.is_empty());
        assert_eq!(d.new_n(), 10);
        assert!(d.touched_vertices().is_empty());
    }

    #[test]
    fn merge_row_handles_all_cases() {
        // Old row {1, 3, 5}; insert {2, 3 (dup), 7}; delete {5, 9 (absent)}.
        let inserts = [(0u64, 2u64), (0, 3), (0, 7)];
        let deletes = [(0u64, 5u64), (0, 9)];
        let mut out = Vec::new();
        merge_row([1u64, 3, 5].into_iter(), &inserts, &deletes, &mut out);
        assert_eq!(out, vec![1, 2, 3, 7]);
    }
}
