//! The per-rank distributed graph: owned vertices, ghosts, and a local CSR.
//!
//! This is the reproduction of XtraPuLP's distributed one-dimensional CSR-like
//! representation. Each rank owns a subset of vertices (given by a [`Distribution`]) and
//! stores:
//!
//! * the adjacency of its owned vertices, with neighbours referenced by *local id*;
//! * a *ghost* table for the one-hop neighbourhood owned by other ranks (global id,
//!   owning rank, and global degree of each ghost);
//! * a hash map translating global ids to local ids, and a flat array for the reverse
//!   direction — exactly the scheme the paper describes.
//!
//! Local ids are laid out as `[0, n_owned)` for owned vertices followed by
//! `[n_owned, n_owned + n_ghost)` for ghosts, so per-vertex state (part labels, BFS
//! levels, PageRank values, ...) can be kept in a single flat vector.

use std::collections::HashMap;

use xtrapulp_comm::{RankCtx, WireElem};

use crate::{Csr, Distribution, GlobalId, LocalId};

/// A rank-local view of a globally distributed undirected graph.
#[derive(Debug, Clone)]
pub struct DistGraph {
    global_n: u64,
    global_m: u64,
    rank: usize,
    nranks: usize,
    dist: Distribution,
    /// Global id of each owned vertex; index is the local id.
    owned_global: Vec<GlobalId>,
    /// Global id of each ghost vertex; index is `local_id - n_owned`.
    ghost_global: Vec<GlobalId>,
    /// Owning rank of each ghost vertex.
    ghost_owner: Vec<u32>,
    /// Global degree of each ghost vertex.
    ghost_degree: Vec<u64>,
    global_to_local: HashMap<GlobalId, LocalId>,
    /// CSR offsets over owned vertices (length `n_owned + 1`).
    offsets: Vec<u64>,
    /// CSR adjacency in local ids (owned or ghost).
    adjacency: Vec<LocalId>,
}

impl DistGraph {
    // --------------------------------------------------------------------------------
    // Construction
    // --------------------------------------------------------------------------------

    /// Build the local graph from a globally shared undirected edge list.
    ///
    /// Every rank scans the same `edges` slice and keeps the arcs whose source it owns.
    /// This is the cheapest construction path when the whole edge list fits in shared
    /// memory (which is always the case in this reproduction).
    pub fn from_shared_edges(
        ctx: &RankCtx,
        dist: Distribution,
        global_n: u64,
        edges: &[(GlobalId, GlobalId)],
    ) -> Self {
        let rank = ctx.rank();
        let nranks = ctx.nranks();
        let mut arcs = Vec::new();
        for &(u, v) in edges {
            if u == v || u >= global_n || v >= global_n {
                continue;
            }
            if dist.owner(u, global_n, nranks) == rank {
                arcs.push((u, v));
            }
            if dist.owner(v, global_n, nranks) == rank {
                arcs.push((v, u));
            }
        }
        Self::from_owned_arcs(ctx, dist, global_n, arcs)
    }

    /// Build the local graph from a globally shared [`Csr`].
    pub fn from_csr(ctx: &RankCtx, dist: Distribution, csr: &Csr) -> Self {
        let rank = ctx.rank();
        let nranks = ctx.nranks();
        let global_n = csr.num_vertices() as u64;
        let mut arcs = Vec::new();
        for u in dist.owned_vertices(rank, global_n, nranks) {
            for &v in csr.neighbors(u) {
                if u != v {
                    arcs.push((u, v));
                }
            }
        }
        Self::from_owned_arcs(ctx, dist, global_n, arcs)
    }

    /// Build the local graph when each rank holds an arbitrary chunk of the global edge
    /// list (e.g. each rank generated part of the graph). Edges are shuffled to the
    /// owners of both endpoints with an all-to-all exchange, mirroring how the original
    /// code ingests distributed graph files.
    pub fn from_local_edges(
        ctx: &RankCtx,
        dist: Distribution,
        global_n: u64,
        edges: Vec<(GlobalId, GlobalId)>,
    ) -> Self {
        let rank = ctx.rank();
        let nranks = ctx.nranks();
        let mut sends: Vec<Vec<(GlobalId, GlobalId)>> = vec![Vec::new(); nranks];
        let mut my_arcs = Vec::new();
        for (u, v) in edges {
            if u == v || u >= global_n || v >= global_n {
                continue;
            }
            let ou = dist.owner(u, global_n, nranks);
            let ov = dist.owner(v, global_n, nranks);
            if ou == rank {
                my_arcs.push((u, v));
            } else {
                sends[ou].push((u, v));
            }
            if ov == rank {
                my_arcs.push((v, u));
            } else {
                sends[ov].push((v, u));
            }
        }
        let received = ctx.alltoallv(sends);
        for buf in received {
            my_arcs.extend(buf);
        }
        Self::from_owned_arcs(ctx, dist, global_n, my_arcs)
    }

    /// Core constructor: `arcs` are directed arcs whose source is owned by this rank.
    /// Duplicates are removed; ghost metadata (owner, degree) is fetched collectively.
    fn from_owned_arcs(
        ctx: &RankCtx,
        dist: Distribution,
        global_n: u64,
        mut arcs: Vec<(GlobalId, GlobalId)>,
    ) -> Self {
        let rank = ctx.rank();
        let nranks = ctx.nranks();

        let owned_global: Vec<GlobalId> = dist.owned_vertices(rank, global_n, nranks).collect();
        let n_owned = owned_global.len();
        let mut global_to_local: HashMap<GlobalId, LocalId> = HashMap::with_capacity(n_owned * 2);
        for (i, &g) in owned_global.iter().enumerate() {
            global_to_local.insert(g, i as LocalId);
        }

        arcs.sort_unstable();
        arcs.dedup();

        // Assign ghost local ids in first-seen (sorted) order.
        let mut ghost_global = Vec::new();
        for &(_, v) in &arcs {
            if let std::collections::hash_map::Entry::Vacant(e) = global_to_local.entry(v) {
                let lid = (n_owned + ghost_global.len()) as LocalId;
                e.insert(lid);
                ghost_global.push(v);
            }
        }

        // Build CSR over owned vertices.
        let mut offsets = vec![0u64; n_owned + 1];
        for &(u, _) in &arcs {
            let lu = global_to_local[&u] as usize;
            debug_assert!(lu < n_owned, "arc source must be owned by this rank");
            offsets[lu + 1] += 1;
        }
        for i in 0..n_owned {
            offsets[i + 1] += offsets[i];
        }
        let mut adjacency = vec![0 as LocalId; arcs.len()];
        let mut cursor = offsets.clone();
        for &(u, v) in &arcs {
            let lu = global_to_local[&u] as usize;
            adjacency[cursor[lu] as usize] = global_to_local[&v];
            cursor[lu] += 1;
        }

        let ghost_owner: Vec<u32> = ghost_global
            .iter()
            .map(|&g| dist.owner(g, global_n, nranks) as u32)
            .collect();

        // Global undirected edge count: every arc's source is owned by exactly one rank,
        // and each undirected edge produces two arcs overall.
        let local_arcs = adjacency.len() as u64;
        let global_m = ctx.allreduce_scalar_sum_u64(local_arcs) / 2;

        let mut graph = DistGraph {
            global_n,
            global_m,
            rank,
            nranks,
            dist,
            owned_global,
            ghost_global,
            ghost_owner,
            ghost_degree: Vec::new(),
            global_to_local,
            offsets,
            adjacency,
        };

        // Fetch the global degree of every ghost from its owner (needed by the weighted
        // balance phase, which weights neighbour counts by degree).
        let owned_degrees: Vec<u64> = (0..graph.n_owned())
            .map(|v| graph.degree_owned(v as LocalId))
            .collect();
        graph.ghost_degree = graph.ghost_values_u64(ctx, &owned_degrees);
        graph.account_ghosts();
        graph
    }

    // --------------------------------------------------------------------------------
    // Delta application
    // --------------------------------------------------------------------------------

    /// Apply a [`GraphDelta`](crate::delta::GraphDelta) collectively, producing the
    /// updated per-rank graph.
    ///
    /// When vertex ownership is stable under the delta (always for `Cyclic`, `Hashed`
    /// and `Explicit` distributions; for `Block` when no vertices are added), the rebuild
    /// is incremental: owned local ids are preserved, each owned vertex's sorted
    /// adjacency row is merged with the delta in one linear pass, the global→local map is
    /// patched (stale ghosts evicted, new owned/ghost entries added) and only the ghost
    /// metadata (owner, degree) is re-fetched. Growing a `Block` distribution shifts the
    /// ownership of existing vertices, so that case falls back to migrating the surviving
    /// arcs to their new owners with one all-to-all exchange — still without touching the
    /// original edge list. Growing an `Explicit` distribution extends its ownership
    /// table by hashing the new tail vertices to ranks ([`Distribution::grown`]):
    /// existing owners are untouched, so the incremental path applies.
    ///
    /// Every rank must pass an identical delta. Must be called collectively.
    ///
    /// # Panics
    ///
    /// Panics if the delta's base vertex count does not match.
    pub fn apply_delta(&self, ctx: &RankCtx, delta: &crate::delta::GraphDelta) -> Self {
        assert_eq!(
            delta.base_n(),
            self.global_n,
            "delta was built against a graph with {} vertices, this graph has {}",
            delta.base_n(),
            self.global_n
        );
        let stable = match &self.dist {
            Distribution::Cyclic | Distribution::Hashed | Distribution::Explicit(_) => true,
            Distribution::Block => delta.added_vertices() == 0,
        };
        if stable {
            self.apply_delta_stable(ctx, delta)
        } else {
            self.apply_delta_migrating(ctx, delta)
        }
    }

    /// Incremental rebuild for deltas that do not move any existing vertex between ranks.
    fn apply_delta_stable(&self, ctx: &RankCtx, delta: &crate::delta::GraphDelta) -> Self {
        let rank = self.rank;
        let nranks = self.nranks;
        let new_n = delta.new_n();
        // Deterministic and prefix-stable, so existing owners are unchanged and every
        // rank agrees on the owners of the new tail (a no-op clone for the functional
        // distributions and for non-growing deltas).
        let dist = self.dist.grown(new_n, nranks);

        // Owned vertices: the old set is preserved (ownership is stable), new vertices
        // owned by this rank are appended, keeping owned local ids valid and sorted.
        let mut owned_global = self.owned_global.clone();
        let old_n_owned = owned_global.len();
        for g in self.global_n..new_n {
            if dist.owner(g, new_n, nranks) == rank {
                owned_global.push(g);
            }
        }
        let n_owned = owned_global.len();

        // Merge each owned row with the delta in global-id space. Rows are sorted by
        // neighbour global id (construction sorts arcs by `(u, v)`), so this is linear.
        let mut offsets = Vec::with_capacity(n_owned + 1);
        offsets.push(0u64);
        let mut adj_global: Vec<GlobalId> =
            Vec::with_capacity(self.adjacency.len() + delta.insert_arcs().len());
        for (lu, &gu) in owned_global.iter().enumerate() {
            if lu < old_n_owned {
                crate::delta::merge_row(
                    self.neighbors(lu as LocalId)
                        .iter()
                        .map(|&lv| self.global_id(lv)),
                    delta.inserts_from(gu),
                    delta.deletes_from(gu),
                    &mut adj_global,
                );
            } else {
                adj_global.extend(delta.inserts_from(gu).iter().map(|&(_, v)| v));
            }
            offsets.push(adj_global.len() as u64);
        }

        // Patch the global→local map: evict stale ghost entries (deletions may orphan
        // ghosts, and growth shifts every ghost local id), register new owned vertices,
        // then re-assign ghost slots in first-seen row order.
        let mut global_to_local = self.global_to_local.clone();
        for &g in &self.ghost_global {
            global_to_local.remove(&g);
        }
        for (lid, &g) in owned_global.iter().enumerate().skip(old_n_owned) {
            global_to_local.insert(g, lid as LocalId);
        }
        let mut ghost_global: Vec<GlobalId> = Vec::with_capacity(self.ghost_global.len());
        let mut adjacency = Vec::with_capacity(adj_global.len());
        for &gv in &adj_global {
            let lid = *global_to_local.entry(gv).or_insert_with(|| {
                let lid = (n_owned + ghost_global.len()) as LocalId;
                ghost_global.push(gv);
                lid
            });
            adjacency.push(lid);
        }
        let ghost_owner: Vec<u32> = ghost_global
            .iter()
            .map(|&g| dist.owner(g, new_n, nranks) as u32)
            .collect();

        let local_arcs = adjacency.len() as u64;
        let global_m = ctx.allreduce_scalar_sum_u64(local_arcs) / 2;

        let mut graph = DistGraph {
            global_n: new_n,
            global_m,
            rank,
            nranks,
            dist,
            owned_global,
            ghost_global,
            ghost_owner,
            ghost_degree: Vec::new(),
            global_to_local,
            offsets,
            adjacency,
        };
        // Insertions and deletions change degrees, so ghost degrees are re-fetched.
        let owned_degrees: Vec<u64> = (0..graph.n_owned())
            .map(|v| graph.degree_owned(v as LocalId))
            .collect();
        graph.ghost_degree = graph.ghost_values_u64(ctx, &owned_degrees);
        graph.account_ghosts();
        graph
    }

    /// Migration rebuild for deltas that shift existing-vertex ownership (growing a
    /// `Block` distribution): surviving arcs are shuffled to their new owners, insertion
    /// arcs are claimed directly by their new owners (the delta is globally shared).
    fn apply_delta_migrating(&self, ctx: &RankCtx, delta: &crate::delta::GraphDelta) -> Self {
        let rank = self.rank;
        let nranks = self.nranks;
        let new_n = delta.new_n();
        let mut sends: Vec<Vec<(GlobalId, GlobalId)>> = vec![Vec::new(); nranks];
        let mut mine: Vec<(GlobalId, GlobalId)> = Vec::new();
        for lu in 0..self.n_owned() {
            let gu = self.owned_global[lu];
            let new_owner = self.dist.owner(gu, new_n, nranks);
            for &lv in self.neighbors(lu as LocalId) {
                let gv = self.global_id(lv);
                if delta.is_deleted(gu, gv) {
                    continue;
                }
                if new_owner == rank {
                    mine.push((gu, gv));
                } else {
                    sends[new_owner].push((gu, gv));
                }
            }
        }
        for &(u, v) in delta.insert_arcs() {
            if self.dist.owner(u, new_n, nranks) == rank {
                mine.push((u, v));
            }
        }
        for buf in ctx.alltoallv(sends) {
            mine.extend(buf);
        }
        Self::from_owned_arcs(ctx, self.dist.clone(), new_n, mine)
    }

    // --------------------------------------------------------------------------------
    // Sizes and identity
    // --------------------------------------------------------------------------------

    /// Number of vertices owned by this rank.
    pub fn n_owned(&self) -> usize {
        self.owned_global.len()
    }

    /// Number of ghost vertices (neighbours owned by other ranks).
    pub fn n_ghost(&self) -> usize {
        self.ghost_global.len()
    }

    /// Owned plus ghost vertices: the length required for per-vertex state vectors.
    pub fn n_total(&self) -> usize {
        self.n_owned() + self.n_ghost()
    }

    /// Number of vertices in the global graph.
    pub fn global_n(&self) -> u64 {
        self.global_n
    }

    /// Number of undirected edges in the global graph.
    pub fn global_m(&self) -> u64 {
        self.global_m
    }

    /// Number of directed arcs stored on this rank (the local workload measure the edge
    /// balance phase equalises).
    pub fn local_arcs(&self) -> u64 {
        self.adjacency.len() as u64
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks the graph is distributed over.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The ownership function used to distribute the graph.
    pub fn distribution(&self) -> Distribution {
        self.dist.clone()
    }

    /// Approximate heap footprint of this rank's ghost tables in bytes: the
    /// ghost global-id, owner, and degree arrays plus the ghosts' share of the
    /// global→local map (keyed entries at ~24 bytes each with hash-table
    /// overhead).
    pub fn ghost_bytes(&self) -> u64 {
        let n_ghost = self.ghost_global.len() as u64;
        n_ghost * (8 + 4 + 8) + n_ghost * 24
    }

    /// Approximate heap footprint of the whole rank-local graph in bytes:
    /// owned-id and CSR arrays, the full global→local map, and
    /// [`ghost_bytes`](DistGraph::ghost_bytes).
    pub fn approx_bytes(&self) -> u64 {
        let owned = self.owned_global.len() as u64 * (8 + 24); // ids + map share
        let csr = self.offsets.len() as u64 * 8 + self.adjacency.len() as u64 * 4;
        owned + csr + self.ghost_bytes()
    }

    /// Publish this rank's ghost-table bytes to the memory-accounting plane
    /// (`mem_bytes{subsystem="ghost_tables_rank<r>"}`). Called on every
    /// (re)build so the gauge tracks the latest epoch's tables.
    fn account_ghosts(&self) {
        xtrapulp_obs::mem::set(
            &format!("ghost_tables_rank{}", self.rank),
            self.ghost_bytes(),
        );
    }

    // --------------------------------------------------------------------------------
    // Topology accessors
    // --------------------------------------------------------------------------------

    /// Neighbours (as local ids) of an owned vertex.
    pub fn neighbors(&self, v: LocalId) -> &[LocalId] {
        debug_assert!(
            (v as usize) < self.n_owned(),
            "neighbors() requires an owned vertex"
        );
        let start = self.offsets[v as usize] as usize;
        let end = self.offsets[v as usize + 1] as usize;
        &self.adjacency[start..end]
    }

    /// Degree of an owned vertex.
    pub fn degree_owned(&self, v: LocalId) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Degree of any local vertex: the local degree for owned vertices, the global degree
    /// (fetched from the owner at construction time) for ghosts.
    pub fn degree(&self, v: LocalId) -> u64 {
        let v = v as usize;
        if v < self.n_owned() {
            self.degree_owned(v as LocalId)
        } else {
            self.ghost_degree[v - self.n_owned()]
        }
    }

    /// Is this local id an owned vertex (as opposed to a ghost)?
    pub fn is_owned(&self, v: LocalId) -> bool {
        (v as usize) < self.n_owned()
    }

    /// Global id of a local vertex (owned or ghost).
    pub fn global_id(&self, v: LocalId) -> GlobalId {
        let v = v as usize;
        if v < self.n_owned() {
            self.owned_global[v]
        } else {
            self.ghost_global[v - self.n_owned()]
        }
    }

    /// Local id of a global vertex if it is known to this rank (owned or ghost).
    pub fn local_id(&self, g: GlobalId) -> Option<LocalId> {
        self.global_to_local.get(&g).copied()
    }

    /// The rank that owns a local vertex.
    pub fn owner_of_local(&self, v: LocalId) -> usize {
        let v = v as usize;
        if v < self.n_owned() {
            self.rank
        } else {
            self.ghost_owner[v - self.n_owned()] as usize
        }
    }

    /// The rank that owns a global vertex.
    pub fn owner_of_global(&self, g: GlobalId) -> usize {
        self.dist.owner(g, self.global_n, self.nranks)
    }

    /// Iterate over owned vertices as local ids.
    pub fn owned_vertices(&self) -> impl Iterator<Item = LocalId> + '_ {
        0..self.n_owned() as LocalId
    }

    /// Global ids of this rank's ghosts, indexed by `local_id - n_owned()`.
    pub fn ghost_globals(&self) -> &[GlobalId] {
        &self.ghost_global
    }

    // --------------------------------------------------------------------------------
    // Ghost exchange
    // --------------------------------------------------------------------------------

    /// Pull one `u64` value per ghost vertex from the ghosts' owners.
    ///
    /// `owned_values[v]` must hold the value of owned vertex `v` on every rank. The
    /// result is indexed by ghost slot (`local_id - n_owned()`).
    pub fn ghost_values_u64(&self, ctx: &RankCtx, owned_values: &[u64]) -> Vec<u64> {
        self.ghost_values_with(ctx, |v| owned_values[v as usize])
    }

    /// Pull one `f64` value per ghost vertex from the ghosts' owners.
    pub fn ghost_values_f64(&self, ctx: &RankCtx, owned_values: &[f64]) -> Vec<f64> {
        self.ghost_values_with(ctx, |v| owned_values[v as usize])
    }

    /// Pull one `i32` value per ghost vertex from the ghosts' owners (used for part
    /// labels and component/level ids).
    pub fn ghost_values_i32(&self, ctx: &RankCtx, owned_values: &[i32]) -> Vec<i32> {
        self.ghost_values_with(ctx, |v| owned_values[v as usize])
    }

    /// Generic pull-based ghost exchange: every rank answers requests for its owned
    /// vertices with `value_of(local_owned_id)`, and receives the values of its ghosts.
    pub fn ghost_values_with<T, F>(&self, ctx: &RankCtx, value_of: F) -> Vec<T>
    where
        T: WireElem,
        F: Fn(LocalId) -> T,
    {
        let nranks = self.nranks;
        // Group ghost requests by owning rank, remembering each ghost's slot so replies
        // can be scattered back into place.
        let mut requests: Vec<Vec<GlobalId>> = vec![Vec::new(); nranks];
        let mut request_slots: Vec<Vec<usize>> = vec![Vec::new(); nranks];
        for (slot, (&g, &owner)) in self
            .ghost_global
            .iter()
            .zip(self.ghost_owner.iter())
            .enumerate()
        {
            requests[owner as usize].push(g);
            request_slots[owner as usize].push(slot);
        }
        let incoming = ctx.alltoallv(requests);
        // Answer every request with the value of the owned vertex.
        let replies: Vec<Vec<T>> = incoming
            .iter()
            .map(|reqs| {
                reqs.iter()
                    .map(|&g| {
                        let lid = self.global_to_local[&g];
                        debug_assert!(self.is_owned(lid));
                        value_of(lid)
                    })
                    .collect()
            })
            .collect();
        let answered = ctx.alltoallv(replies);
        let mut out = vec![None; self.n_ghost()];
        for (owner, values) in answered.into_iter().enumerate() {
            for (slot, value) in request_slots[owner].iter().zip(values) {
                out[*slot] = Some(value);
            }
        }
        out.into_iter()
            .map(|v| v.expect("ghost exchange missed a ghost"))
            .collect()
    }

    /// Convenience: extend a per-owned-vertex state vector to cover ghosts too, by
    /// pulling ghost values from their owners. The result has length `n_total()`.
    pub fn extend_with_ghosts_u64(&self, ctx: &RankCtx, owned_values: &[u64]) -> Vec<u64> {
        let mut full = owned_values.to_vec();
        full.extend(self.ghost_values_u64(ctx, owned_values));
        full
    }

    /// Cut statistics for a local part assignment covering owned + ghost vertices:
    /// returns `(local_cut_arcs, per_part_cut_arcs)` where a cut arc is an owned arc
    /// whose endpoints are in different parts.
    pub fn local_cut(&self, parts: &[i32], num_parts: usize) -> (u64, Vec<u64>) {
        assert!(parts.len() >= self.n_total());
        let mut cut = 0u64;
        let mut per_part = vec![0u64; num_parts];
        for v in 0..self.n_owned() {
            let pv = parts[v];
            for &u in self.neighbors(v as LocalId) {
                let pu = parts[u as usize];
                if pv != pu {
                    cut += 1;
                    if pv >= 0 {
                        per_part[pv as usize] += 1;
                    }
                    if pu >= 0 {
                        per_part[pu as usize] += 1;
                    }
                }
            }
        }
        (cut, per_part)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr_from_edges;
    use xtrapulp_comm::Runtime;

    /// A small graph used across tests: two triangles joined by one bridge edge.
    ///   0-1-2-0   3-4-5-3   2-3 bridge
    fn two_triangles() -> Vec<(GlobalId, GlobalId)> {
        vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]
    }

    #[test]
    fn single_rank_holds_whole_graph() {
        let edges = two_triangles();
        let out = Runtime::run(1, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 6, &edges);
            (g.n_owned(), g.n_ghost(), g.global_m(), g.local_arcs())
        });
        assert_eq!(out[0], (6, 0, 7, 14));
    }

    #[test]
    fn multi_rank_block_distribution_builds_ghosts() {
        let edges = two_triangles();
        let out = Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 6, &edges);
            assert_eq!(g.global_n(), 6);
            assert_eq!(g.global_m(), 7);
            assert_eq!(g.n_owned(), 3);
            // Rank 0 owns {0,1,2}; vertex 2's neighbour 3 is a ghost. Symmetrically for rank 1.
            assert_eq!(g.n_ghost(), 1);
            let ghost_global = g.ghost_globals()[0];
            let expected_ghost = if ctx.rank() == 0 { 3 } else { 2 };
            assert_eq!(ghost_global, expected_ghost);
            // Ghost degree equals the global degree of the bridge endpoint (3).
            assert_eq!(g.degree(g.n_owned() as LocalId), 3);
            g.local_arcs()
        });
        assert_eq!(out.iter().sum::<u64>(), 14);
    }

    #[test]
    fn from_csr_and_from_shared_edges_agree() {
        let edges = two_triangles();
        let csr = csr_from_edges(6, &edges);
        let out = Runtime::run(3, |ctx| {
            let a = DistGraph::from_shared_edges(ctx, Distribution::Cyclic, 6, &edges);
            let b = DistGraph::from_csr(ctx, Distribution::Cyclic, &csr);
            assert_eq!(a.n_owned(), b.n_owned());
            assert_eq!(a.n_ghost(), b.n_ghost());
            assert_eq!(a.local_arcs(), b.local_arcs());
            for v in 0..a.n_owned() as LocalId {
                let mut na: Vec<GlobalId> =
                    a.neighbors(v).iter().map(|&u| a.global_id(u)).collect();
                let mut nb: Vec<GlobalId> =
                    b.neighbors(v).iter().map(|&u| b.global_id(u)).collect();
                na.sort_unstable();
                nb.sort_unstable();
                assert_eq!(na, nb);
            }
            true
        });
        assert!(out.iter().all(|&x| x));
    }

    #[test]
    fn from_local_edges_shuffles_to_owners() {
        let edges = two_triangles();
        let out = Runtime::run(3, |ctx| {
            // Each rank starts with a disjoint slice of the edge list.
            let chunk: Vec<_> = edges
                .iter()
                .enumerate()
                .filter(|(i, _)| i % ctx.nranks() == ctx.rank())
                .map(|(_, &e)| e)
                .collect();
            let g = DistGraph::from_local_edges(ctx, Distribution::Block, 6, chunk);
            let h = DistGraph::from_shared_edges(ctx, Distribution::Block, 6, &edges);
            assert_eq!(g.local_arcs(), h.local_arcs());
            assert_eq!(g.n_ghost(), h.n_ghost());
            g.global_m()
        });
        assert!(out.iter().all(|&m| m == 7));
    }

    #[test]
    fn duplicate_and_self_loop_edges_are_cleaned() {
        let mut edges = two_triangles();
        edges.push((0, 1));
        edges.push((1, 0));
        edges.push((4, 4));
        let out = Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 6, &edges);
            g.global_m()
        });
        assert!(out.iter().all(|&m| m == 7));
    }

    #[test]
    fn global_local_id_round_trip() {
        let edges = two_triangles();
        Runtime::run(3, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Hashed, 6, &edges);
            for v in 0..g.n_total() as LocalId {
                let gid = g.global_id(v);
                assert_eq!(g.local_id(gid), Some(v));
            }
            for v in g.owned_vertices() {
                assert!(g.is_owned(v));
                assert_eq!(g.owner_of_local(v), ctx.rank());
                assert_eq!(g.owner_of_global(g.global_id(v)), ctx.rank());
            }
            for ghost_slot in 0..g.n_ghost() {
                let lid = (g.n_owned() + ghost_slot) as LocalId;
                assert!(!g.is_owned(lid));
                assert_ne!(g.owner_of_local(lid), ctx.rank());
            }
        });
    }

    #[test]
    fn ghost_degrees_match_global_degrees() {
        let edges = two_triangles();
        let csr = csr_from_edges(6, &edges);
        Runtime::run(3, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Cyclic, 6, &edges);
            for slot in 0..g.n_ghost() {
                let lid = (g.n_owned() + slot) as LocalId;
                assert_eq!(g.degree(lid), csr.degree(g.global_id(lid)));
            }
        });
    }

    #[test]
    fn ghost_values_pull_owner_values() {
        let edges = two_triangles();
        Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 6, &edges);
            // Every owned vertex's value is 1000 + its global id.
            let owned: Vec<u64> = (0..g.n_owned())
                .map(|v| 1000 + g.global_id(v as LocalId))
                .collect();
            let ghosts = g.ghost_values_u64(ctx, &owned);
            for (slot, &gv) in ghosts.iter().enumerate() {
                assert_eq!(gv, 1000 + g.ghost_globals()[slot]);
            }
            let full = g.extend_with_ghosts_u64(ctx, &owned);
            assert_eq!(full.len(), g.n_total());
        });
    }

    #[test]
    fn local_cut_counts_cut_arcs() {
        let edges = two_triangles();
        let out = Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 6, &edges);
            // Parts: global vertices 0..2 in part 0, 3..5 in part 1 -> only the bridge is cut.
            let parts: Vec<i32> = (0..g.n_total() as LocalId)
                .map(|v| if g.global_id(v) < 3 { 0 } else { 1 })
                .collect();
            let (cut, per_part) = g.local_cut(&parts, 2);
            (cut, per_part)
        });
        // Each rank sees the bridge arc once (from its owned endpoint).
        let total_cut: u64 = out.iter().map(|(c, _)| c).sum();
        assert_eq!(total_cut, 2); // one undirected edge seen as one arc per rank
        for (_, per_part) in &out {
            assert_eq!(per_part.len(), 2);
        }
    }

    /// Assert that `updated` is structurally identical to a from-scratch build of the
    /// post-delta edge list: same ownership, ghosts, degrees and per-vertex adjacency.
    fn assert_same_graph(a: &DistGraph, b: &DistGraph) {
        assert_eq!(a.global_n(), b.global_n());
        assert_eq!(a.global_m(), b.global_m());
        assert_eq!(a.n_owned(), b.n_owned());
        assert_eq!(a.n_ghost(), b.n_ghost());
        assert_eq!(a.local_arcs(), b.local_arcs());
        for v in 0..a.n_total() as LocalId {
            assert_eq!(a.global_id(v), b.global_id(v));
            assert_eq!(a.degree(v), b.degree(v));
        }
        for v in 0..a.n_owned() as LocalId {
            let na: Vec<GlobalId> = a.neighbors(v).iter().map(|&u| a.global_id(u)).collect();
            let nb: Vec<GlobalId> = b.neighbors(v).iter().map(|&u| b.global_id(u)).collect();
            assert_eq!(na, nb);
        }
        for v in 0..a.n_total() as LocalId {
            assert_eq!(a.local_id(a.global_id(v)), Some(v));
        }
    }

    #[test]
    fn apply_delta_stable_matches_from_scratch() {
        use crate::delta::GraphDelta;
        let edges = two_triangles();
        // Delete the bridge, insert a new bridge and grow by one vertex hooked to both
        // triangles. Cyclic/Hashed ownership is stable under growth.
        let delta = GraphDelta::new(6, 1, &[(1, 4), (6, 0), (6, 5)], &[(2, 3)]);
        let mut new_edges: Vec<_> = edges.iter().copied().filter(|&e| e != (2, 3)).collect();
        new_edges.extend([(1, 4), (6, 0), (6, 5)]);
        for dist in [Distribution::Cyclic, Distribution::Hashed] {
            for nranks in [1usize, 3] {
                Runtime::run(nranks, |ctx| {
                    let g = DistGraph::from_shared_edges(ctx, dist.clone(), 6, &edges);
                    let updated = g.apply_delta(ctx, &delta);
                    let scratch = DistGraph::from_shared_edges(ctx, dist.clone(), 7, &new_edges);
                    assert_same_graph(&updated, &scratch);
                });
            }
        }
    }

    #[test]
    fn apply_delta_explicit_growth_hashes_tail_to_owners() {
        use crate::delta::GraphDelta;
        use crate::distribution::splitmix64;
        let edges = two_triangles();
        let nranks = 3usize;
        // Explicit ownership (vertex v owned by rank v % 3), then grow by 2 vertices.
        let owners: Vec<i32> = (0..6).map(|v| (v % nranks as u64) as i32).collect();
        let dist = Distribution::from_parts(&owners);
        let delta = GraphDelta::new(6, 2, &[(6, 0), (7, 6), (7, 3)], &[(2, 3)]);
        let mut new_edges: Vec<_> = edges.iter().copied().filter(|&e| e != (2, 3)).collect();
        new_edges.extend([(6, 0), (7, 6), (7, 3)]);
        Runtime::run(nranks, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, dist.clone(), 6, &edges);
            let updated = g.apply_delta(ctx, &delta);
            // Existing vertices keep their owners; the tail is hashed.
            assert_eq!(updated.global_n(), 8);
            for v in 0..6u64 {
                assert_eq!(updated.owner_of_global(v), (v % nranks as u64) as usize);
            }
            for v in 6..8u64 {
                assert_eq!(
                    updated.owner_of_global(v),
                    (splitmix64(v) % nranks as u64) as usize
                );
            }
            // The incremental rebuild matches a from-scratch build over the grown table.
            let grown = dist.grown(8, ctx.nranks());
            let scratch = DistGraph::from_shared_edges(ctx, grown, 8, &new_edges);
            assert_same_graph(&updated, &scratch);
        });
    }

    #[test]
    fn apply_delta_block_growth_migrates_ownership() {
        use crate::delta::GraphDelta;
        let edges = two_triangles();
        // Growing a block distribution remaps existing vertices; the migration path must
        // still reproduce the from-scratch build exactly.
        let delta = GraphDelta::new(6, 4, &[(6, 0), (7, 8), (9, 3)], &[(0, 1)]);
        let mut new_edges: Vec<_> = edges.iter().copied().filter(|&e| e != (0, 1)).collect();
        new_edges.extend([(6, 0), (7, 8), (9, 3)]);
        Runtime::run(3, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 6, &edges);
            let updated = g.apply_delta(ctx, &delta);
            let scratch = DistGraph::from_shared_edges(ctx, Distribution::Block, 10, &new_edges);
            assert_same_graph(&updated, &scratch);
        });
    }

    #[test]
    fn apply_delta_deletions_drop_orphaned_ghosts() {
        use crate::delta::GraphDelta;
        let edges = two_triangles();
        Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 6, &edges);
            assert_eq!(g.n_ghost(), 1); // the bridge endpoint
            let updated = g.apply_delta(ctx, &GraphDelta::new(6, 0, &[], &[(2, 3)]));
            assert_eq!(
                updated.n_ghost(),
                0,
                "deleting the bridge orphans the ghost"
            );
            assert_eq!(updated.global_m(), 6);
            // The stale ghost id must no longer resolve.
            let stale = if ctx.rank() == 0 { 3 } else { 2 };
            assert_eq!(updated.local_id(stale), None);
        });
    }

    #[test]
    fn apply_delta_empty_delta_is_identity() {
        use crate::delta::GraphDelta;
        let edges = two_triangles();
        Runtime::run(2, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 6, &edges);
            let updated = g.apply_delta(ctx, &GraphDelta::new(6, 0, &[], &[]));
            assert_same_graph(&updated, &g);
        });
    }

    #[test]
    fn apply_delta_chains_across_epochs() {
        use crate::delta::GraphDelta;
        // Apply two successive deltas and compare against one from-scratch build.
        let edges = two_triangles();
        Runtime::run(3, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Cyclic, 6, &edges);
            let g1 = g.apply_delta(ctx, &GraphDelta::new(6, 1, &[(6, 2), (6, 3)], &[]));
            let g2 = g1.apply_delta(ctx, &GraphDelta::new(7, 0, &[(0, 4)], &[(6, 2)]));
            let mut final_edges = edges.clone();
            final_edges.extend([(6, 3), (0, 4)]);
            let scratch = DistGraph::from_shared_edges(ctx, Distribution::Cyclic, 7, &final_edges);
            assert_same_graph(&g2, &scratch);
        });
    }

    #[test]
    fn empty_rank_is_tolerated() {
        // More ranks than vertices: some ranks own nothing.
        let edges = vec![(0u64, 1u64)];
        let out = Runtime::run(4, |ctx| {
            let g = DistGraph::from_shared_edges(ctx, Distribution::Block, 2, &edges);
            (g.n_owned(), g.global_m())
        });
        let total_owned: usize = out.iter().map(|(n, _)| n).sum();
        assert_eq!(total_owned, 2);
        assert!(out.iter().all(|&(_, m)| m == 1));
    }
}
