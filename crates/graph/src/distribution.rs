//! Vertex-to-rank ownership functions.
//!
//! XtraPuLP distributes the graph one-dimensionally: every global vertex is *owned* by
//! exactly one rank, which stores its adjacency and computes its part updates. The paper
//! uses block distributions (contiguous global-id ranges) and random distributions, and
//! observes that random distributions scale better for irregular networks. We provide
//! block, cyclic and a deterministic hash-based "random" distribution.

use std::sync::Arc;

use crate::GlobalId;

/// How global vertices are assigned to ranks.
///
/// Cloning is cheap: the `Explicit` variant shares its ownership table behind an [`Arc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Distribution {
    /// Contiguous blocks of global ids: rank `r` owns roughly `n / nranks` consecutive
    /// vertices. This matches how crawl datasets are naturally stored and is the paper's
    /// "block" distribution.
    Block,
    /// Round-robin assignment: vertex `v` is owned by rank `v % nranks`.
    Cyclic,
    /// Deterministic pseudo-random assignment via an integer hash of the vertex id; the
    /// practical stand-in for the paper's "random" distribution.
    Hashed,
    /// Explicit per-vertex ownership, e.g. a partition computed by XtraPuLP used to
    /// redistribute the graph for analytics or SpMV (`owners[v]` is the owning rank of
    /// global vertex `v`).
    Explicit(Arc<Vec<u32>>),
}

impl Distribution {
    /// Build an explicit distribution from a part vector (one part id per global vertex),
    /// interpreting part ids as rank ids.
    pub fn from_parts(parts: &[i32]) -> Distribution {
        Distribution::Explicit(Arc::new(parts.iter().map(|&p| p.max(0) as u32).collect()))
    }

    /// Extend this distribution to cover a graph grown to `new_n` vertices.
    ///
    /// The functional distributions (`Block`, `Cyclic`, `Hashed`) are defined for any
    /// vertex count and are returned unchanged. An `Explicit` table, which has one
    /// entry per original vertex, is extended by hashing each new tail vertex to a rank
    /// ([`splitmix64`]`(v) % nranks`) — deterministic, so every rank of a collective
    /// computes the same extended table, and prefix-stable, so existing vertices keep
    /// their owners. A table already covering `new_n` is shared, not copied.
    pub fn grown(&self, new_n: u64, nranks: usize) -> Distribution {
        match self {
            Distribution::Explicit(owners) if (owners.len() as u64) < new_n => {
                let mut extended = Vec::with_capacity(new_n as usize);
                extended.extend_from_slice(owners);
                for v in owners.len() as u64..new_n {
                    extended.push((splitmix64(v) % nranks as u64) as u32);
                }
                Distribution::Explicit(Arc::new(extended))
            }
            other => other.clone(),
        }
    }
}

impl Distribution {
    /// The rank owning global vertex `v` out of `n` vertices over `nranks` ranks.
    pub fn owner(&self, v: GlobalId, n: u64, nranks: usize) -> usize {
        debug_assert!(v < n, "vertex {v} out of range 0..{n}");
        match self {
            Distribution::Block => {
                let (base, extra) = (n / nranks as u64, n % nranks as u64);
                // The first `extra` ranks own `base + 1` vertices, the rest own `base`.
                let cutoff = extra * (base + 1);
                if v < cutoff {
                    (v / (base + 1)) as usize
                } else {
                    (extra + (v - cutoff) / base.max(1)) as usize
                }
            }
            Distribution::Cyclic => (v % nranks as u64) as usize,
            Distribution::Hashed => (splitmix64(v) % nranks as u64) as usize,
            Distribution::Explicit(owners) => {
                let owner = owners[v as usize] as usize;
                debug_assert!(owner < nranks, "explicit owner {owner} out of range");
                owner.min(nranks - 1)
            }
        }
    }

    /// The number of vertices owned by `rank`.
    pub fn owned_count(&self, rank: usize, n: u64, nranks: usize) -> u64 {
        match self {
            Distribution::Block => {
                let (base, extra) = (n / nranks as u64, n % nranks as u64);
                if (rank as u64) < extra {
                    base + 1
                } else {
                    base
                }
            }
            Distribution::Cyclic => {
                let base = n / nranks as u64;
                let extra = n % nranks as u64;
                if (rank as u64) < extra {
                    base + 1
                } else {
                    base
                }
            }
            Distribution::Hashed | Distribution::Explicit(_) => {
                // No closed form; callers that need an exact count enumerate owned ids.
                (0..n).filter(|&v| self.owner(v, n, nranks) == rank).count() as u64
            }
        }
    }

    /// Iterate over the global ids owned by `rank`, in increasing order.
    pub fn owned_vertices(
        &self,
        rank: usize,
        n: u64,
        nranks: usize,
    ) -> Box<dyn Iterator<Item = GlobalId> + Send> {
        match self {
            Distribution::Block => {
                let (base, extra) = (n / nranks as u64, n % nranks as u64);
                let start = if (rank as u64) < extra {
                    rank as u64 * (base + 1)
                } else {
                    extra * (base + 1) + (rank as u64 - extra) * base
                };
                let count = self.owned_count(rank, n, nranks);
                Box::new(start..start + count)
            }
            Distribution::Cyclic => {
                let nranks = nranks as u64;
                Box::new((rank as u64..n).step_by(nranks as usize))
            }
            Distribution::Hashed | Distribution::Explicit(_) => {
                let dist = self.clone();
                Box::new((0..n).filter(move |&v| dist.owner(v, n, nranks) == rank))
            }
        }
    }
}

/// SplitMix64 finaliser: a fast, well-mixed integer hash used for the `Hashed`
/// distribution so that ownership is reproducible across runs and ranks.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_distribution_partitions_everything_exactly_once() {
        for n in [1u64, 7, 16, 100, 101] {
            for nranks in [1usize, 2, 3, 7, 16] {
                let d = Distribution::Block;
                let mut owned = vec![0u64; nranks];
                for v in 0..n {
                    owned[d.owner(v, n, nranks)] += 1;
                }
                for (r, &count) in owned.iter().enumerate() {
                    assert_eq!(
                        count,
                        d.owned_count(r, n, nranks),
                        "n={n} nranks={nranks} r={r}"
                    );
                }
                assert_eq!(owned.iter().sum::<u64>(), n);
                // Block ownership is contiguous and balanced within one vertex.
                let max = *owned.iter().max().unwrap();
                let min = *owned.iter().min().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn cyclic_distribution_is_round_robin() {
        let d = Distribution::Cyclic;
        assert_eq!(d.owner(0, 10, 4), 0);
        assert_eq!(d.owner(1, 10, 4), 1);
        assert_eq!(d.owner(5, 10, 4), 1);
        assert_eq!(d.owned_count(0, 10, 4), 3);
        assert_eq!(d.owned_count(3, 10, 4), 2);
    }

    #[test]
    fn hashed_distribution_is_deterministic_and_covers_all_ranks() {
        let d = Distribution::Hashed;
        let n = 10_000u64;
        let nranks = 8;
        let mut counts = vec![0u64; nranks];
        for v in 0..n {
            let o = d.owner(v, n, nranks);
            assert_eq!(o, d.owner(v, n, nranks));
            counts[o] += 1;
        }
        // Pseudo-random assignment should be roughly balanced (within 20%).
        let expected = n as f64 / nranks as f64;
        for &c in &counts {
            assert!((c as f64) > expected * 0.8 && (c as f64) < expected * 1.2);
        }
    }

    #[test]
    fn owned_vertices_matches_owner_function() {
        for dist in [
            Distribution::Block,
            Distribution::Cyclic,
            Distribution::Hashed,
        ] {
            let n = 503u64;
            let nranks = 5;
            let mut seen = vec![false; n as usize];
            for r in 0..nranks {
                for v in dist.owned_vertices(r, n, nranks) {
                    assert_eq!(dist.owner(v, n, nranks), r);
                    assert!(!seen[v as usize], "vertex {v} owned twice");
                    seen[v as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "some vertex unowned for {dist:?}");
        }
    }

    #[test]
    fn single_rank_owns_everything() {
        for dist in [
            Distribution::Block,
            Distribution::Cyclic,
            Distribution::Hashed,
        ] {
            for v in 0..100u64 {
                assert_eq!(dist.owner(v, 100, 1), 0);
            }
            assert_eq!(dist.owned_count(0, 100, 1), 100);
        }
    }

    #[test]
    fn splitmix_mixes() {
        // Not a statistical test: just ensure nearby inputs do not collide.
        let hashes: Vec<u64> = (0..1000u64).map(splitmix64).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), hashes.len());
    }
}
