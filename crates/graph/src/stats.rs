//! Graph statistics: degree summaries and the approximate-diameter estimate used for
//! Table I of the paper.
//!
//! The paper's corpus table lists, for every graph, the vertex count, edge count, average
//! and maximum degree, and an approximate diameter obtained by "10 iterative breadth
//! first searches with a vertex randomly selected from the farthest level on the previous
//! search". [`approximate_diameter`] reproduces that estimator.

use serde::{Deserialize, Serialize};

use crate::bfs::{bfs_levels, UNREACHED};
use crate::{Csr, GlobalId};

/// Summary statistics of a graph, matching the columns of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: u64,
    /// Number of undirected edges.
    pub num_edges: u64,
    /// Average degree (2m / n).
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: u64,
    /// Approximate diameter from the iterative BFS heuristic.
    pub approx_diameter: u64,
}

impl GraphStats {
    /// Compute the full statistics of a graph. `bfs_rounds` controls the diameter
    /// estimator (the paper uses 10); `seed` selects its starting vertex deterministically.
    pub fn compute(csr: &Csr, bfs_rounds: usize, seed: u64) -> GraphStats {
        GraphStats {
            num_vertices: csr.num_vertices() as u64,
            num_edges: csr.num_edges(),
            avg_degree: csr.avg_degree(),
            max_degree: csr.max_degree(),
            approx_diameter: approximate_diameter(csr, bfs_rounds, seed),
        }
    }
}

/// Approximate the graph diameter with the paper's iterative-BFS heuristic: run a BFS,
/// jump to a vertex on the farthest level, and repeat, keeping the largest eccentricity
/// seen. Deterministic for a fixed `seed`.
pub fn approximate_diameter(csr: &Csr, rounds: usize, seed: u64) -> u64 {
    let n = csr.num_vertices() as u64;
    if n == 0 {
        return 0;
    }
    let mut start: GlobalId = seed % n;
    // Skip isolated starting vertices if possible: pick the first vertex with a neighbour.
    if csr.degree(start) == 0 {
        if let Some(v) = (0..n).find(|&v| csr.degree(v) > 0) {
            start = v;
        } else {
            return 0;
        }
    }
    let mut best = 0u64;
    for round in 0..rounds.max(1) {
        let levels = bfs_levels(csr, start);
        let (farthest, ecc) = levels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l != UNREACHED)
            .max_by_key(|(_, &l)| l)
            .map(|(v, &l)| (v as GlobalId, l as u64))
            .unwrap_or((start, 0));
        best = best.max(ecc);
        if farthest == start {
            break;
        }
        // Deterministically perturb the restart choice a little so repeated rounds do not
        // bounce between the same two endpoints.
        let candidates: Vec<GlobalId> = levels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l as u64 == ecc)
            .map(|(v, _)| v as GlobalId)
            .collect();
        start = candidates[(seed as usize + round) % candidates.len()];
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr_from_edges;

    #[test]
    fn stats_of_a_path() {
        let edges: Vec<_> = (0..9u64).map(|i| (i, i + 1)).collect();
        let csr = csr_from_edges(10, &edges);
        let s = GraphStats::compute(&csr, 10, 1);
        assert_eq!(s.num_vertices, 10);
        assert_eq!(s.num_edges, 9);
        assert_eq!(s.max_degree, 2);
        assert!((s.avg_degree - 1.8).abs() < 1e-12);
        assert_eq!(s.approx_diameter, 9);
    }

    #[test]
    fn stats_of_a_star() {
        let edges: Vec<_> = (1..8u64).map(|i| (0, i)).collect();
        let csr = csr_from_edges(8, &edges);
        let s = GraphStats::compute(&csr, 5, 3);
        assert_eq!(s.max_degree, 7);
        assert_eq!(s.approx_diameter, 2);
    }

    #[test]
    fn diameter_of_cycle() {
        let n = 20u64;
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let csr = csr_from_edges(n, &edges);
        assert_eq!(approximate_diameter(&csr, 10, 0), 10);
    }

    #[test]
    fn diameter_ignores_isolated_start() {
        // Vertex 0 is isolated; the estimator should still find the path's diameter.
        let edges: Vec<_> = (1..6u64).map(|i| (i, i + 1)).collect();
        let csr = csr_from_edges(7, &edges);
        assert_eq!(approximate_diameter(&csr, 10, 0), 5);
    }

    #[test]
    fn diameter_of_empty_and_edgeless_graphs() {
        assert_eq!(approximate_diameter(&csr_from_edges(0, &[]), 10, 0), 0);
        assert_eq!(approximate_diameter(&csr_from_edges(5, &[]), 10, 0), 0);
    }

    #[test]
    fn diameter_is_deterministic_for_fixed_seed() {
        let edges: Vec<_> = (0..50u64)
            .flat_map(|i| vec![(i, (i + 1) % 50), (i, (i + 7) % 50)])
            .collect();
        let csr = csr_from_edges(50, &edges);
        let a = approximate_diameter(&csr, 10, 42);
        let b = approximate_diameter(&csr, 10, 42);
        assert_eq!(a, b);
    }
}
