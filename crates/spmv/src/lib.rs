//! # xtrapulp-spmv
//!
//! Distributed sparse matrix–vector multiplication (SpMV) with matrix distributions
//! derived from graph partitions, reproducing the Table III study of the paper.
//!
//! The matrix is the (unit-weight) adjacency matrix of a graph. Two distribution families
//! are provided, matching the paper's setup with the Trilinos/Epetra SpMV:
//!
//! * **1-D row distributions** ([`spmv_1d`]): each rank owns the rows (vertices) assigned
//!   to it by a partition — block, random, or a partitioner's output. Before every
//!   multiply, each rank pulls the x-vector entries of its ghost columns from their
//!   owners; communication volume is proportional to the partition's cut.
//! * **2-D distributions** ([`spmv_2d`]): ranks are arranged in an `r × c` grid and each
//!   nonzero `(u, v)` is assigned to the rank at (row-group of `owner(u)`, column-group of
//!   `owner(v)`), following Boman, Devine and Rajamanickam's scheme for mapping 1-D
//!   partitions to 2-D distributions. The x-vector expand and y-vector fold are then
//!   confined to grid columns and rows respectively, which bounds the number of messages
//!   per rank by `r + c` instead of `p` and is what makes 2-D layouts win on skewed
//!   graphs.

use xtrapulp_comm::{RankCtx, Timer};
use xtrapulp_graph::{DistGraph, Distribution, GraphDelta};
use xtrapulp_graph::{GlobalId, LocalId};

/// Result of a timed SpMV run on one rank (identical on all ranks after reduction).
#[derive(Debug, Clone, Copy)]
pub struct SpmvResult {
    /// Wall-clock seconds for all iterations (max over ranks).
    pub seconds: f64,
    /// Total bytes exchanged across ranks.
    pub comm_bytes: u64,
    /// Checksum of the final vector (for validation).
    pub checksum: f64,
}

/// Run `iterations` distributed SpMV operations `y = A x` with a 1-D row distribution
/// given by the graph's own vertex ownership. `x` starts as all-ones and is replaced by
/// `y` (normalised) after every iteration, as an iterative solver would.
pub fn spmv_1d(ctx: &RankCtx, graph: &DistGraph, iterations: usize) -> SpmvResult {
    let n_owned = graph.n_owned();
    let mut x = vec![1.0f64; n_owned];
    let bytes_before = ctx.stats().bytes_sent();
    let timer = Timer::start();
    for _ in 0..iterations {
        let ghost_x = graph.ghost_values_f64(ctx, &x);
        let mut y = vec![0.0f64; n_owned];
        for (v, y_v) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for &u in graph.neighbors(v as LocalId) {
                let u = u as usize;
                acc += if u < n_owned {
                    x[u]
                } else {
                    ghost_x[u - n_owned]
                };
            }
            *y_v = acc;
        }
        // Normalise to keep values bounded across iterations.
        let local_norm: f64 = y.iter().map(|a| a * a).sum();
        let norm = ctx.allreduce_sum_f64(&[local_norm])[0].sqrt().max(1e-30);
        for value in y.iter_mut() {
            *value /= norm;
        }
        x = y;
    }
    let seconds = ctx.allreduce_max_f64(&[timer.elapsed_secs()])[0];
    let comm_bytes = ctx.allreduce_scalar_sum_u64(ctx.stats().bytes_sent_since(bytes_before));
    let checksum = ctx.allreduce_sum_f64(&[x.iter().sum::<f64>()])[0];
    SpmvResult {
        seconds,
        comm_bytes,
        checksum,
    }
}

/// A 2-D distributed sparse matrix built from a 1-D vertex partition.
#[derive(Debug, Clone)]
pub struct Matrix2d {
    /// Grid shape (rows, cols) with `rows * cols == nranks`.
    pub grid: (usize, usize),
    /// Local nonzeros as (row global id, column global id).
    nonzeros: Vec<(GlobalId, GlobalId)>,
    /// Owner (1-D) of every global vertex, shared by all ranks.
    owners: Vec<u32>,
    global_n: u64,
}

/// Choose a near-square process grid for `nranks`.
pub fn choose_grid(nranks: usize) -> (usize, usize) {
    let mut rows = (nranks as f64).sqrt().floor() as usize;
    while rows > 1 && !nranks.is_multiple_of(rows) {
        rows -= 1;
    }
    (rows.max(1), nranks / rows.max(1))
}

impl Matrix2d {
    /// Build the local block of the 2-D distribution on this rank. `parts` is the 1-D
    /// vertex partition (one rank id per global vertex); nonzero `(u, v)` goes to the rank
    /// at grid position `(row_group(parts[u]), col_group(parts[v]))`.
    pub fn build(
        ctx: &RankCtx,
        global_n: u64,
        edges: &[(GlobalId, GlobalId)],
        parts: &[i32],
    ) -> Matrix2d {
        let nranks = ctx.nranks();
        let grid = choose_grid(nranks);
        let owners: Vec<u32> = parts
            .iter()
            .map(|&p| (p.max(0) as u32).min(nranks as u32 - 1))
            .collect();
        let my_row = ctx.rank() / grid.1;
        let my_col = ctx.rank() % grid.1;
        let mut nonzeros = Vec::new();
        for &(u, v) in edges {
            if u == v || u >= global_n || v >= global_n {
                continue;
            }
            // The adjacency matrix is symmetric: both (u, v) and (v, u) are nonzeros.
            for &(r, c) in &[(u, v), (v, u)] {
                let owner_r = owners[r as usize] as usize;
                let owner_c = owners[c as usize] as usize;
                if owner_r / grid.1 == my_row && owner_c % grid.1 == my_col {
                    nonzeros.push((r, c));
                }
            }
        }
        // The adjacency matrix is a 0/1 matrix: duplicate edges in the input collapse to
        // a single nonzero, matching the deduplication `DistGraph` performs for the 1-D
        // path.
        nonzeros.sort_unstable();
        nonzeros.dedup();
        Matrix2d {
            grid,
            nonzeros,
            owners,
            global_n,
        }
    }

    /// Number of local nonzeros.
    pub fn local_nonzeros(&self) -> usize {
        self.nonzeros.len()
    }

    /// Number of matrix rows/columns (global vertices).
    pub fn num_vertices(&self) -> u64 {
        self.global_n
    }

    /// Patch the 2-D layout in place after a graph mutation and/or repartition,
    /// instead of rebuilding it from the full edge list.
    ///
    /// `delta` is the epoch's normalised graph mutation (replicated on every rank) and
    /// `new_parts` the 1-D partition of the *new* epoch (length `delta.new_n()`).
    /// Three things happen, all collectives:
    ///
    /// 1. local nonzeros hit by a deletion arc are dropped, and insertion arcs whose
    ///    grid cell (under the new owners) is this rank are adopted — both purely
    ///    local scans of the replicated delta;
    /// 2. retained nonzeros whose grid cell changed because an endpoint migrated to a
    ///    different owner are shipped to their new cell with one all-to-all (each
    ///    nonzero has exactly one holder, so nothing is duplicated or lost);
    /// 3. the replicated owner table is patched to `new_parts` and extended over the
    ///    delta's added vertices.
    ///
    /// The result is exactly the matrix [`Matrix2d::build`] would produce from the
    /// mutated edge list and `new_parts` — see the parity test — at the cost of the
    /// delta plus the migrated nonzeros rather than the whole matrix.
    pub fn apply_delta(
        &mut self,
        ctx: &RankCtx,
        delta: &GraphDelta,
        new_parts: &[i32],
    ) -> Matrix2dDeltaStats {
        let nranks = ctx.nranks();
        let rank = ctx.rank();
        let grid = self.grid;
        assert_eq!(
            new_parts.len() as u64,
            delta.new_n(),
            "one part per vertex of the mutated graph"
        );
        let new_owners: Vec<u32> = new_parts
            .iter()
            .map(|&p| (p.max(0) as u32).min(nranks as u32 - 1))
            .collect();
        let cell_of = |r: GlobalId, c: GlobalId, owners: &[u32]| -> usize {
            let owner_r = owners[r as usize] as usize;
            let owner_c = owners[c as usize] as usize;
            (owner_r / grid.1) * grid.1 + (owner_c % grid.1)
        };

        let mut stats = Matrix2dDeltaStats::default();
        let mut keep = Vec::with_capacity(self.nonzeros.len() + delta.insert_arcs().len());
        let mut sends: Vec<Vec<(GlobalId, GlobalId)>> = vec![Vec::new(); nranks];
        for &(r, c) in &self.nonzeros {
            if delta.is_deleted(r, c) {
                stats.deleted += 1;
                continue;
            }
            let target = cell_of(r, c, &new_owners);
            if target == rank {
                keep.push((r, c));
            } else {
                sends[target].push((r, c));
                stats.migrated_out += 1;
            }
        }
        for &(r, c) in delta.insert_arcs() {
            if cell_of(r, c, &new_owners) == rank {
                keep.push((r, c));
                stats.inserted += 1;
            }
        }
        for received in ctx.alltoallv(sends) {
            stats.migrated_in += received.len() as u64;
            keep.extend(received);
        }
        keep.sort_unstable();
        keep.dedup();
        self.nonzeros = keep;
        self.owners = new_owners;
        self.global_n = delta.new_n();
        stats
    }
}

/// What one [`Matrix2d::apply_delta`] cost, per rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Matrix2dDeltaStats {
    /// Local nonzeros dropped by deletion arcs.
    pub deleted: u64,
    /// Local nonzeros adopted from insertion arcs.
    pub inserted: u64,
    /// Retained nonzeros shipped to another rank because an endpoint changed owner.
    pub migrated_out: u64,
    /// Nonzeros received from other ranks for the same reason.
    pub migrated_in: u64,
}

/// Run `iterations` SpMV operations with the 2-D distribution. The x and y vectors stay
/// distributed by the 1-D partition (`owners`); each iteration expands x entries to the
/// ranks whose column block needs them and folds partial y sums back to the row owners.
pub fn spmv_2d(ctx: &RankCtx, matrix: &Matrix2d, iterations: usize) -> SpmvResult {
    let nranks = ctx.nranks();
    let rank = ctx.rank();
    let owners = &matrix.owners;
    // Vector entries owned by this rank (by the 1-D partition).
    let my_vertices: Vec<GlobalId> = (0..matrix.global_n)
        .filter(|&v| owners[v as usize] as usize == rank)
        .collect();
    let index_of: std::collections::HashMap<GlobalId, usize> = my_vertices
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i))
        .collect();
    let mut x = vec![1.0f64; my_vertices.len()];

    // Columns this rank needs (expand list) and rows it produces partials for (fold list).
    let needed_cols: Vec<GlobalId> = {
        let mut cols: Vec<GlobalId> = matrix.nonzeros.iter().map(|&(_, c)| c).collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    };
    let produced_rows: Vec<GlobalId> = {
        let mut rows: Vec<GlobalId> = matrix.nonzeros.iter().map(|&(r, _)| r).collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    };

    let bytes_before = ctx.stats().bytes_sent();
    let timer = Timer::start();
    for _ in 0..iterations {
        // Expand: request the x value of every needed column from its 1-D owner.
        let mut requests: Vec<Vec<GlobalId>> = vec![Vec::new(); nranks];
        for &c in &needed_cols {
            requests[owners[c as usize] as usize].push(c);
        }
        let incoming = ctx.alltoallv(requests.clone());
        let replies: Vec<Vec<f64>> = incoming
            .iter()
            .map(|req| req.iter().map(|&c| x[index_of[&c]]).collect())
            .collect();
        let answered = ctx.alltoallv(replies);
        let mut col_value: std::collections::HashMap<GlobalId, f64> =
            std::collections::HashMap::with_capacity(needed_cols.len());
        for (owner, values) in answered.into_iter().enumerate() {
            for (c, val) in requests[owner].iter().zip(values) {
                col_value.insert(*c, val);
            }
        }
        // Local multiply into partial row sums.
        let mut partial: std::collections::HashMap<GlobalId, f64> =
            std::collections::HashMap::with_capacity(produced_rows.len());
        for &(r, c) in &matrix.nonzeros {
            *partial.entry(r).or_insert(0.0) += col_value[&c];
        }
        // Fold: send partial sums to the 1-D owners of the rows.
        let mut fold_sends: Vec<Vec<(GlobalId, f64)>> = vec![Vec::new(); nranks];
        for (&r, &value) in &partial {
            fold_sends[owners[r as usize] as usize].push((r, value));
        }
        let folded = ctx.alltoallv(fold_sends);
        let mut y = vec![0.0f64; my_vertices.len()];
        for buf in folded {
            for (r, value) in buf {
                y[index_of[&r]] += value;
            }
        }
        let local_norm: f64 = y.iter().map(|a| a * a).sum();
        let norm = ctx.allreduce_sum_f64(&[local_norm])[0].sqrt().max(1e-30);
        for value in y.iter_mut() {
            *value /= norm;
        }
        x = y;
    }
    let seconds = ctx.allreduce_max_f64(&[timer.elapsed_secs()])[0];
    let comm_bytes = ctx.allreduce_scalar_sum_u64(ctx.stats().bytes_sent_since(bytes_before));
    let checksum = ctx.allreduce_sum_f64(&[x.iter().sum::<f64>()])[0];
    SpmvResult {
        seconds,
        comm_bytes,
        checksum,
    }
}

/// Convenience: build a [`DistGraph`] whose ownership follows `parts` and run the 1-D
/// SpMV on it.
pub fn spmv_1d_with_partition(
    ctx: &RankCtx,
    global_n: u64,
    edges: &[(GlobalId, GlobalId)],
    parts: &[i32],
    iterations: usize,
) -> SpmvResult {
    let dist = Distribution::from_parts(parts);
    let graph = DistGraph::from_shared_edges(ctx, dist, global_n, edges);
    spmv_1d(ctx, &graph, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrapulp::baselines;
    use xtrapulp_comm::Runtime;
    use xtrapulp_gen::{GraphConfig, GraphKind};

    fn test_graph() -> (u64, Vec<(GlobalId, GlobalId)>) {
        let el = GraphConfig::new(
            GraphKind::SmallWorld {
                num_vertices: 256,
                k: 3,
                rewire_probability: 0.1,
            },
            5,
        )
        .generate();
        (el.num_vertices, el.edges)
    }

    #[test]
    fn one_d_and_two_d_spmv_agree_on_checksum() {
        let (n, edges) = test_graph();
        let nranks = 4;
        let parts = baselines::random_partition(n, nranks, 3);
        let out = Runtime::run(nranks, |ctx| {
            let r1 = spmv_1d_with_partition(ctx, n, &edges, &parts, 5);
            let m = Matrix2d::build(ctx, n, &edges, &parts);
            let r2 = spmv_2d(ctx, &m, 5);
            (r1.checksum, r2.checksum)
        });
        for (c1, c2) in out {
            assert!(
                (c1 - c2).abs() < 1e-6,
                "1-D ({c1}) and 2-D ({c2}) SpMV disagree"
            );
        }
    }

    #[test]
    fn spmv_matches_across_rank_counts() {
        let (n, edges) = test_graph();
        let reference = Runtime::run(1, |ctx| {
            let parts = vec![0i32; n as usize];
            spmv_1d_with_partition(ctx, n, &edges, &parts, 4).checksum
        })[0];
        for nranks in [2usize, 4] {
            let parts = baselines::vertex_block_partition(n, nranks);
            let out = Runtime::run(nranks, |ctx| {
                spmv_1d_with_partition(ctx, n, &edges, &parts, 4).checksum
            });
            for c in out {
                assert!(
                    (c - reference).abs() < 1e-6,
                    "nranks={nranks}: {c} vs {reference}"
                );
            }
        }
    }

    #[test]
    fn better_partitions_move_fewer_bytes_in_1d() {
        let (n, edges) = test_graph();
        let nranks = 4;
        let random = baselines::random_partition(n, nranks, 3);
        let block = baselines::vertex_block_partition(n, nranks);
        let run = |parts: &Vec<i32>| {
            Runtime::run(nranks, |ctx| {
                spmv_1d_with_partition(ctx, n, &edges, parts, 3).comm_bytes
            })[0]
        };
        // The small-world ring has strong locality, so contiguous blocks cut far fewer
        // edges than random placement and must communicate less.
        assert!(run(&block) < run(&random));
    }

    #[test]
    fn grid_choice_is_valid() {
        for nranks in 1..=17usize {
            let (r, c) = choose_grid(nranks);
            assert_eq!(r * c, nranks, "nranks={nranks}");
        }
        assert_eq!(choose_grid(16), (4, 4));
        assert_eq!(choose_grid(8), (2, 4));
    }

    #[test]
    fn comm_accounting_saturates_instead_of_wrapping() {
        // Counters reset between the `before` capture and the read: the delta must
        // clamp to zero, not panic (debug) or wrap to ~u64::MAX (release). Both SpMV
        // kernels account their traffic through this shared helper.
        let stats = xtrapulp_comm::CommStats::new();
        assert_eq!(stats.bytes_sent_since(1000), 0);
        assert_eq!(stats.bytes_sent_since(0), stats.bytes_sent());
    }

    #[test]
    fn apply_delta_matches_a_full_rebuild() {
        let (n, edges) = test_graph();
        let nranks = 6;
        let parts = baselines::vertex_block_partition(n, nranks);

        // Churn the graph: delete a spread of existing edges, insert fresh ones
        // (including onto two newly added vertices)...
        let deletes: Vec<(GlobalId, GlobalId)> = edges.iter().step_by(9).copied().collect();
        let inserts: Vec<(GlobalId, GlobalId)> =
            vec![(0, n / 2), (3, n - 1), (n, 1), (n + 1, 0), (n, n + 1)];
        let delta = GraphDelta::new(n, 2, &inserts, &deletes);

        // ...and repartition: every 5th vertex moves to the next part, new vertices
        // land on parts 0 and 1.
        let mut new_parts = parts.clone();
        for (v, p) in new_parts.iter_mut().enumerate() {
            if v % 5 == 0 {
                *p = (*p + 1) % nranks as i32;
            }
        }
        new_parts.push(0);
        new_parts.push(1);

        // Reference: the mutated edge list, rebuilt from scratch.
        let delete_set: std::collections::BTreeSet<(GlobalId, GlobalId)> = deletes
            .iter()
            .flat_map(|&(u, v)| [(u, v), (v, u)])
            .collect();
        let mut new_edges: Vec<(GlobalId, GlobalId)> = edges
            .iter()
            .copied()
            .filter(|&(u, v)| !delete_set.contains(&(u, v)))
            .collect();
        new_edges.extend(inserts.iter().copied());

        let out = Runtime::run(nranks, |ctx| {
            let mut patched = Matrix2d::build(ctx, n, &edges, &parts);
            let stats = patched.apply_delta(ctx, &delta, &new_parts);
            let rebuilt = Matrix2d::build(ctx, n + 2, &new_edges, &new_parts);
            assert_eq!(patched.nonzeros, rebuilt.nonzeros, "rank {}", ctx.rank());
            assert_eq!(patched.owners, rebuilt.owners);
            assert_eq!(patched.num_vertices(), n + 2);
            // The patched and rebuilt layouts must also multiply identically.
            let a = spmv_2d(ctx, &patched, 3);
            let b = spmv_2d(ctx, &rebuilt, 3);
            assert!((a.checksum - b.checksum).abs() < 1e-12);
            stats
        });
        // The repartition moved vertices, so some nonzeros must actually have
        // migrated between ranks — and every shipped nonzero arrived somewhere.
        let migrated_out: u64 = out.iter().map(|s| s.migrated_out).sum();
        let migrated_in: u64 = out.iter().map(|s| s.migrated_in).sum();
        assert!(migrated_out > 0);
        assert_eq!(migrated_out, migrated_in);
        assert!(out.iter().map(|s| s.deleted).sum::<u64>() > 0);
        assert!(out.iter().map(|s| s.inserted).sum::<u64>() > 0);
    }

    #[test]
    fn matrix2d_covers_every_nonzero_exactly_once() {
        let (n, edges) = test_graph();
        let nranks = 6;
        let parts = baselines::vertex_block_partition(n, nranks);
        let out = Runtime::run(nranks, |ctx| {
            Matrix2d::build(ctx, n, &edges, &parts).local_nonzeros() as u64
        });
        let total: u64 = out.iter().sum();
        // Each unique undirected edge contributes exactly two nonzeros.
        let unique: std::collections::BTreeSet<(u64, u64)> = edges
            .iter()
            .filter(|&&(u, v)| u != v && u < n && v < n)
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect();
        assert_eq!(total, unique.len() as u64 * 2);
    }
}
