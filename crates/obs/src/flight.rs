//! Always-on flight recorder: a bounded, process-global ring of structured
//! health events, dumped to a post-mortem file when something goes wrong.
//!
//! Distinct from the opt-in [`crate::trace`] rings: the flight recorder is
//! never disabled, holds coarse *health* events (collective entries/exits,
//! epoch publishes, faults, recoveries, watchdog trips) rather than
//! fine-grained spans, and survives at a fixed memory cost
//! ([`ring_bytes`]). On `CommError::Aborted`, a worker panic, a watchdog
//! trip, or an explicit request, [`dump`] snapshots the ring — without
//! resetting it — into a JSON post-mortem under
//! `$XTRAPULP_POSTMORTEM_DIR` (default: the system temp dir). The comm
//! runtime's `export_flight` merges every process's ring cross-rank via the
//! same gather the trace exporter uses, so one file explains a bad
//! 4-process run.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use crate::wire::{put_i64, put_str, put_u16, put_u32, put_u64, DecodeError, Reader};

/// Events the ring holds before overwriting the oldest (48 B/event → 384 KiB).
pub const FLIGHT_CAPACITY: usize = 8192;

const MAGIC: u32 = 0x544C_4658; // "XFLT"
const VERSION: u16 = 1;

/// What kind of health event a [`FlightEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightKind {
    /// A coarse state transition (worker start/stop, session spawn, abort).
    State = 0,
    /// A rank entered a collective (`name` = collective kind, `a` = frame).
    CollectiveEnter = 1,
    /// A rank left a collective (`a` = frame, `b` = elapsed ns).
    CollectiveExit = 2,
    /// The serving worker published an epoch (`a` = epoch, `b` = vertices).
    EpochPublish = 3,
    /// A transport/durability fault surfaced (`a` = peer or detail code).
    Fault = 4,
    /// A recovery attempt completed (`a` = total recoveries).
    Recovery = 5,
    /// The stall watchdog tripped (`name` = collective, `a` = frame,
    /// `b` = milliseconds waited without progress).
    Watchdog = 6,
}

impl FlightKind {
    pub fn from_u8(v: u8) -> Option<FlightKind> {
        match v {
            0 => Some(FlightKind::State),
            1 => Some(FlightKind::CollectiveEnter),
            2 => Some(FlightKind::CollectiveExit),
            3 => Some(FlightKind::EpochPublish),
            4 => Some(FlightKind::Fault),
            5 => Some(FlightKind::Recovery),
            6 => Some(FlightKind::Watchdog),
            _ => None,
        }
    }

    /// Stable lowercase label used in post-mortem JSON.
    pub fn label(self) -> &'static str {
        match self {
            FlightKind::State => "state",
            FlightKind::CollectiveEnter => "collective_enter",
            FlightKind::CollectiveExit => "collective_exit",
            FlightKind::EpochPublish => "epoch_publish",
            FlightKind::Fault => "fault",
            FlightKind::Recovery => "recovery",
            FlightKind::Watchdog => "watchdog",
        }
    }
}

/// One recorded health event. `name` is static so recording never allocates.
#[derive(Clone, Copy, Debug)]
pub struct FlightEvent {
    /// Monotonic nanoseconds ([`crate::trace::now_ns`] timeline).
    pub t_ns: u64,
    /// Rank of the recording thread, or -1 when unranked (serve worker, main).
    pub rank: i64,
    pub kind: FlightKind,
    pub name: &'static str,
    pub a: u64,
    pub b: u64,
}

struct FlightRing {
    events: Vec<FlightEvent>,
    head: usize,
    dropped: u64,
}

fn ring() -> &'static parking_lot::Mutex<FlightRing> {
    static RING: OnceLock<parking_lot::Mutex<FlightRing>> = OnceLock::new();
    RING.get_or_init(|| {
        parking_lot::Mutex::new(FlightRing {
            events: Vec::with_capacity(FLIGHT_CAPACITY),
            head: 0,
            dropped: 0,
        })
    })
}

thread_local! {
    static THREAD_RANK: std::cell::Cell<i64> = const { std::cell::Cell::new(-1) };
}

/// Label the current thread with a rank for subsequent flight events.
/// Forwarded from [`crate::trace::set_thread_rank`], so rank worker threads
/// need no extra call.
pub fn set_thread_rank(rank: usize) {
    THREAD_RANK.with(|r| r.set(rank as i64));
}

/// Record one health event. Always on; bounded; never allocates.
pub fn record(kind: FlightKind, name: &'static str, a: u64, b: u64) {
    let ev = FlightEvent {
        t_ns: crate::trace::now_ns(),
        rank: THREAD_RANK.with(|r| r.get()),
        kind,
        name,
        a,
        b,
    };
    let mut ring = ring().lock();
    if ring.events.len() < FLIGHT_CAPACITY {
        ring.events.push(ev);
        return;
    }
    let head = ring.head;
    ring.events[head] = ev;
    ring.head = (head + 1) % FLIGHT_CAPACITY;
    ring.dropped += 1;
}

/// Copy the ring's current contents, oldest first, **without** resetting it —
/// a post-mortem dump must not erase the evidence for a later, better one.
pub fn snapshot() -> (Vec<FlightEvent>, u64) {
    let ring = ring().lock();
    let mut out = Vec::with_capacity(ring.events.len());
    out.extend_from_slice(&ring.events[ring.head..]);
    out.extend_from_slice(&ring.events[..ring.head]);
    (out, ring.dropped)
}

/// Fixed resident cost of the flight ring, for memory accounting.
pub fn ring_bytes() -> u64 {
    (FLIGHT_CAPACITY * std::mem::size_of::<FlightEvent>()) as u64
}

/// One decoded flight event, timestamps on the coordinator's timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct OwnedFlightEvent {
    pub t_ns: i64,
    pub rank: i64,
    pub kind: FlightKind,
    pub name: String,
    pub a: u64,
    pub b: u64,
}

/// One process's decoded flight log.
#[derive(Clone, Debug, PartialEq)]
pub struct OwnedFlightLog {
    pub dropped: u64,
    pub events: Vec<OwnedFlightEvent>,
}

/// Serialise a flight snapshot into one blob for the cross-rank gather,
/// shifting every timestamp by `clock_offset_ns` onto the gathering rank's
/// timeline. Same framing discipline as [`crate::wire::encode_traces`].
pub fn encode_flight(events: &[FlightEvent], dropped: u64, clock_offset_ns: i64) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, MAGIC);
    put_u16(&mut out, VERSION);
    put_u64(&mut out, dropped);
    let mut names: Vec<&'static str> = Vec::new();
    for ev in events {
        if !names.contains(&ev.name) {
            names.push(ev.name);
        }
    }
    put_u32(&mut out, names.len() as u32);
    for n in &names {
        put_str(&mut out, n);
    }
    put_u32(&mut out, events.len() as u32);
    for ev in events {
        let idx = names.iter().position(|n| *n == ev.name).unwrap_or(0) as u16;
        put_u16(&mut out, idx);
        out.push(ev.kind as u8);
        put_i64(&mut out, ev.rank);
        put_i64(&mut out, (ev.t_ns as i64).saturating_add(clock_offset_ns));
        put_u64(&mut out, ev.a);
        put_u64(&mut out, ev.b);
    }
    out
}

/// Decode one blob produced by [`encode_flight`]. An empty blob decodes to an
/// empty log.
pub fn decode_flight(bytes: &[u8]) -> Result<OwnedFlightLog, DecodeError> {
    if bytes.is_empty() {
        return Ok(OwnedFlightLog {
            dropped: 0,
            events: Vec::new(),
        });
    }
    let mut r = Reader::new(bytes);
    let magic = r.u32()?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let dropped = r.u64()?;
    let nnames = r.u32()? as usize;
    let mut names = Vec::with_capacity(nnames.min(4096));
    for _ in 0..nnames {
        names.push(r.str()?);
    }
    let nevents = r.u32()? as usize;
    let mut events = Vec::with_capacity(nevents.min(1 << 20));
    for _ in 0..nevents {
        let idx = r.u16()?;
        let name = names
            .get(idx as usize)
            .cloned()
            .ok_or(DecodeError::BadNameIndex(idx))?;
        let kind = r.u8()?;
        let kind = FlightKind::from_u8(kind).ok_or(DecodeError::BadPhase(kind))?;
        let rank = r.i64()?;
        let t_ns = r.i64()?;
        let a = r.u64()?;
        let b = r.u64()?;
        events.push(OwnedFlightEvent {
            t_ns,
            rank,
            kind,
            name,
            a,
            b,
        });
    }
    Ok(OwnedFlightLog { dropped, events })
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render one merged post-mortem JSON document from any number of per-process
/// flight logs: every event, globally sorted by timestamp, one object per
/// line, so `grep watchdog` on the dump answers "who stalled where".
pub fn postmortem_json(reason: &str, logs: &[OwnedFlightLog]) -> String {
    let mut events: Vec<&OwnedFlightEvent> = logs.iter().flat_map(|l| l.events.iter()).collect();
    events.sort_by_key(|e| e.t_ns);
    let dropped: u64 = logs.iter().map(|l| l.dropped).sum();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("\"reason\":\"{}\",\n", json_escape(reason)));
    out.push_str(&format!("\"pid\":{},\n", std::process::id()));
    out.push_str(&format!("\"dropped\":{dropped},\n"));
    out.push_str("\"events\":[\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str(&format!(
            "{{\"t_ns\":{},\"rank\":{},\"kind\":\"{}\",\"name\":\"{}\",\"a\":{},\"b\":{}}}{}\n",
            ev.t_ns,
            ev.rank,
            ev.kind.label(),
            json_escape(&ev.name),
            ev.a,
            ev.b,
            if i + 1 < events.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n}\n");
    out
}

/// Where post-mortem dumps land: `$XTRAPULP_POSTMORTEM_DIR` when set,
/// otherwise the system temp dir.
pub fn dump_dir() -> PathBuf {
    std::env::var_os("XTRAPULP_POSTMORTEM_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir)
}

/// The file this process's [`dump`] writes.
pub fn dump_path() -> PathBuf {
    dump_dir().join(format!("xtrapulp-postmortem-{}.json", std::process::id()))
}

/// Write a merged post-mortem document to an explicit path, atomically
/// (temp file + rename).
pub fn write_postmortem(path: &Path, reason: &str, logs: &[OwnedFlightLog]) -> std::io::Result<()> {
    let json = postmortem_json(reason, logs);
    let tmp = path.with_extension("json.partial");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(json.as_bytes())?;
        f.flush()?;
    }
    std::fs::rename(&tmp, path)
}

/// Snapshot this process's flight ring and write it as a post-mortem JSON
/// file named after the pid (see [`dump_path`]). The ring keeps recording;
/// repeated dumps overwrite the file with a fresher snapshot. Never panics —
/// it is called from unwind paths.
pub fn dump(reason: &str) -> std::io::Result<PathBuf> {
    let (events, dropped) = snapshot();
    let log = OwnedFlightLog {
        dropped,
        events: events
            .iter()
            .map(|e| OwnedFlightEvent {
                t_ns: e.t_ns as i64,
                rank: e.rank,
                kind: e.kind,
                name: e.name.to_string(),
                a: e.a,
                b: e.b,
            })
            .collect(),
    };
    let path = dump_path();
    write_postmortem(&path, reason, &[log])?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_snapshot_preserves_order_and_ring() {
        record(FlightKind::State, "test_flight_a", 1, 2);
        record(FlightKind::EpochPublish, "test_flight_b", 3, 4);
        let (events, _) = snapshot();
        let a = events.iter().position(|e| e.name == "test_flight_a");
        let b = events.iter().position(|e| e.name == "test_flight_b");
        let (a, b) = (a.expect("a recorded"), b.expect("b recorded"));
        assert!(a < b, "snapshot is oldest-first");
        // Snapshot does not reset: a second snapshot still sees both.
        let (again, _) = snapshot();
        assert!(again.iter().any(|e| e.name == "test_flight_a"));
    }

    #[test]
    fn codec_roundtrips_with_offset() {
        let events = vec![
            FlightEvent {
                t_ns: 100,
                rank: 2,
                kind: FlightKind::CollectiveEnter,
                name: "allreduce",
                a: 7,
                b: 0,
            },
            FlightEvent {
                t_ns: 250,
                rank: 2,
                kind: FlightKind::Watchdog,
                name: "allreduce",
                a: 7,
                b: 150,
            },
        ];
        let blob = encode_flight(&events, 3, -40);
        let log = decode_flight(&blob).unwrap();
        assert_eq!(log.dropped, 3);
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.events[0].t_ns, 60);
        assert_eq!(log.events[1].kind, FlightKind::Watchdog);
        assert_eq!(log.events[1].name, "allreduce");
        assert_eq!(log.events[1].b, 150);
        // Truncated blobs error, never panic.
        assert_eq!(decode_flight(&blob[..5]), Err(DecodeError::Truncated));
        // Empty blob is an empty log.
        assert_eq!(decode_flight(&[]).unwrap().events.len(), 0);
    }

    #[test]
    fn dump_writes_a_postmortem_file() {
        record(FlightKind::Fault, "test_flight_dump", 11, 0);
        let path = dump("unit-test").expect("dump succeeds");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"reason\":\"unit-test\""));
        assert!(body.contains("test_flight_dump"));
        assert!(body.contains("\"kind\":\"fault\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn postmortem_merges_and_sorts_across_logs() {
        let mk = |t, rank, name: &str| OwnedFlightEvent {
            t_ns: t,
            rank,
            kind: FlightKind::State,
            name: name.to_string(),
            a: 0,
            b: 0,
        };
        let a = OwnedFlightLog {
            dropped: 1,
            events: vec![mk(300, 0, "late")],
        };
        let b = OwnedFlightLog {
            dropped: 2,
            events: vec![mk(100, 1, "early")],
        };
        let json = postmortem_json("merge", &[a, b]);
        assert!(json.contains("\"dropped\":3"));
        let early = json.find("early").unwrap();
        let late = json.find("late").unwrap();
        assert!(early < late, "events are globally time-sorted");
    }
}
