//! # xtrapulp-obs — workspace-wide observability
//!
//! One crate, four pieces, no dependencies beyond the vendored stand-ins:
//!
//! - [`trace`]: a tracing layer gated on a single relaxed atomic load.
//!   Per-thread ring buffers record span begin/end and instant events with
//!   monotonic-nanosecond timestamps; [`trace::span`] guards make
//!   instrumentation one line per site.
//! - [`hist`]: HDR-style log-bucketed atomic histograms — mergeable across
//!   ranks, subtractable for windowed percentiles, wait-free to record.
//! - [`registry`] + [`endpoint`]: a process-global metrics registry
//!   (counters / gauges / histograms) rendered as Prometheus text
//!   exposition, served live by a lightweight [`endpoint::MetricsServer`].
//! - [`wire`] + [`export`]: binary trace blobs for the cross-rank gather and
//!   the chrome://tracing Trace Event Format exporter rank 0 writes.
//! - [`flight`] + [`mem`]: the continuous health plane — an always-on
//!   bounded flight recorder dumped to a post-mortem file on failure, and
//!   per-subsystem byte accounting with a process RSS sampler.
//!
//! The crate is a leaf: `comm`, `core`, `serve`, `analytics`, `api`, and
//! `bench` all depend on it, never the reverse.

pub mod endpoint;
pub mod export;
pub mod flight;
pub mod hist;
pub mod mem;
pub mod registry;
pub mod trace;
pub mod wire;

pub use endpoint::MetricsServer;
pub use flight::{FlightEvent, FlightKind, OwnedFlightLog};
pub use hist::{Histogram, HistogramSnapshot};
pub use trace::{instant, set_enabled, set_thread_rank, span, span_with, Span};
pub use wire::{decode_traces, encode_traces, OwnedThreadTrace};
