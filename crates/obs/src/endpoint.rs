//! Live metrics plane: a minimal HTTP/1.1 listener serving the metrics
//! registry as Prometheus text exposition.
//!
//! One background thread accepts connections, answers any `GET` with the
//! current [`crate::registry::render`] output, and exits promptly on
//! shutdown. It is deliberately not a web server: one request per
//! connection, no keep-alive, no routing — exactly what a scraper or
//! `curl` needs.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running metrics endpoint. Dropping it stops the listener thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9184"`, or port 0 for an ephemeral
    /// port) and start serving the registry.
    pub fn bind(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("obs-metrics".to_string())
            .spawn(move || serve_loop(listener, stop_thread))?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener thread and wait for it to exit.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed); // ordering: shutdown flag; accept loop polls it, no data is published through it
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_loop(listener: TcpListener, stop: Arc<AtomicBool>) {
    // ordering: shutdown flag poll; one extra accept iteration is harmless
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: scrapes are rare and tiny, a thread per
                // connection would be overkill.
                let _ = serve_one(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_one(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read until the end of the request head (or the timeout / 8 KiB cap —
    // whichever comes first). The request content is irrelevant: every
    // request gets the metrics page.
    let mut buf = [0u8; 1024];
    let mut head = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    // Refresh the process-level memory gauges so every scrape observes a
    // fresh RSS sample alongside the subsystem accounting.
    crate::mem::sample_process();
    let body = crate::registry::render();
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn scrape_roundtrip() {
        let c = crate::registry::counter("test_ep_scrapes_total");
        c.add(7);
        let mut server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let response = scrape(server.local_addr());
        assert!(response.starts_with("HTTP/1.1 200 OK"));
        assert!(response.contains("text/plain"));
        assert!(response.contains("test_ep_scrapes_total 7"));
        // Values move between scrapes.
        c.add(1);
        let response2 = scrape(server.local_addr());
        assert!(response2.contains("test_ep_scrapes_total 8"));
        server.shutdown();
        // After shutdown the port stops answering.
        assert!(TcpStream::connect(server.local_addr()).is_err());
    }

    #[test]
    fn shutdown_is_idempotent_and_prompt() {
        let mut server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let t0 = std::time::Instant::now();
        server.shutdown();
        server.shutdown();
        assert!(t0.elapsed() < Duration::from_secs(2));
    }
}
