//! Byte-level memory accounting: per-subsystem gauges plus a process RSS
//! sampler, all in the metrics registry.
//!
//! Long-lived structures (epoch store, ingest queue, WAL, ghost tables,
//! trace/flight rings) report their approximate resident bytes through
//! [`set`], which lands in the registry as `mem_bytes{subsystem="..."}`.
//! [`accounted_total`] sums every subsystem gauge, and [`rss_bytes`] reads
//! the kernel's view, so a soak test can assert the accounting *explains*
//! the process's growth rather than trusting it blindly.
//!
//! [`sample_process`] refreshes the RSS gauge and the rings' fixed costs; the
//! metrics endpoint calls it before every render, so each scrape observes a
//! fresh sample. It is deliberately **not** a registry collector: `render`
//! holds the registry lock while running collectors, so a collector that
//! creates gauges would deadlock.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::registry::{self, Gauge};

fn gauges() -> &'static Mutex<BTreeMap<String, Gauge>> {
    static GAUGES: OnceLock<Mutex<BTreeMap<String, Gauge>>> = OnceLock::new();
    GAUGES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, BTreeMap<String, Gauge>> {
    gauges().lock().unwrap_or_else(|e| e.into_inner())
}

/// Set the accounted byte gauge for one subsystem
/// (`mem_bytes{subsystem="<name>"}`). Cheap after the first call per name.
pub fn set(subsystem: &str, bytes: u64) {
    let mut map = lock();
    let g = map
        .entry(subsystem.to_string())
        .or_insert_with(|| registry::gauge(&format!("mem_bytes{{subsystem=\"{subsystem}\"}}")));
    g.set(bytes as f64);
}

/// Sum of every subsystem byte gauge set so far (excludes the RSS gauge).
pub fn accounted_total() -> u64 {
    lock().values().map(|g| g.get().max(0.0) as u64).sum()
}

/// The process's resident set size in bytes, from `/proc/self/status`
/// (`VmRSS`). `None` off Linux or if the field is missing.
pub fn rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Refresh the process-level gauges: RSS (`process_rss_bytes`) and the fixed
/// costs of the trace and flight rings. Called by the metrics endpoint before
/// every render; tests and soak drivers call it directly.
pub fn sample_process() {
    set("trace_rings", crate::trace::rings_bytes());
    set("flight_ring", crate::flight::ring_bytes());
    if let Some(rss) = rss_bytes() {
        static RSS: OnceLock<Gauge> = OnceLock::new();
        RSS.get_or_init(|| registry::gauge("process_rss_bytes"))
            .set(rss as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_updates_gauge_and_total() {
        set("test_mem_a", 1000);
        set("test_mem_b", 500);
        set("test_mem_a", 1500); // overwrite, not accumulate
        assert!(accounted_total() >= 2000);
        let text = registry::render();
        assert!(text.contains("mem_bytes{subsystem=\"test_mem_a\"} 1500.0"));
        assert!(text.contains("mem_bytes{subsystem=\"test_mem_b\"} 500.0"));
    }

    #[test]
    fn rss_sampler_reads_a_positive_resident_size() {
        let rss = rss_bytes().expect("Linux exposes VmRSS");
        assert!(rss > 1024 * 1024, "a running test process exceeds 1 MiB");
        sample_process();
        let text = registry::render();
        assert!(text.contains("process_rss_bytes"));
        assert!(text.contains("mem_bytes{subsystem=\"flight_ring\"}"));
        assert!(text.contains("mem_bytes{subsystem=\"trace_rings\"}"));
    }
}
