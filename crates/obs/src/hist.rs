//! Log-bucketed atomic latency histograms (HDR-style).
//!
//! A [`Histogram`] records `u64` values (by convention nanoseconds) into
//! logarithmically spaced buckets with [`SUB_BUCKETS`] linear sub-buckets per
//! octave, bounding the relative quantile error at `1/SUB_BUCKETS` (~3%).
//! Recording is a single relaxed `fetch_add` on an `AtomicU64` bucket plus two
//! for count/sum, so histograms are safe to share across threads and cheap
//! enough for per-collective latencies. Snapshots are plain data: mergeable
//! across ranks and subtractable for windowed percentiles.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

/// Linear sub-buckets per power-of-two octave. Must be a power of two.
pub const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
/// Total bucket count: values below `SUB_BUCKETS` get exact linear buckets,
/// every octave above contributes `SUB_BUCKETS` more.
pub const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// Map a value to its bucket index.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros(); // >= SUB_BITS
    let shift = exp - SUB_BITS;
    let sub = ((value >> shift) as usize) & (SUB_BUCKETS - 1);
    SUB_BUCKETS + (exp - SUB_BITS) as usize * SUB_BUCKETS + sub
}

/// Lower bound of the value range covered by a bucket index (the
/// representative value reported for percentiles in that bucket).
fn bucket_floor(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let octave = (index - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = (index - SUB_BUCKETS) % SUB_BUCKETS;
    let exp = octave as u32 + SUB_BITS;
    (1u64 << exp) + ((sub as u64) << (exp - SUB_BITS))
}

/// A concurrent log-bucketed histogram of `u64` values.
///
/// All operations are lock-free; `record` is wait-free. The histogram never
/// saturates: values beyond the largest bucket clamp into it and `max` keeps
/// the exact observed maximum.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The bucket array is huge and mostly zero; summarise instead.
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed)) // ordering: stat read; snapshots tolerate cross-cell lag
            .field("sum", &self.sum.load(Ordering::Relaxed)) // ordering: stat read; snapshots tolerate cross-cell lag
            .field("max", &self.max.load(Ordering::Relaxed)) // ordering: stat read; snapshots tolerate cross-cell lag
            .finish_non_exhaustive()
    }
}

impl Histogram {
    pub fn new() -> Self {
        let buckets = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Wait-free: three relaxed `fetch_add`s plus a
    /// `fetch_max`.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
        self.count.fetch_add(1, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
        self.sum.fetch_add(value, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
        self.max.fetch_max(value, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
    }

    /// Record a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // ordering: stat read; snapshots tolerate cross-cell lag
    }

    /// Take a consistent-enough snapshot for reporting. Concurrent recording
    /// may skew individual buckets by in-flight increments; percentile error
    /// from a torn snapshot is bounded by the number of in-flight recorders.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed)) // ordering: stat read; snapshots tolerate cross-cell lag
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed), // ordering: stat read; snapshots tolerate cross-cell lag
            sum: self.sum.load(Ordering::Relaxed), // ordering: stat read; snapshots tolerate cross-cell lag
            max: self.max.load(Ordering::Relaxed), // ordering: stat read; snapshots tolerate cross-cell lag
        }
    }

    /// Reset every bucket to zero. Not linearizable against concurrent
    /// recorders; intended for tests and between benchmark phases.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed); // ordering: plain publish; readers only need eventual visibility
        }
        self.count.store(0, Ordering::Relaxed); // ordering: plain publish; readers only need eventual visibility
        self.sum.store(0, Ordering::Relaxed); // ordering: plain publish; readers only need eventual visibility
        self.max.store(0, Ordering::Relaxed); // ordering: plain publish; readers only need eventual visibility
    }
}

/// An owned, plain-data copy of a histogram's state.
///
/// Snapshots merge across ranks (`merge`) and subtract for windowed
/// percentiles (`delta_since`). JSON serialisation emits the summary only
/// (count, mean, p50/p90/p99, max) — not the bucket array.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the lower bound of the bucket
    /// containing the `ceil(q * count)`-th recorded value (so `p100 <= max`
    /// within one bucket's resolution). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(i).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another snapshot into this one (e.g. merging per-rank histograms).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The values recorded since `earlier` was taken, as a new snapshot.
    /// `earlier` must be an older snapshot of the same histogram; buckets
    /// subtract saturating so a racy pair degrades gracefully.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(earlier.buckets.iter())
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            // max is not subtractable; keep the later max as an upper bound.
            max: self.max,
        }
    }

    /// Iterate non-empty buckets as `(lower_bound, count)` pairs, in
    /// ascending value order. Used by the Prometheus exposition.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_floor(i), c))
    }
}

impl Serialize for HistogramSnapshot {
    fn json_into(&self, out: &mut String) {
        out.push('{');
        out.push_str("\"count\":");
        self.count.json_into(out);
        out.push_str(",\"mean\":");
        self.mean().json_into(out);
        out.push_str(",\"p50\":");
        self.p50().json_into(out);
        out.push_str(",\"p90\":");
        self.p90().json_into(out);
        out.push_str(",\"p99\":");
        self.p99().json_into(out);
        out.push_str(",\"max\":");
        self.max.json_into(out);
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_roundtrip_is_monotone_and_tight() {
        let mut last = 0usize;
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= last || v < 64, "indices monotone for v={v}");
            last = i.max(last);
            let floor = bucket_floor(i);
            assert!(floor <= v, "floor {floor} > value {v}");
            // Relative error bound: floor is within 1/SUB_BUCKETS of v.
            if v >= SUB_BUCKETS as u64 {
                assert!(
                    (v - floor) as f64 / v as f64 <= 1.0 / SUB_BUCKETS as f64 + 1e-12,
                    "bucket too coarse for {v}: floor {floor}"
                );
            } else {
                assert_eq!(floor, v);
            }
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn exact_percentiles_on_small_values() {
        let h = Histogram::new();
        for v in 1..=20u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 20);
        assert_eq!(s.p50(), 10);
        assert_eq!(s.p90(), 18);
        assert_eq!(s.quantile(1.0), 20);
        assert_eq!(s.max(), 20);
        assert!((s.mean() - 10.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_relative_error_bounded() {
        let h = Histogram::new();
        // Uniform values over a wide range.
        for i in 0..10_000u64 {
            h.record(i * 1_000 + 7);
        }
        let s = h.snapshot();
        for (q, expect) in [(0.5, 5_000_000u64), (0.99, 9_900_000u64)] {
            let got = s.quantile(q);
            let err = (got as f64 - expect as f64).abs() / expect as f64;
            assert!(err < 0.05, "q={q} got {got} expected ~{expect} err {err}");
        }
    }

    #[test]
    fn merge_equals_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let u = Histogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 13)
            } else {
                b.record(v * 13)
            }
            u.record(v * 13);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, u.snapshot());
    }

    #[test]
    fn delta_since_isolates_window() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(10);
        }
        let early = h.snapshot();
        for _ in 0..50 {
            h.record(1_000_000);
        }
        let d = h.snapshot().delta_since(&early);
        assert_eq!(d.count(), 50);
        // All windowed values were ~1ms, so p50 must be in that octave.
        assert!(d.p50() > 900_000, "windowed p50 {} too small", d.p50());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(Histogram::new());
        let threads = 8;
        let per = 20_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per {
                        h.record((t as u64 + 1) * 100 + i % 7);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count(), threads as u64 * per);
        let total: u64 = s.nonzero_buckets().map(|(_, c)| c).sum();
        assert_eq!(total, threads as u64 * per);
    }

    #[test]
    fn snapshot_serialises_summary_only() {
        let h = Histogram::new();
        h.record(5);
        h.record(15);
        let json = serde::json::to_string(&h.snapshot());
        assert!(json.contains("\"count\":2"));
        assert!(json.contains("\"p50\":"));
        assert!(json.contains("\"max\":15"));
        assert!(!json.contains("buckets"));
    }
}
