//! Chrome Trace Event Format export (the JSON Array / Object format that
//! `chrome://tracing` and Perfetto load).
//!
//! Each rank becomes a "process" (`pid` = rank number), each recording thread
//! a "thread" within it; threads without a rank label (serve workers,
//! analytics consumers, benchmark drivers) are grouped under a synthetic
//! "host" process so they still show on the timeline. Timestamps convert from
//! aligned nanoseconds to the format's fractional microseconds.

use serde::write_json_str;

use crate::trace::Phase;
use crate::wire::OwnedThreadTrace;

/// Synthetic pid for threads with no rank label.
pub const HOST_PID: u32 = 1_000_000;

fn push_common(out: &mut String, pid: u32, tid: usize, name: &str, ph: char, ts_us: f64) {
    out.push_str("{\"pid\":");
    out.push_str(&pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&tid.to_string());
    out.push_str(",\"name\":");
    write_json_str(name, out);
    out.push_str(",\"ph\":\"");
    out.push(ph);
    out.push_str("\",\"ts\":");
    // Emit with fixed 3-decimal precision: nanosecond resolution in
    // microsecond units, locale-free.
    out.push_str(&format!("{ts_us:.3}"));
}

fn push_metadata(out: &mut String, pid: u32, tid: usize, kind: &str, name: &str, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("{\"pid\":");
    out.push_str(&pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&tid.to_string());
    out.push_str(",\"name\":");
    write_json_str(kind, out);
    out.push_str(",\"ph\":\"M\",\"args\":{\"name\":");
    write_json_str(name, out);
    out.push_str("}}");
}

/// Render decoded traces as one Trace Event Format JSON document.
pub fn chrome_trace_json(traces: &[OwnedThreadTrace]) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;

    // Process-name metadata: one per distinct pid.
    let mut pids: Vec<u32> = traces.iter().map(|t| t.rank.unwrap_or(HOST_PID)).collect();
    pids.sort_unstable();
    pids.dedup();
    for pid in &pids {
        let pname = if *pid == HOST_PID {
            "host threads".to_string()
        } else {
            format!("rank {pid}")
        };
        push_metadata(&mut out, *pid, 0, "process_name", &pname, &mut first);
    }

    for (tid, t) in traces.iter().enumerate() {
        let pid = t.rank.unwrap_or(HOST_PID);
        push_metadata(&mut out, pid, tid, "thread_name", &t.thread, &mut first);
        for ev in &t.events {
            if !first {
                out.push(',');
            }
            first = false;
            let ph = match ev.phase {
                Phase::Begin => 'B',
                Phase::End => 'E',
                Phase::Instant => 'i',
            };
            let ts_us = ev.t_ns as f64 / 1_000.0;
            push_common(&mut out, pid, tid, &ev.name, ph, ts_us);
            if ev.phase == Phase::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            if ev.arg != 0 {
                out.push_str(",\"args\":{\"v\":");
                out.push_str(&ev.arg.to_string());
                out.push('}');
            }
            out.push('}');
        }
        if t.dropped > 0 {
            if !first {
                out.push(',');
            }
            first = false;
            push_common(&mut out, pid, tid, "events_dropped", 'i', 0.0);
            out.push_str(",\"s\":\"t\",\"args\":{\"v\":");
            out.push_str(&t.dropped.to_string());
            out.push_str("}}");
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::OwnedEvent;

    fn trace(rank: Option<u32>, thread: &str, names: &[&str]) -> OwnedThreadTrace {
        let mut events = Vec::new();
        for (i, n) in names.iter().enumerate() {
            events.push(OwnedEvent {
                name: n.to_string(),
                phase: Phase::Begin,
                t_ns: (i as i64) * 1000,
                arg: 0,
            });
            events.push(OwnedEvent {
                name: n.to_string(),
                phase: Phase::End,
                t_ns: (i as i64) * 1000 + 500,
                arg: i as u64,
            });
        }
        OwnedThreadTrace {
            rank,
            thread: thread.to_string(),
            dropped: 0,
            events,
        }
    }

    #[test]
    fn export_is_balanced_json_with_all_ranks() {
        let traces = vec![
            trace(Some(0), "xtrapulp-rank-0", &["barrier", "allreduce"]),
            trace(Some(1), "xtrapulp-rank-1", &["barrier"]),
            trace(None, "serve-worker", &["publish"]),
        ];
        let json = chrome_trace_json(&traces);
        assert!(json.starts_with('{') && json.ends_with('}'));
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"pid\":0"));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains(&format!("\"pid\":{HOST_PID}")));
        assert!(json.contains("rank 0"));
        assert!(json.contains("host threads"));
        let begins = json.matches("\"ph\":\"B\"").count();
        let ends = json.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, ends);
        assert_eq!(begins, 4);
    }

    #[test]
    fn names_are_escaped() {
        let t = OwnedThreadTrace {
            rank: Some(0),
            thread: "we\"ird\\name".to_string(),
            dropped: 0,
            events: vec![OwnedEvent {
                name: "a\"b".to_string(),
                phase: Phase::Instant,
                t_ns: 1,
                arg: 0,
            }],
        };
        let json = chrome_trace_json(&[t]);
        assert!(json.contains("we\\\"ird\\\\name"));
        assert!(json.contains("a\\\"b"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn dropped_events_are_annotated() {
        let mut t = trace(Some(3), "r3", &["x"]);
        t.dropped = 17;
        let json = chrome_trace_json(&[t]);
        assert!(json.contains("events_dropped"));
        assert!(json.contains("\"v\":17"));
    }
}
