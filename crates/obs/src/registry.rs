//! Process-global metrics registry: named counters, gauges, and histograms,
//! rendered in the Prometheus text exposition format.
//!
//! Handles are `Arc`-backed and cheap to clone; hot call sites fetch a handle
//! once (e.g. in a `OnceLock`) and then pay only the atomic op per update.
//! Metric names may carry Prometheus labels inline
//! (`comm_collective_seconds{kind="alltoallv"}`); the exposition groups them
//! under one `# TYPE` line per family.
//!
//! Subsystems with their own pre-existing stats (e.g. a `ServingSession`'s
//! `ServeStats`) can join the plane without re-homing their state by
//! registering a *collector* — a closure appending exposition lines at render
//! time. The returned guard unregisters on drop.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::Histogram;

/// Monotonic counter handle.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed); // ordering: independent wait-free counter bump; no cross-field sync
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // ordering: stat read; snapshots tolerate cross-cell lag
    }
}

/// Last-value gauge handle (stores an `f64`).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed); // ordering: plain publish; readers only need eventual visibility
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed)) // ordering: stat read; snapshots tolerate cross-cell lag
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Histogram>),
}

type Collector = Box<dyn Fn(&mut String) + Send>;

#[derive(Default)]
struct Registry {
    metrics: BTreeMap<String, Metric>,
    collectors: Vec<(u64, Collector)>,
    next_collector_id: u64,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Get or create the counter registered under `name`.
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> Counter {
    let mut reg = lock();
    match reg
        .metrics
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
    {
        Metric::Counter(c) => c.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Get or create the gauge registered under `name`.
pub fn gauge(name: &str) -> Gauge {
    let mut reg = lock();
    match reg
        .metrics
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0)))))
    {
        Metric::Gauge(g) => g.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Get or create the histogram registered under `name`.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut reg = lock();
    match reg
        .metrics
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
    {
        Metric::Histogram(h) => Arc::clone(h),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Unregisters its collector when dropped.
pub struct CollectorGuard {
    id: u64,
}

impl Drop for CollectorGuard {
    fn drop(&mut self) {
        lock().collectors.retain(|(id, _)| *id != self.id);
    }
}

/// Register a closure that appends Prometheus exposition lines at render
/// time. Lines must be complete (`name value\n`) and self-describing.
pub fn register_collector(f: impl Fn(&mut String) + Send + 'static) -> CollectorGuard {
    let mut reg = lock();
    let id = reg.next_collector_id;
    reg.next_collector_id += 1;
    reg.collectors.push((id, Box::new(f)));
    CollectorGuard { id }
}

/// Family name for `# TYPE` lines: the metric name with any `{labels}` and
/// trailing text stripped.
fn family(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Splice an extra label into a possibly-labelled metric name:
/// `f("x", ...)` → `x{q="0.5"}`, `f("x{k=\"a\"}", ...)` → `x{k="a",q="0.5"}`.
fn with_label(name: &str, label: &str, value: &str) -> String {
    match name.strip_suffix('}') {
        Some(prefix) => format!("{prefix},{label}=\"{value}\"}}"),
        None => format!("{name}{{{label}=\"{value}\"}}"),
    }
}

/// Append a suffix to the family part, preserving labels:
/// `f("x", "_sum")` → `x_sum`, `f("x{k=\"a\"}", "_sum")` → `x_sum{k="a"}`.
fn with_suffix(name: &str, suffix: &str) -> String {
    match name.find('{') {
        Some(i) => format!("{}{}{}", &name[..i], suffix, &name[i..]),
        None => format!("{name}{suffix}"),
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Render the full registry (metrics first, then collectors) as Prometheus
/// text exposition format, version 0.0.4.
pub fn render() -> String {
    let reg = lock();
    let mut out = String::new();
    let mut last_family = String::new();
    for (name, metric) in &reg.metrics {
        let fam = family(name);
        if fam != last_family {
            let kind = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "summary",
            };
            out.push_str("# TYPE ");
            out.push_str(fam);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            last_family = fam.to_string();
        }
        match metric {
            Metric::Counter(c) => {
                out.push_str(name);
                out.push(' ');
                out.push_str(&c.get().to_string());
                out.push('\n');
            }
            Metric::Gauge(g) => {
                out.push_str(name);
                out.push(' ');
                out.push_str(&fmt_f64(g.get()));
                out.push('\n');
            }
            Metric::Histogram(h) => {
                let s = h.snapshot();
                for (q, v) in [("0.5", s.p50()), ("0.9", s.p90()), ("0.99", s.p99())] {
                    out.push_str(&with_label(name, "quantile", q));
                    out.push(' ');
                    out.push_str(&v.to_string());
                    out.push('\n');
                }
                for (suffix, v) in [("_sum", s.sum()), ("_count", s.count()), ("_max", s.max())] {
                    out.push_str(&with_suffix(name, suffix));
                    out.push(' ');
                    out.push_str(&v.to_string());
                    out.push('\n');
                }
            }
        }
    }
    for (_, collector) in &reg.collectors {
        collector(&mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let c = counter("test_reg_requests_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same underlying cell.
        assert_eq!(counter("test_reg_requests_total").get(), 5);

        let g = gauge("test_reg_queue_depth");
        g.set(3.5);
        assert_eq!(gauge("test_reg_queue_depth").get(), 3.5);

        let h = histogram("test_reg_latency_nanos");
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(histogram("test_reg_latency_nanos").snapshot().count(), 3);

        let text = render();
        assert!(text.contains("# TYPE test_reg_requests_total counter"));
        assert!(text.contains("test_reg_requests_total 5"));
        assert!(text.contains("test_reg_queue_depth 3.5"));
        assert!(text.contains("# TYPE test_reg_latency_nanos summary"));
        assert!(text.contains("test_reg_latency_nanos{quantile=\"0.5\"} 20"));
        assert!(text.contains("test_reg_latency_nanos_count 3"));
        assert!(text.contains("test_reg_latency_nanos_sum 60"));
    }

    #[test]
    fn labelled_names_share_a_family() {
        counter("test_reg_coll_total{kind=\"barrier\"}").add(2);
        counter("test_reg_coll_total{kind=\"gather\"}").add(3);
        let text = render();
        let type_lines = text.matches("# TYPE test_reg_coll_total counter").count();
        assert_eq!(type_lines, 1);
        assert!(text.contains("test_reg_coll_total{kind=\"barrier\"} 2"));
        assert!(text.contains("test_reg_coll_total{kind=\"gather\"} 3"));
    }

    #[test]
    fn histogram_quantile_label_merges_into_existing_labels() {
        let h = histogram("test_reg_lat{kind=\"x\"}");
        h.record(42);
        let text = render();
        assert!(text.contains("test_reg_lat{kind=\"x\",quantile=\"0.5\"}"));
        assert!(text.contains("test_reg_lat_count{kind=\"x\"} 1"));
    }

    #[test]
    fn collectors_append_and_unregister() {
        let guard = register_collector(|out| out.push_str("test_reg_custom 99\n"));
        assert!(render().contains("test_reg_custom 99"));
        drop(guard);
        assert!(!render().contains("test_reg_custom 99"));
    }
}
