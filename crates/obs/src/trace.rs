//! Lock-free-gated tracing: per-thread ring buffers of span and instant
//! events with monotonic-nanosecond timestamps.
//!
//! The hot path is gated on one relaxed atomic load ([`enabled`]): when
//! tracing is off, [`span`] constructs an inert guard and touches nothing
//! else. When tracing is on, events go into a fixed-capacity per-thread ring
//! buffer (an uncontended per-thread lock guards each ring only against the
//! drainer; the owning thread never contends with other recorders). Full
//! rings overwrite their oldest events and count the drops.
//!
//! Buffers register themselves in a process-global registry on first use;
//! [`drain`] empties every buffer in the process, which is how the cross-rank
//! trace gather collects a process's events at job end.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events each thread can hold before wrapping (32 B/event → 512 KiB).
pub const RING_CAPACITY: usize = 16 * 1024;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn tracing on or off process-wide. Spans already open keep their guard
/// and still record their end event, so B/E pairs stay balanced.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed); // ordering: advisory gate; in-flight span sites may see the old value for one event
}

/// The one relaxed load every instrumentation site pays when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) // ordering: hot-path gate (~2.3ns); correctness never depends on observing a toggle promptly
}

fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the process's trace anchor. The anchor is
/// pinned on first use; cross-process alignment adds a per-transport clock
/// offset at export time.
#[inline]
pub fn now_ns() -> u64 {
    u64::try_from(anchor().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Event phase, mirroring the chrome://tracing phases we emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    Begin = 0,
    End = 1,
    Instant = 2,
}

impl Phase {
    pub fn from_u8(v: u8) -> Option<Phase> {
        match v {
            0 => Some(Phase::Begin),
            1 => Some(Phase::End),
            2 => Some(Phase::Instant),
            _ => None,
        }
    }
}

/// One recorded event. `name` is static so recording never allocates.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    pub name: &'static str,
    pub phase: Phase,
    pub t_ns: u64,
    pub arg: u64,
}

pub(crate) struct Ring {
    events: Vec<TraceEvent>,
    head: usize,
    len: usize,
    dropped: u64,
    capacity: usize,
}

impl Ring {
    pub(crate) fn new(capacity: usize) -> Ring {
        Ring {
            events: Vec::with_capacity(capacity),
            head: 0,
            len: 0,
            dropped: 0,
            capacity,
        }
    }

    pub(crate) fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
            self.len += 1;
            return;
        }
        // Full: overwrite the oldest slot. The per-ring `dropped` count
        // resets on every drain, so the cumulative registry counter is what
        // a scrape watches to see the tracer losing spans.
        self.events[self.head] = ev;
        self.head = (self.head + 1) % self.capacity;
        self.dropped += 1;
        ring_dropped_counter().inc();
    }

    /// Remove and return all events, oldest first.
    pub(crate) fn take(&mut self) -> (Vec<TraceEvent>, u64) {
        let mut out = Vec::with_capacity(self.len);
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        let dropped = self.dropped;
        self.events.clear();
        self.head = 0;
        self.len = 0;
        self.dropped = 0;
        (out, dropped)
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[cfg(test)]
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Cumulative count of trace events lost to ring overwrites, process-wide.
fn ring_dropped_counter() -> &'static crate::registry::Counter {
    static C: OnceLock<crate::registry::Counter> = OnceLock::new();
    C.get_or_init(|| crate::registry::counter("trace_ring_dropped_total"))
}

struct ThreadBuffer {
    thread: String,
    rank: AtomicI64, // -1 = unranked
    ring: parking_lot::Mutex<Ring>,
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuffer>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuffer>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: std::cell::OnceCell<Arc<ThreadBuffer>> = const { std::cell::OnceCell::new() };
}

fn local_buffer<R>(f: impl FnOnce(&ThreadBuffer) -> R) -> R {
    LOCAL.with(|cell| {
        let buf = cell.get_or_init(|| {
            let name = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("thread-{:?}", std::thread::current().id()));
            let buf = Arc::new(ThreadBuffer {
                thread: name,
                rank: AtomicI64::new(-1),
                ring: parking_lot::Mutex::new(Ring::new(RING_CAPACITY)),
            });
            registry()
                .lock()
                .expect("trace registry")
                .push(Arc::clone(&buf));
            buf
        });
        f(buf)
    })
}

/// Label the current thread with a rank; its events export under that rank's
/// process lane. Rank worker threads call this once at thread start. The
/// flight recorder's per-thread rank label is set here too, so one call
/// covers both planes.
pub fn set_thread_rank(rank: usize) {
    local_buffer(|b| b.rank.store(rank as i64, Ordering::Relaxed)); // ordering: label written by owner thread; drain reads it after the registry mutex
    crate::flight::set_thread_rank(rank);
}

/// Total resident cost of every registered per-thread trace ring, for
/// memory accounting.
pub fn rings_bytes() -> u64 {
    let buffers = registry().lock().expect("trace registry").len() as u64;
    buffers * (RING_CAPACITY * std::mem::size_of::<TraceEvent>()) as u64
}

#[inline]
fn record(name: &'static str, phase: Phase, arg: u64) {
    let ev = TraceEvent {
        name,
        phase,
        t_ns: now_ns(),
        arg,
    };
    local_buffer(|b| b.ring.lock().push(ev));
}

/// RAII span guard: records a begin event at creation (when tracing is
/// enabled) and the matching end event on drop. An inert guard costs nothing.
pub struct Span {
    name: &'static str,
    arg: u64,
    armed: bool,
}

impl Span {
    /// Attach a numeric payload (e.g. wire bytes, vertices scored) to the
    /// span's end event.
    #[inline]
    pub fn set_arg(&mut self, arg: u64) {
        if self.armed {
            self.arg = arg;
        }
    }

    /// Whether this guard is actually recording (tracing was enabled at
    /// creation time).
    #[inline]
    pub fn is_armed(&self) -> bool {
        self.armed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            record(self.name, Phase::End, self.arg);
        }
    }
}

/// Open a span. One relaxed atomic load when tracing is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span {
            name,
            arg: 0,
            armed: false,
        };
    }
    record(name, Phase::Begin, 0);
    Span {
        name,
        arg: 0,
        armed: true,
    }
}

/// Open a span with a numeric payload known up front (recorded on both ends).
#[inline]
pub fn span_with(name: &'static str, arg: u64) -> Span {
    if !enabled() {
        return Span {
            name,
            arg: 0,
            armed: false,
        };
    }
    record(name, Phase::Begin, arg);
    Span {
        name,
        arg,
        armed: true,
    }
}

/// Record a point-in-time event.
#[inline]
pub fn instant(name: &'static str, arg: u64) {
    if !enabled() {
        return;
    }
    record(name, Phase::Instant, arg);
}

/// Everything one thread recorded, drained out of its ring buffer.
#[derive(Clone, Debug)]
pub struct ThreadTrace {
    pub rank: Option<u32>,
    pub thread: String,
    pub dropped: u64,
    pub events: Vec<TraceEvent>,
}

/// Drain every thread buffer in the process. Buffers stay registered and
/// keep recording; only their current contents move out. Threads with no
/// events since the last drain are omitted.
pub fn drain() -> Vec<ThreadTrace> {
    let bufs: Vec<Arc<ThreadBuffer>> = registry().lock().expect("trace registry").clone();
    let mut out = Vec::new();
    for buf in bufs {
        let (events, dropped) = buf.ring.lock().take();
        if events.is_empty() && dropped == 0 {
            continue;
        }
        let rank = buf.rank.load(Ordering::Relaxed); // ordering: label read under the registry mutex that ordered the store
        out.push(ThreadTrace {
            rank: u32::try_from(rank).ok(),
            thread: buf.thread.clone(),
            dropped,
            events,
        });
    }
    out
}

/// Open a span guard; sugar for [`trace::span`](span) that keeps call sites
/// short: `let _s = xtrapulp_obs::span!("publish");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name)
    };
    ($name:expr, $arg:expr) => {
        $crate::trace::span_with($name, $arg as u64)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests below toggle the process-global ENABLED flag; serialise them so
    // cargo's concurrent test threads don't interleave enable/disable.
    fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut r = Ring::new(4);
        for i in 0..7u64 {
            r.push(TraceEvent {
                name: "e",
                phase: Phase::Instant,
                t_ns: i,
                arg: i,
            });
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 3);
        let (evs, dropped) = r.take();
        assert_eq!(dropped, 3);
        // Oldest three were overwritten; survivors are 3..7 oldest-first.
        let args: Vec<u64> = evs.iter().map(|e| e.arg).collect();
        assert_eq!(args, vec![3, 4, 5, 6]);
        // After take the ring restarts empty.
        assert_eq!(r.len(), 0);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn disabled_path_records_nothing() {
        let _g = flag_lock();
        set_enabled(false);
        // Run in a dedicated thread so this thread's buffer (if any) is fresh
        // and unaffected by other tests.
        std::thread::spawn(|| {
            {
                let mut s = span("noop");
                s.set_arg(42);
                assert!(!s.is_armed());
            }
            instant("noop", 1);
            // No buffer was ever created for this thread, so nothing to drain
            // from it: record() was never called.
            LOCAL.with(|cell| assert!(cell.get().is_none()));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn span_guard_balances_begin_end() {
        let _g = flag_lock();
        std::thread::spawn(|| {
            set_enabled(true);
            {
                let mut s = span("outer");
                s.set_arg(7);
                let _inner = span_with("inner", 3);
            }
            instant("mark", 9);
            set_enabled(false);
            let traces = drain();
            let mine: Vec<&ThreadTrace> = traces
                .iter()
                .filter(|t| t.events.iter().any(|e| e.name == "outer"))
                .collect();
            assert_eq!(mine.len(), 1);
            let evs = &mine[0].events;
            let begins = evs.iter().filter(|e| e.phase == Phase::Begin).count();
            let ends = evs.iter().filter(|e| e.phase == Phase::End).count();
            assert_eq!(begins, 2);
            assert_eq!(ends, 2);
            let outer_end = evs
                .iter()
                .find(|e| e.name == "outer" && e.phase == Phase::End)
                .unwrap();
            assert_eq!(outer_end.arg, 7);
            // Inner span closes before outer (guard drop order).
            let inner_end_at = evs
                .iter()
                .position(|e| e.name == "inner" && e.phase == Phase::End)
                .unwrap();
            let outer_end_at = evs
                .iter()
                .position(|e| e.name == "outer" && e.phase == Phase::End)
                .unwrap();
            assert!(inner_end_at < outer_end_at);
            assert!(evs
                .iter()
                .any(|e| e.name == "mark" && e.phase == Phase::Instant));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn timestamps_are_monotone_per_thread() {
        let _g = flag_lock();
        std::thread::spawn(|| {
            set_enabled(true);
            for _ in 0..100 {
                let _s = span("tick");
            }
            set_enabled(false);
            let traces = drain();
            let mine = traces
                .iter()
                .find(|t| t.events.iter().any(|e| e.name == "tick"))
                .unwrap();
            let mut last = 0u64;
            for e in &mine.events {
                assert!(e.t_ns >= last);
                last = e.t_ns;
            }
        })
        .join()
        .unwrap();
    }
}
